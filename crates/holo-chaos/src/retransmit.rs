//! Selective whole-frame retransmission with RTO + exponential backoff.
//!
//! The transport's built-in `RetransmitOnce` resends lost fragments
//! immediately — fine for thin links, but it gives up after one round
//! and cannot outlast an outage. This layer re-offers the *frame* on a
//! retransmission-timeout schedule (`rto · backoff^attempt`), which is
//! what actually rides out a link flap: the first attempts die inside
//! the outage window, a later one lands after it.

use holo_net::time::SimTime;
use holo_net::transport::FrameTransport;
use std::time::Duration;

/// Retransmission schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransmitConfig {
    /// Base retransmission timeout (delay before the first retry).
    pub rto: Duration,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff: f64,
    /// Retries after the initial attempt (0 disables retransmission).
    pub max_retries: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        Self { rto: Duration::from_millis(50), backoff: 2.0, max_retries: 3 }
    }
}

/// Outcome of one frame offered under the retransmit schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendOutcome {
    /// Arrival of the first complete attempt, if any succeeded.
    pub delivered_at: Option<SimTime>,
    /// Attempts made (1 = clean first try).
    pub attempts: u32,
    /// Wire bytes across all attempts (headers + retransmissions).
    pub wire_bytes: u64,
}

impl SendOutcome {
    /// Delivered, but only thanks to at least one retry.
    pub fn recovered(&self) -> bool {
        self.delivered_at.is_some() && self.attempts > 1
    }
}

/// Offer a size-only frame at `at`, retrying on the RTO schedule until
/// it lands or the budget is spent. `config: None` sends exactly once
/// (the unprotected baseline). The transport should carry
/// `LossPolicy::DropFrame` — this layer owns recovery.
pub fn send_with_retransmit(
    transport: &mut FrameTransport,
    payload_bytes: usize,
    at: SimTime,
    config: Option<&RetransmitConfig>,
) -> SendOutcome {
    let max_attempts = 1 + config.map_or(0, |c| c.max_retries);
    let mut offer_at = at;
    let mut wire_bytes = 0u64;
    for attempt in 0..max_attempts {
        let result = transport.send_frame_sized(payload_bytes, offer_at);
        wire_bytes += result.wire_bytes;
        if result.complete {
            return SendOutcome {
                delivered_at: result.completed_at,
                attempts: attempt + 1,
                wire_bytes,
            };
        }
        if let Some(c) = config {
            let timeout = c.rto.as_secs_f64() * c.backoff.max(1.0).powi(attempt as i32);
            offer_at += Duration::from_secs_f64(timeout);
        }
    }
    SendOutcome { delivered_at: None, attempts: max_attempts, wire_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_net::fault::{FaultClock, FaultEffect, FaultSegment, LossModel};
    use holo_net::link::{Link, LinkConfig};
    use holo_net::trace::BandwidthTrace;
    use holo_net::transport::LossPolicy;

    fn quiet_link(bps: f64, seed: u64) -> Link {
        let cfg = LinkConfig { jitter_max: Duration::ZERO, ..Default::default() };
        Link::new(cfg, BandwidthTrace::Constant { bps }, seed)
    }

    #[test]
    fn clean_link_delivers_first_try() {
        let mut t = FrameTransport::new(quiet_link(100e6, 1), LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&Default::default()));
        assert_eq!(out.attempts, 1);
        assert!(out.delivered_at.is_some());
        assert!(!out.recovered());
    }

    #[test]
    fn backoff_outlasts_a_link_flap() {
        // Outage covers [0, 120) ms. Default schedule offers at 0, 50,
        // 150 ms — the third attempt clears the flap.
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(
            None,
            vec![FaultSegment {
                from: SimTime::ZERO,
                until: SimTime::from_millis(120),
                effect: FaultEffect::LinkDown,
            }],
            5,
        ));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&Default::default()));
        assert!(out.recovered(), "attempts {} delivered {:?}", out.attempts, out.delivered_at);
        assert_eq!(out.attempts, 3);
        assert!(out.delivered_at.unwrap() >= SimTime::from_millis(150));
    }

    #[test]
    fn without_config_there_is_exactly_one_attempt() {
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(Some(LossModel::Bernoulli { rate: 1.0 }), Vec::new(), 2));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, None);
        assert_eq!(out.attempts, 1);
        assert!(out.delivered_at.is_none());
    }

    #[test]
    fn budget_exhausts_on_a_dead_link() {
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(Some(LossModel::Bernoulli { rate: 1.0 }), Vec::new(), 2));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let cfg = RetransmitConfig { max_retries: 4, ..Default::default() };
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&cfg));
        assert_eq!(out.attempts, 5);
        assert!(out.delivered_at.is_none());
        assert!(out.wire_bytes > 0, "failed attempts still burned wire bytes");
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = || {
            let mut link = quiet_link(10e6, 3);
            link.set_fault(FaultClock::new(Some(LossModel::burst5()), Vec::new(), 9));
            let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
            (0..20)
                .map(|i| {
                    let at = SimTime::from_millis(i * 33);
                    send_with_retransmit(&mut t, 20_000, at, Some(&Default::default()))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
