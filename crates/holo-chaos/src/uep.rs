//! The unequal-protection scheduler: one event loop, two ways to
//! spend the same redundancy budget.
//!
//! [`run_uep_stream_scenario`] is the class-aware sibling of
//! `harness::run_stream_scenario`: the same seeded link, the same
//! virtual-time offer heap, the same CRC-detected corruption — but
//! FEC striping, retransmit scheduling, and (new) deadline-aware
//! abandonment are all driven by a [`holo_uep::UepPolicy`] instead of
//! one flat mechanism set. Both policies run through THIS code path,
//! so `uniform` vs `weighted` differences can only come from the
//! policy table, never from divergent simulation machinery.
//!
//! Honesty rules the sweep enforces:
//!
//! * **Equal budget.** `weighted` may not emit more parity frames or
//!   schedule more retry slots than `uniform`; the report carries both
//!   sides of the ledger and [`uep_report`] checks them.
//! * **Tag tax.** Tagged policies pay `UEP_HEADER_BYTES` per frame on
//!   the wire — importance signalling is not free.
//! * **Abandonment is not loss.** A frame whose retries were abandoned
//!   past its dependency horizon is counted in `abandoned`, a separate
//!   bucket from `lost`; `delivered + abandoned + lost == frames` in
//!   every cell.
//! * **Deadlines bind both policies.** `usable` here means
//!   chain-decodable *and* inside the render deadline, judged by the
//!   same rule for both.

use crate::fec;
use crate::harness::StreamConfig;
use crate::plan::FaultPlan;
use crate::report::{UepClassStats, UepOutcome};
use crate::retransmit::{backoff_delay, RetransmitConfig};
use holo_conf::frame::{gop_descendants, DependencyTracker, FrameTag};
use holo_net::link::{Link, LinkConfig};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy};
use holo_net::wire::{ImportanceClass, PayloadKind, UepHeader, UEP_HEADER_BYTES, WIRE_HEADER_BYTES};
use holo_runtime::ser::{JsonValue, ToJson};
use holo_uep::{classify, UepPolicy};
use std::time::Duration;

/// One scheduled transmission in the UEP event loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OfferKind {
    /// Data frame `frame`, attempt number (0 = first try).
    Data { frame: usize, attempt: u32 },
    /// Parity frame `index` of FEC group `group`.
    Parity { group: usize, index: usize },
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Offer {
    at: SimTime,
    seq: u64,
    kind: OfferKind,
}

impl Ord for Offer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest first; insertion order breaks ties deterministically.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Offer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One finalized FEC group: `members` frames of one lane, `r` parity.
struct Group {
    members: Vec<usize>,
    r: usize,
}

/// Per-frame bookkeeping.
#[derive(Clone, Copy)]
struct Slot {
    offered_at: SimTime,
    available_at: Option<SimTime>,
    recovered_retx: bool,
    recovered_fec: bool,
    abandoned: bool,
}

/// Run one fault plan × one protection policy over the synthetic
/// stream. Frames are classed by [`holo_uep::classify`]; each class's
/// FEC lane stripes independently (a full group's parity ships at the
/// capture tick of its last member — for the Critical (1,1) lane that
/// means a keyframe's copy follows it immediately); retransmissions
/// follow the class schedule and may be abandoned past the dependency
/// horizon. The link, loss process, and corruption stream are seeded
/// exactly like the class-blind harness.
pub fn run_uep_stream_scenario(
    plan: &FaultPlan,
    policy: &UepPolicy,
    cfg: &StreamConfig,
    kind: PayloadKind,
) -> UepOutcome {
    policy.validate().expect("UEP sweep policies must validate");
    let link_cfg = LinkConfig { jitter_max: Duration::ZERO, ..Default::default() };
    let mut link =
        Link::new(link_cfg, BandwidthTrace::Constant { bps: cfg.link_bps }, plan.seed ^ 0x57A6);
    link.set_fault(plan.compile(0));
    let mut transport = FrameTransport::new(link, LossPolicy::DropFrame);

    let frame_period = Duration::from_secs_f64(1.0 / cfg.fps.max(1e-9));
    let classes: Vec<ImportanceClass> =
        (0..cfg.frames).map(|i| classify(i, cfg.frames, cfg.keyframe_interval, kind)).collect();
    let descendants: Vec<usize> =
        (0..cfg.frames).map(|i| gop_descendants(i, cfg.keyframe_interval, cfg.frames)).collect();

    // Deal frames into FEC lanes in capture order; each full group of
    // `k` lane frames finalizes with `r` parity offers at the capture
    // tick of its last member. Trailing partials stay unprotected.
    let mut seq = 0u64;
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Offer>> =
        std::collections::BinaryHeap::new();
    let mut push = |heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<Offer>>,
                    at: SimTime,
                    kind: OfferKind| {
        heap.push(std::cmp::Reverse(Offer { at, seq, kind }));
        seq += 1;
    };
    let mut groups: Vec<Group> = Vec::new();
    // (group id, in-group index) per frame, for wire tagging.
    let mut frame_group: Vec<Option<(usize, usize)>> = vec![None; cfg.frames];
    let mut lane_pending: [Vec<usize>; 4] = Default::default();
    for (i, &class) in classes.iter().enumerate() {
        let at = SimTime::from_secs_f64(i as f64 / cfg.fps);
        push(&mut heap, at, OfferKind::Data { frame: i, attempt: 0 });
        let lane = policy.fec_lane(class);
        if let Some(stripe) = policy.lane_stripe(lane) {
            lane_pending[lane].push(i);
            if lane_pending[lane].len() == stripe.k as usize {
                let group = groups.len();
                for (j, &m) in lane_pending[lane].iter().enumerate() {
                    frame_group[m] = Some((group, j));
                }
                for p in 0..stripe.r as usize {
                    push(&mut heap, at, OfferKind::Parity { group, index: p });
                }
                groups.push(Group {
                    members: std::mem::take(&mut lane_pending[lane]),
                    r: stripe.r as usize,
                });
            }
        }
    }
    let parity_frames: usize = groups.iter().map(|g| g.r).sum();
    debug_assert_eq!(
        parity_frames,
        policy.parity_frames(cfg.frames, cfg.keyframe_interval, kind),
        "scheduler and policy accounting must agree on the parity budget"
    );

    // Wire tagging: under a tagged policy every offer carries a
    // `UepHeader` (and pays for it); the encode/decode roundtrip is
    // asserted so the sweep doubles as an integration test of the
    // header codec on every single offer.
    let frame_bytes = |tagged: bool| {
        cfg.payload_bytes + WIRE_HEADER_BYTES + if tagged { UEP_HEADER_BYTES } else { 0 }
    };
    let deadline_ms = (policy.deadline.as_secs_f64() * 1e3).round() as u16;
    let tag_for = |kind_: OfferKind| -> UepHeader {
        match kind_ {
            OfferKind::Data { frame, .. } => {
                let class = classes[frame];
                let (group, index, k, r) = match frame_group[frame] {
                    Some((g, j)) => {
                        let stripe = policy
                            .lane_stripe(policy.fec_lane(class))
                            .expect("grouped frames have a stripe");
                        (g as u32, j as u8, stripe.k, stripe.r)
                    }
                    // Ungrouped frames tag a singleton "group" of
                    // themselves, flagged in the high bit.
                    None => (0x8000_0000 | frame as u32, 0, 1, 0),
                };
                UepHeader {
                    class,
                    parity: false,
                    abandonable: policy.protection(class).abandon,
                    k,
                    r,
                    group,
                    index,
                    deadline_ms,
                }
            }
            OfferKind::Parity { group, index } => {
                let g = &groups[group];
                let class = classes[g.members[0]];
                let stripe = policy
                    .lane_stripe(policy.fec_lane(class))
                    .expect("parity groups have a stripe");
                UepHeader {
                    class,
                    parity: true,
                    abandonable: false,
                    k: stripe.k,
                    r: stripe.r,
                    group: group as u32,
                    index: index as u8,
                    deadline_ms,
                }
            }
        }
    };

    let mut slots: Vec<Slot> = (0..cfg.frames)
        .map(|i| Slot {
            offered_at: SimTime::from_secs_f64(i as f64 / cfg.fps),
            available_at: None,
            recovered_retx: false,
            recovered_fec: false,
            abandoned: false,
        })
        .collect();
    let mut wire_bytes = 0u64;
    let mut corrupt_detected = 0usize;
    let mut retries_sent = 0u64;
    let mut retries_abandoned = 0u64;
    let mut parity_delivered: Vec<Vec<bool>> = groups.iter().map(|g| vec![false; g.r]).collect();
    let mut parity_arrival: Vec<Option<SimTime>> = vec![None; groups.len()];
    while let Some(std::cmp::Reverse(offer)) = heap.pop() {
        if policy.tagged {
            let header = tag_for(offer.kind);
            debug_assert_eq!(
                UepHeader::decode(&header.encode()).as_ref(),
                Ok(&header),
                "UEP wire tag must roundtrip"
            );
        }
        let result = transport.send_frame_sized(frame_bytes(policy.tagged), offer.at);
        wire_bytes += result.wire_bytes;
        let corrupted = result.complete
            && result
                .completed_at
                .is_some_and(|t| transport.link.corrupt_roll(t).is_some());
        if corrupted {
            corrupt_detected += 1;
        }
        let arrived = result.complete && !corrupted;
        match offer.kind {
            OfferKind::Data { frame, attempt } => {
                if attempt > 0 {
                    retries_sent += 1;
                }
                if arrived {
                    slots[frame].available_at = result.completed_at;
                    slots[frame].recovered_retx = attempt > 0;
                } else {
                    let class = classes[frame];
                    let prot = policy.protection(class);
                    if attempt < prot.max_retries {
                        let rc = RetransmitConfig {
                            rto: prot.rto,
                            backoff: prot.backoff,
                            max_retries: prot.max_retries,
                        };
                        let retry_at = offer.at + backoff_delay(&rc, attempt);
                        if policy.should_abandon(
                            class,
                            retry_at,
                            slots[frame].offered_at,
                            descendants[frame],
                            frame_period,
                        ) {
                            // Backoff never shrinks, so every later
                            // retry is past the horizon too: the whole
                            // remaining schedule is surrendered at once.
                            retries_abandoned += u64::from(prot.max_retries - attempt);
                            slots[frame].abandoned = true;
                        } else {
                            heap.push(std::cmp::Reverse(Offer {
                                at: retry_at,
                                seq,
                                kind: OfferKind::Data { frame, attempt: attempt + 1 },
                            }));
                            seq += 1;
                        }
                    }
                }
            }
            OfferKind::Parity { group, index } => {
                parity_delivered[group][index] = arrived;
                if arrived {
                    parity_arrival[group] = parity_arrival[group].max(result.completed_at);
                }
            }
        }
    }

    // FEC pass, after every retransmission has resolved.
    for (g, group) in groups.iter().enumerate() {
        let data_delivered: Vec<bool> =
            group.members.iter().map(|&m| slots[m].available_at.is_some()).collect();
        let after = fec::recoverable(&data_delivered, &parity_delivered[g], group.r);
        let group_last = group.members.iter().filter_map(|&m| slots[m].available_at).max();
        let rebuilt_at = match (parity_arrival[g], group_last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (j, &m) in group.members.iter().enumerate() {
            if after[j] && slots[m].available_at.is_none() {
                slots[m].available_at = rebuilt_at;
                slots[m].recovered_fec = true;
            }
        }
    }
    // Metrics pass. Two dependency walks over the same availability:
    // `decodable` ignores time (the classic harness rule), `usable`
    // additionally demands each chain frame arrived inside its own
    // render deadline — a late base breaks timeliness downstream just
    // like a lost one. Both policies are judged by both rules.
    let mut any_chain = DependencyTracker::new();
    let mut timely_chain = DependencyTracker::new();
    let mut delivered = 0usize;
    let mut decodable = 0usize;
    let mut usable = 0usize;
    let mut late = 0usize;
    let mut abandoned = 0usize;
    let mut lost = 0usize;
    let mut recovered_fec = 0usize;
    let mut recovered_retx = 0usize;
    let mut per_class: [UepClassStats; 4] = ImportanceClass::ALL.map(|c| UepClassStats {
        class: c.name().to_string(),
        frames: 0,
        delivered: 0,
        usable: 0,
        abandoned: 0,
        lost: 0,
    });
    for (i, slot) in slots.iter().enumerate() {
        let cs = &mut per_class[classes[i] as usize];
        cs.frames += 1;
        let available = slot.available_at.is_some();
        let timely = slot
            .available_at
            .is_some_and(|t| t <= slot.offered_at + policy.deadline);
        if available {
            delivered += 1;
            cs.delivered += 1;
        } else if slot.abandoned {
            abandoned += 1;
            cs.abandoned += 1;
        } else {
            lost += 1;
            cs.lost += 1;
        }
        if slot.recovered_fec {
            recovered_fec += 1;
        }
        if slot.recovered_retx {
            recovered_retx += 1;
        }
        let tag = FrameTag::for_index(i, cfg.keyframe_interval);
        let dec = any_chain.advance(i, tag, available);
        let use_ = timely_chain.advance(i, tag, timely);
        if dec {
            decodable += 1;
        }
        if use_ {
            usable += 1;
            cs.usable += 1;
        } else if dec {
            late += 1;
        }
    }
    debug_assert_eq!(delivered + abandoned + lost, cfg.frames);

    UepOutcome {
        plan: plan.name.clone(),
        policy: policy.name.to_string(),
        frames: cfg.frames,
        delivered,
        decodable,
        usable,
        usable_rate: usable as f64 / cfg.frames.max(1) as f64,
        late,
        abandoned,
        lost,
        recovered_fec,
        recovered_retx,
        corrupt_detected,
        parity_frames,
        retries_scheduled: policy.scheduled_retries(cfg.frames, cfg.keyframe_interval, kind),
        retries_sent,
        retries_abandoned,
        wire_bytes,
        classes: per_class.into_iter().collect(),
    }
}

/// The plans the UEP sweep runs: every non-clean stream plan of the
/// base matrix plus [`FaultPlan::burst5_squeeze`], the queue-pressure
/// scenario abandonment exists for.
pub fn uep_sweep_plans(seed: u64) -> Vec<FaultPlan> {
    vec![
        FaultPlan::burst5(seed),
        FaultPlan::flapping(seed),
        FaultPlan::bandwidth_collapse(seed),
        FaultPlan::delay_spike(seed),
        FaultPlan::burst5_squeeze(seed),
        FaultPlan::burst5_corrupt(seed),
    ]
}

/// Run the full weighted-vs-uniform sweep: every UEP plan × both
/// policies, fanned out over the deterministic fork-join pool. Cell
/// order is plan-major (uniform before weighted), ready to append to a
/// `ResilienceReport`'s `uep` section.
pub fn run_uep_scenarios(seed: u64) -> Vec<UepOutcome> {
    let cfg = StreamConfig::default();
    let mut items = Vec::with_capacity(12);
    for plan in uep_sweep_plans(seed) {
        for weighted in [false, true] {
            items.push((plan.clone(), weighted));
        }
    }
    holo_trace::parallel::par_map(items, move |(plan, weighted)| {
        let policy = if weighted { UepPolicy::weighted() } else { UepPolicy::uniform() };
        run_uep_stream_scenario(&plan, &policy, &cfg, PayloadKind::Mesh)
    })
}

/// The machine-readable dominance document (what
/// `examples/uep_comparison.rs` writes as `UEP_report.json`).
/// Per plan, a [`holo_obs::SloVerdict`] records the head-to-head:
/// weighted's usable rate must meet uniform's, under no more parity
/// and no more scheduled retries, with every frame accounted for
/// (`delivered + abandoned + lost == frames`). The top level counts
/// strict wins and declares dominance. Deterministic bytes per seed.
pub fn uep_report(seed: u64, cells: &[UepOutcome], spec: &holo_obs::SloSpec) -> JsonValue {
    let pairs: Vec<(&UepOutcome, &UepOutcome)> = cells
        .chunks(2)
        .map(|pair| {
            assert_eq!(pair.len(), 2, "cells come in uniform/weighted pairs");
            let (a, b) = (&pair[0], &pair[1]);
            assert_eq!(a.plan, b.plan, "pairs share a plan");
            if a.policy == "uniform" { (a, b) } else { (b, a) }
        })
        .collect();
    let mut strict_wins = 0usize;
    let mut dominates = true;
    let cell_docs: Vec<JsonValue> = pairs
        .iter()
        .map(|(uniform, weighted)| {
            let mut verdict = holo_obs::SloVerdict::new(&format!("uep-dominance/{}", spec.name));
            verdict.check_ge(
                "usable_rate_vs_uniform",
                weighted.usable_rate,
                uniform.usable_rate,
            );
            verdict.check_le(
                "parity_budget",
                weighted.parity_frames as f64,
                uniform.parity_frames as f64,
            );
            verdict.check_le(
                "retry_budget",
                weighted.retries_scheduled as f64,
                uniform.retries_scheduled as f64,
            );
            for out in [uniform, weighted] {
                let unaccounted =
                    out.frames as i64 - (out.delivered + out.abandoned + out.lost) as i64;
                verdict.check_le(
                    &format!("unaccounted_frames_{}", out.policy),
                    unaccounted.unsigned_abs() as f64,
                    0.0,
                );
            }
            let strictly_better = weighted.usable > uniform.usable;
            if strictly_better {
                strict_wins += 1;
            }
            if !verdict.pass() {
                dominates = false;
            }
            JsonValue::obj([
                ("plan", uniform.plan.to_json()),
                ("uniform", uniform.to_json()),
                ("weighted", weighted.to_json()),
                ("strictly_better", strictly_better.to_json()),
                ("verdict", verdict.to_json()),
            ])
        })
        .collect();
    let total = pairs.len();
    JsonValue::obj([
        ("seed", seed.to_json()),
        ("spec", spec.name.to_json()),
        (
            "policies",
            JsonValue::obj([
                ("uniform", UepPolicy::uniform().to_json()),
                ("weighted", UepPolicy::weighted().to_json()),
            ]),
        ),
        (
            "budget",
            JsonValue::obj([
                (
                    "parity_frames",
                    JsonValue::obj([
                        ("uniform", pairs.first().map_or(0, |(u, _)| u.parity_frames).to_json()),
                        ("weighted", pairs.first().map_or(0, |(_, w)| w.parity_frames).to_json()),
                    ]),
                ),
                (
                    "retries_scheduled",
                    JsonValue::obj([
                        (
                            "uniform",
                            pairs.first().map_or(0, |(u, _)| u.retries_scheduled).to_json(),
                        ),
                        (
                            "weighted",
                            pairs.first().map_or(0, |(_, w)| w.retries_scheduled).to_json(),
                        ),
                    ]),
                ),
                (
                    "equal",
                    pairs
                        .iter()
                        .all(|(u, w)| {
                            u.parity_frames == w.parity_frames
                                && u.retries_scheduled == w.retries_scheduled
                        })
                        .to_json(),
                ),
            ]),
        ),
        ("dominates", dominates.to_json()),
        ("strict_wins", strict_wins.to_json()),
        ("pass", (dominates && strict_wins * 2 >= total).to_json()),
        ("cells", JsonValue::Arr(cell_docs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_is_perfect_under_both_policies() {
        let cfg = StreamConfig::default();
        for policy in [UepPolicy::uniform(), UepPolicy::weighted()] {
            let out =
                run_uep_stream_scenario(&FaultPlan::clean(3), &policy, &cfg, PayloadKind::Mesh);
            assert_eq!(out.delivered, out.frames, "{}", out.policy);
            assert_eq!(out.usable, out.frames, "{}", out.policy);
            assert_eq!(out.abandoned + out.lost, 0);
            assert_eq!(out.retries_sent, 0);
            assert_eq!(out.retries_abandoned, 0);
            assert_eq!(out.parity_frames, 37, "both policies spend 37 parity frames");
        }
    }

    #[test]
    fn tagged_policy_pays_the_header_tax() {
        let cfg = StreamConfig::default();
        let plan = FaultPlan::clean(3);
        let uniform =
            run_uep_stream_scenario(&plan, &UepPolicy::uniform(), &cfg, PayloadKind::Mesh);
        let weighted =
            run_uep_stream_scenario(&plan, &UepPolicy::weighted(), &cfg, PayloadKind::Mesh);
        // Same frame+parity count, but every weighted envelope carries
        // the 19-byte UEP tag.
        let offers = (cfg.frames + 37) as u64;
        assert_eq!(weighted.wire_bytes - uniform.wire_bytes, offers * UEP_HEADER_BYTES as u64);
    }

    #[test]
    fn abandonment_engages_only_under_pressure_and_only_for_optional_classes() {
        let cfg = StreamConfig::default();
        let out = run_uep_stream_scenario(
            &FaultPlan::burst5_squeeze(42),
            &UepPolicy::weighted(),
            &cfg,
            PayloadKind::Mesh,
        );
        assert!(out.retries_abandoned > 0, "squeeze must trigger abandonment: {out:?}");
        // Only Medium/Low opt in; Critical/High never abandon.
        assert_eq!(out.classes[0].abandoned, 0, "critical is never abandoned");
        assert_eq!(out.classes[1].abandoned, 0, "high is never abandoned");
        assert_eq!(out.delivered + out.abandoned + out.lost, out.frames);
        // Uniform never abandons by construction.
        let u = run_uep_stream_scenario(
            &FaultPlan::burst5_squeeze(42),
            &UepPolicy::uniform(),
            &cfg,
            PayloadKind::Mesh,
        );
        assert_eq!(u.retries_abandoned, 0);
        assert_eq!(u.abandoned, 0);
    }

    #[test]
    fn the_sweep_is_deterministic_and_appends_cleanly() {
        let a = run_uep_scenarios(7);
        let b = run_uep_scenarios(7);
        assert_eq!(a.len(), 12);
        assert_eq!(a.to_json().render(), b.to_json().render());
        // Appending the sweep leaves the base matrix bytes untouched.
        let mut report = crate::harness::run_scenarios(7);
        let base = report.render();
        report.uep = a;
        assert!(report.render().starts_with(&base[..base.len() - 1]));
    }

    #[test]
    fn the_sweep_is_thread_count_independent() {
        use holo_runtime::par;
        par::set_thread_override(Some(1));
        let one = run_uep_scenarios(7).to_json().render();
        par::set_thread_override(Some(8));
        let eight = run_uep_scenarios(7).to_json().render();
        par::set_thread_override(None);
        assert_eq!(one, eight, "UEP cells diverged across thread counts");
    }

    #[test]
    fn report_doc_is_deterministic_and_parses() {
        let cells = run_uep_scenarios(7);
        let spec = holo_obs::SloSpec::telepresence();
        let doc = uep_report(7, &cells, &spec).render();
        assert_eq!(doc, uep_report(7, &cells, &spec).render());
        holo_runtime::ser::parse(&doc).expect("UEP doc parses");
        for key in ["policies", "budget", "dominates", "strict_wins", "verdict"] {
            assert!(doc.contains(key), "missing {key}");
        }
    }
}
