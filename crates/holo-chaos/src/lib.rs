//! `holo-chaos`: deterministic fault injection + the resilience layer.
//!
//! The transport stack (`holo-net`), the end-to-end session
//! (`semholo::session`), and the conference SFU (`holo-conf`) all
//! behave beautifully on clean links. This crate is where they earn
//! their keep on bad ones. Three pieces:
//!
//! * **Fault plans** ([`plan`]) — a small DSL of named, seeded,
//!   virtual-time impairment scenarios (Gilbert–Elliott burst loss,
//!   bandwidth collapses, link flaps, delay spikes, participant churn)
//!   that compile to per-link [`holo_net::fault::FaultClock`]s.
//! * **Resilience mechanisms** — XOR-parity FEC over frame groups
//!   ([`fec`]) and RTO-scheduled whole-frame retransmission
//!   ([`retransmit`]); the third mechanism, the semantic degradation
//!   ladder, lives in `holo_conf::degrade` where the SFU applies it.
//! * **The harness** ([`harness`]) — sweeps plans × mechanisms over
//!   streams, sessions, and rooms and emits a byte-identical
//!   [`report::ResilienceReport`].
//!
//! Everything is deterministic: same seed, same report bytes. That is
//! what makes chaos testing regression-testable — `scripts/verify.sh`
//! runs the same seeded scenario twice and byte-compares.

pub mod fec;
pub mod harness;
pub mod plan;
pub mod report;
pub mod retransmit;
pub mod uep;

pub use fec::{FecConfig, FecError};
pub use harness::{
    gaussian_squeeze_plan, room_collapse_plan, run_gaussian_room_scenario,
    run_gaussian_scenarios, run_room_scenario, run_scenarios, run_session_scenario,
    run_stream_scenario, Mechanisms, StreamConfig,
};
pub use plan::{ChurnEvent, FaultPlan};
pub use report::{
    GaussianRoomOutcome, ResilienceReport, RoomOutcome, SessionOutcome, StreamOutcome,
    UepClassStats, UepOutcome,
};
pub use retransmit::{backoff_delay, send_with_retransmit, RetransmitConfig, SendOutcome};
pub use uep::{run_uep_scenarios, run_uep_stream_scenario, uep_report, uep_sweep_plans};
