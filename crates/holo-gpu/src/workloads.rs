//! Workload models for the paper's pipeline stages.
//!
//! The Fig. 4 experiment measures X-Avatar's keypoint-to-mesh
//! reconstruction at marching-cubes resolutions 128-1024. Its cost is
//! dominated by querying the implicit geometry MLP over the near-surface
//! band of the voxel grid (O(R^2) queries after octree culling) and its
//! memory by the dense field / gradient / extraction workspace (O(R^3)).
//!
//! Calibration (documented in EXPERIMENTS.md): `QUERIES_PER_R2 = 1350`
//! and `FLOPS_PER_QUERY = 130e3` (a ~256-wide, 8-layer MLP per query)
//! anchor the model at the paper's reported ~2.4 FPS for resolution 128
//! on the A100; `BYTES_PER_VOXEL = 32` and `FRAMEWORK_BYTES = 5 GiB`
//! reproduce the paper's observation that the RTX 3080 laptop GPU cannot
//! run resolutions 512 and 1024.

use crate::device::Workload;

/// Near-surface MLP queries per squared resolution unit.
pub const QUERIES_PER_R2: f64 = 1350.0;
/// FLOPs per implicit-field query (geometry MLP forward pass).
pub const FLOPS_PER_QUERY: f64 = 130e3;
/// Activation traffic per query, bytes.
pub const BYTES_PER_QUERY: f64 = 512.0;
/// Field + gradient + extraction workspace per voxel, bytes.
pub const BYTES_PER_VOXEL: u64 = 32;
/// Model weights + framework + CUDA context, bytes.
pub const FRAMEWORK_BYTES: u64 = 5 * (1u64 << 30);

/// The modeled X-Avatar-class reconstruction workload at a resolution.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionWorkload {
    /// Marching-cubes resolution.
    pub resolution: u32,
    /// Implicit-field queries the reconstruction performs.
    pub field_queries: u64,
    /// The roofline workload.
    pub workload: Workload,
}

/// Model the reconstruction workload at `resolution`. When
/// `measured_queries` is provided (from our own sparse extractor's
/// counters), it replaces the analytic O(R^2) query estimate, coupling
/// the model to the real geometry being reconstructed.
pub fn reconstruction_workload(resolution: u32, measured_queries: Option<u64>) -> ReconstructionWorkload {
    let r = resolution as f64;
    let queries = measured_queries.unwrap_or((QUERIES_PER_R2 * r * r) as u64);
    let voxels = (resolution as u64).pow(3);
    let workload = Workload {
        flops: queries as f64 * FLOPS_PER_QUERY,
        bytes: queries as f64 * BYTES_PER_QUERY,
        peak_memory: FRAMEWORK_BYTES + voxels * BYTES_PER_VOXEL,
    };
    ReconstructionWorkload { resolution, field_queries: queries, workload }
}

/// Workload of a keypoint detector inference pass (`gflops` from
/// `DetectorKind::gflops_per_frame`).
pub fn detector_workload(gflops: f64) -> Workload {
    Workload {
        flops: gflops * 1e9,
        bytes: gflops * 2e7,
        peak_memory: 2 * (1u64 << 30),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn a100_fig4_anchor_point() {
        // Paper: <3 FPS at resolution 128 on the A100, around 2.4.
        let w = reconstruction_workload(128, None);
        let fps = Device::a100().fps(&w.workload).unwrap();
        assert!((1.8..3.0).contains(&fps), "A100 @128 fps {fps:.2}");
    }

    #[test]
    fn fps_below_one_at_256_and_above() {
        for r in [256, 512, 1024] {
            let w = reconstruction_workload(r, None);
            let fps = Device::a100().fps(&w.workload).unwrap();
            assert!(fps < 1.0, "A100 @{r} fps {fps:.2} should be < 1");
        }
    }

    #[test]
    fn fps_monotonically_decreasing() {
        let mut prev = f64::INFINITY;
        for r in [128, 256, 512, 1024] {
            let fps = Device::a100().fps(&reconstruction_workload(r, None).workload).unwrap();
            assert!(fps < prev, "fps must fall with resolution");
            prev = fps;
        }
    }

    #[test]
    fn rtx3080_cannot_handle_512_and_1024() {
        let dev = Device::rtx3080_laptop();
        assert!(dev.fps(&reconstruction_workload(128, None).workload).is_ok());
        assert!(dev.fps(&reconstruction_workload(256, None).workload).is_ok());
        assert!(dev.fps(&reconstruction_workload(512, None).workload).is_err(), "512 must OOM");
        assert!(dev.fps(&reconstruction_workload(1024, None).workload).is_err(), "1024 must OOM");
    }

    #[test]
    fn a100_runs_1024_without_oom() {
        assert!(Device::a100().fps(&reconstruction_workload(1024, None).workload).is_ok());
    }

    #[test]
    fn measured_queries_override() {
        let w = reconstruction_workload(128, Some(1_000_000));
        assert_eq!(w.field_queries, 1_000_000);
        assert!((w.workload.flops - 1.3e11).abs() < 1e9);
    }

    #[test]
    fn mobile_soc_cannot_run_reconstruction_at_all() {
        // Motivates the paper's edge-server architecture: headsets cannot
        // run the reconstruction locally.
        let dev = Device::mobile_soc();
        assert!(dev.fps(&reconstruction_workload(128, None).workload).is_err());
    }

    #[test]
    fn detector_faster_than_reconstruction() {
        let det = detector_workload(14.0);
        let rec = reconstruction_workload(128, None).workload;
        let a100 = Device::a100();
        assert!(a100.exec_time(&det).unwrap() < a100.exec_time(&rec).unwrap() / 10);
    }
}
