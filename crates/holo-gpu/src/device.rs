//! Device descriptions and the roofline execution model.

use std::time::Duration;

/// A compute device (GPU or SoC) described by its roofline parameters.
#[derive(Debug, Clone)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Peak FP32 throughput, TFLOP/s (spec sheet).
    pub fp32_tflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Usable device memory, bytes.
    pub vram_bytes: u64,
    /// Fraction of peak a real workload sustains (kernel efficiency).
    pub efficiency: f64,
    /// Fixed per-kernel launch/driver overhead.
    pub launch_overhead: Duration,
}

/// Why a workload cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Working set exceeds device memory: `(required, available)` bytes.
    OutOfMemory { required: u64, available: u64 },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfMemory { required, available } => write!(
                f,
                "out of memory: needs {:.1} GiB, device has {:.1} GiB",
                *required as f64 / (1u64 << 30) as f64,
                *available as f64 / (1u64 << 30) as f64
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A kernel or kernel sequence's resource demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct Workload {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Peak resident working set, bytes.
    pub peak_memory: u64,
}

impl Workload {
    /// Combine two workloads executed sequentially (peak memory is the
    /// max of the two).
    pub fn then(self, next: Workload) -> Workload {
        Workload {
            flops: self.flops + next.flops,
            bytes: self.bytes + next.bytes,
            peak_memory: self.peak_memory.max(next.peak_memory),
        }
    }
}

impl Device {
    /// NVIDIA A100 40 GB (the paper's server GPU): 19.5 FP32 TFLOP/s,
    /// 1555 GB/s HBM2.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100 40GB".into(),
            fp32_tflops: 19.5,
            mem_bw_gbs: 1555.0,
            vram_bytes: 40 * (1u64 << 30),
            efficiency: 0.35,
            launch_overhead: Duration::from_micros(300),
        }
    }

    /// NVIDIA RTX 3080 Laptop 8 GB (the paper's laptop GPU): ~18.5 FP32
    /// TFLOP/s, 448 GB/s.
    pub fn rtx3080_laptop() -> Self {
        Self {
            name: "NVIDIA RTX 3080 Laptop 8GB".into(),
            fp32_tflops: 18.5,
            mem_bw_gbs: 448.0,
            vram_bytes: 8 * (1u64 << 30),
            efficiency: 0.30,
            launch_overhead: Duration::from_micros(300),
        }
    }

    /// An XR-headset-class mobile SoC GPU (Snapdragon XR2 Adreno 650
    /// class): ~1.2 TFLOP/s, 51 GB/s LPDDR, shared memory budget ~4 GiB.
    pub fn mobile_soc() -> Self {
        Self {
            name: "Mobile XR SoC".into(),
            fp32_tflops: 1.2,
            mem_bw_gbs: 51.2,
            vram_bytes: 4 * (1u64 << 30),
            efficiency: 0.25,
            launch_overhead: Duration::from_micros(800),
        }
    }

    /// A datacenter-class SFU forwarding server (no display attached):
    /// a many-core CPU node with big RAM and commodity DDR bandwidth.
    /// SFU work is copy/checksum/queue traffic, not dense math, so the
    /// FP32 peak is modest while the memory system and per-dispatch
    /// overhead are server-class. Fleet node capacity models derive
    /// from this preset instead of hardcoding a rooms-per-node number.
    pub fn sfu_server() -> Self {
        Self {
            name: "SFU server (datacenter)".into(),
            fp32_tflops: 3.0,
            mem_bw_gbs: 205.0,
            vram_bytes: 256 * (1u64 << 30),
            efficiency: 0.55,
            launch_overhead: Duration::from_micros(5),
        }
    }

    /// How many concurrent rooms this device sustains in real time,
    /// where `per_room` is **one room's forwarding work per second of
    /// wall clock**. A room is sustained when the device retires its
    /// per-second workload in at most one second, so the count is
    /// `floor(1s / exec_time(per_room))`; a workload the device cannot
    /// hold at all (OOM) sustains 0 rooms. Free workloads are clamped
    /// to the launch-overhead floor, so the result is always finite.
    pub fn sustained_rooms(&self, per_room: &Workload) -> u64 {
        match self.exec_time(per_room) {
            Ok(t) => (1.0 / t.as_secs_f64().max(1e-12)).floor() as u64,
            Err(_) => 0,
        }
    }

    /// Roofline execution time, or OOM.
    pub fn exec_time(&self, w: &Workload) -> Result<Duration, ExecError> {
        if w.peak_memory > self.vram_bytes {
            return Err(ExecError::OutOfMemory { required: w.peak_memory, available: self.vram_bytes });
        }
        let compute_s = w.flops / (self.fp32_tflops * 1e12 * self.efficiency);
        let memory_s = w.bytes / (self.mem_bw_gbs * 1e9 * self.efficiency.max(0.5));
        let t = compute_s.max(memory_s) + self.launch_overhead.as_secs_f64();
        Ok(Duration::from_secs_f64(t))
    }

    /// Frames per second this device sustains for a per-frame workload.
    pub fn fps(&self, per_frame: &Workload) -> Result<f64, ExecError> {
        let t = self.exec_time(per_frame)?;
        Ok(1.0 / t.as_secs_f64().max(1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gflop_workload(gflops: f64) -> Workload {
        Workload { flops: gflops * 1e9, bytes: gflops * 1e7, peak_memory: 1 << 30 }
    }

    #[test]
    fn a100_faster_than_laptop_faster_than_mobile() {
        let w = gflop_workload(500.0);
        let a = Device::a100().exec_time(&w).unwrap();
        let l = Device::rtx3080_laptop().exec_time(&w).unwrap();
        let m = Device::mobile_soc().exec_time(&w).unwrap();
        assert!(a < l, "a100 {a:?} vs laptop {l:?}");
        assert!(l < m, "laptop {l:?} vs mobile {m:?}");
    }

    #[test]
    fn oom_when_working_set_exceeds_vram() {
        let w = Workload { flops: 1e9, bytes: 1e9, peak_memory: 10 * (1u64 << 30) };
        assert!(matches!(
            Device::rtx3080_laptop().exec_time(&w),
            Err(ExecError::OutOfMemory { .. })
        ));
        assert!(Device::a100().exec_time(&w).is_ok());
    }

    #[test]
    fn memory_bound_workload_limited_by_bandwidth() {
        // Huge bytes, tiny flops.
        let w = Workload { flops: 1e6, bytes: 100e9, peak_memory: 1 << 30 };
        let a100 = Device::a100();
        let t = a100.exec_time(&w).unwrap().as_secs_f64();
        let expected = 100e9 / (1555.0 * 1e9 * 0.5);
        assert!((t - expected).abs() / expected < 0.05, "t {t} vs {expected}");
    }

    #[test]
    fn compute_scales_linearly() {
        let a100 = Device::a100();
        let t1 = a100.exec_time(&gflop_workload(1000.0)).unwrap().as_secs_f64();
        let t2 = a100.exec_time(&gflop_workload(2000.0)).unwrap().as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 0.1, "scaling {t2}/{t1}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let a100 = Device::a100();
        let t = a100.exec_time(&Workload { flops: 1.0, bytes: 1.0, peak_memory: 1 }).unwrap();
        assert!(t >= Duration::from_micros(300));
    }

    #[test]
    fn workload_then_combines() {
        let a = Workload { flops: 1e9, bytes: 2e9, peak_memory: 100 };
        let b = Workload { flops: 3e9, bytes: 1e9, peak_memory: 500 };
        let c = a.then(b);
        assert_eq!(c.flops, 4e9);
        assert_eq!(c.bytes, 3e9);
        assert_eq!(c.peak_memory, 500);
    }

    #[test]
    fn sfu_server_is_a_forwarding_box_not_a_gpu() {
        let s = Device::sfu_server();
        // Display-free server: far more memory than any GPU preset,
        // modest FLOPs next to the A100.
        assert!(s.vram_bytes > Device::a100().vram_bytes * 4);
        assert!(s.fp32_tflops < Device::a100().fp32_tflops);
        assert!(s.launch_overhead < Duration::from_micros(50));
    }

    #[test]
    fn sustained_rooms_counts_per_second_workloads() {
        let s = Device::sfu_server();
        // A room moving 100 MB/s through the forwarder: the server must
        // sustain many such rooms, and halving the work doubles (about)
        // the count.
        let room = Workload { flops: 1e9, bytes: 200e6, peak_memory: 1 << 30 };
        let n = s.sustained_rooms(&room);
        assert!(n > 50, "sustained {n}");
        let half = Workload { flops: 0.5e9, bytes: 100e6, peak_memory: 1 << 30 };
        let n2 = s.sustained_rooms(&half);
        assert!(n2 > n && n2 < n * 3, "half-size room: {n2} vs {n}");
    }

    #[test]
    fn sustained_rooms_zero_on_oom_and_finite_on_free_work() {
        let s = Device::mobile_soc();
        let oom = Workload { flops: 1.0, bytes: 1.0, peak_memory: 100 * (1u64 << 30) };
        assert_eq!(s.sustained_rooms(&oom), 0, "OOM sustains nothing");
        // A free workload is floored by launch overhead, never infinite.
        let free = Workload::default();
        let n = s.sustained_rooms(&free);
        assert!(n > 0 && n < u64::MAX, "free workload rooms {n}");
    }

    #[test]
    fn error_display_human_readable() {
        let e = ExecError::OutOfMemory { required: 12 * (1u64 << 30), available: 8 * (1u64 << 30) };
        let s = e.to_string();
        assert!(s.contains("12.0 GiB") && s.contains("8.0 GiB"), "{s}");
    }
}
