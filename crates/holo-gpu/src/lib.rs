//! Analytical GPU cost model.
//!
//! The paper measures X-Avatar reconstruction on an NVIDIA A100 (Fig. 4)
//! and notes an RTX 3080 laptop GPU "cannot handle the mesh reconstruction
//! at resolutions of 512 and 1024". Neither device is available here, so
//! this crate substitutes a roofline-style cost model: a kernel's
//! execution time is the maximum of its compute time (FLOPs over
//! effective FLOP/s) and its memory time (bytes over effective
//! bandwidth), and a kernel whose working set exceeds device VRAM fails
//! with an out-of-memory error. Device parameters come from published
//! spec sheets; the workload model for X-Avatar-style implicit
//! reconstruction is calibrated in [`workloads`] against the paper's own
//! Fig. 4 anchor (~2.5 FPS at resolution 128 on the A100).

pub mod device;
pub mod workloads;

pub use device::{Device, ExecError, Workload};
pub use workloads::{detector_workload, reconstruction_workload, ReconstructionWorkload};
