//! Temporal delta coding of captions (§3.3).
//!
//! "For the first frame, we encode the information of the entire point
//! cloud into text-based semantics. For subsequent frames, we can encode
//! only the differences from the preceding frame." The delta coder sends
//! set/remove operations for cells whose token changed; receivers apply
//! them to their running caption state.

use crate::caption::Caption;
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::primitives::{read_varint, write_varint};
use holo_runtime::ser::DecodeError;
use std::collections::BTreeMap;

/// One delta operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Set (insert or update) a cell's token.
    Set(u32, u16),
    /// Remove a cell.
    Remove(u32),
}

/// Stateful delta encoder/decoder.
#[derive(Debug, Clone, Default)]
pub struct DeltaCoder {
    state: BTreeMap<u32, u16>,
}

impl DeltaCoder {
    /// Fresh coder with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current caption state.
    pub fn current(&self) -> Caption {
        Caption { tokens: self.state.iter().map(|(&c, &t)| (c, t)).collect() }
    }

    /// Diff the new caption against the internal state, advance the
    /// state, and return the operations.
    pub fn encode(&mut self, new: &Caption) -> Vec<DeltaOp> {
        let new_map: BTreeMap<u32, u16> = new.tokens.iter().copied().collect();
        let mut ops = Vec::new();
        for (&cell, &tok) in &new_map {
            match self.state.get(&cell) {
                Some(&old) if old == tok => {}
                _ => ops.push(DeltaOp::Set(cell, tok)),
            }
        }
        for &cell in self.state.keys() {
            if !new_map.contains_key(&cell) {
                ops.push(DeltaOp::Remove(cell));
            }
        }
        self.state = new_map;
        ops
    }

    /// Apply received operations to the internal state.
    pub fn apply(&mut self, ops: &[DeltaOp]) {
        for op in ops {
            match *op {
                DeltaOp::Set(cell, tok) => {
                    self.state.insert(cell, tok);
                }
                DeltaOp::Remove(cell) => {
                    self.state.remove(&cell);
                }
            }
        }
    }

    /// Serialize operations for the wire (varint + LZMA).
    pub fn ops_to_bytes(ops: &[DeltaOp]) -> Vec<u8> {
        let mut raw = Vec::new();
        write_varint(&mut raw, ops.len() as u32);
        for op in ops {
            match *op {
                DeltaOp::Set(cell, tok) => {
                    write_varint(&mut raw, cell << 1);
                    write_varint(&mut raw, tok as u32);
                }
                DeltaOp::Remove(cell) => {
                    write_varint(&mut raw, (cell << 1) | 1);
                }
            }
        }
        lzma_compress(&raw)
    }

    /// Parse [`DeltaCoder::ops_to_bytes`].
    ///
    /// Hostile-input contract: an op costs at least 1 byte, so the
    /// declared count is bounded by the decompressed length before the
    /// ops vector is sized.
    pub fn ops_from_bytes(data: &[u8]) -> Result<Vec<DeltaOp>, DecodeError> {
        let raw = lzma_decompress(data)?;
        let (count, mut pos) = read_varint(&raw)
            .ok_or(DecodeError::Truncated { needed: 1, available: raw.len() })?;
        let budget = raw.len().saturating_sub(pos);
        if count as usize > budget {
            return Err(DecodeError::LimitExceeded {
                what: "delta ops",
                requested: count as u64,
                limit: budget as u64,
            });
        }
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (tag, used) = read_varint(&raw[pos..])
                .ok_or(DecodeError::Truncated { needed: pos + 1, available: raw.len() })?;
            pos += used;
            let cell = tag >> 1;
            if tag & 1 == 1 {
                ops.push(DeltaOp::Remove(cell));
            } else {
                let (tok, used) = read_varint(&raw[pos..])
                    .ok_or(DecodeError::Truncated { needed: pos + 1, available: raw.len() })?;
                pos += used;
                if tok > u16::MAX as u32 {
                    return Err(DecodeError::corrupt("delta", "token out of range"));
                }
                ops.push(DeltaOp::Set(cell, tok as u16));
            }
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caption(pairs: &[(u32, u16)]) -> Caption {
        Caption { tokens: pairs.to_vec() }
    }

    #[test]
    fn first_frame_is_full() {
        let mut enc = DeltaCoder::new();
        let c = caption(&[(1, 10), (5, 20), (9, 30)]);
        let ops = enc.encode(&c);
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|o| matches!(o, DeltaOp::Set(_, _))));
    }

    #[test]
    fn unchanged_frame_emits_nothing() {
        let mut enc = DeltaCoder::new();
        let c = caption(&[(1, 10), (5, 20)]);
        enc.encode(&c);
        assert!(enc.encode(&c).is_empty());
    }

    #[test]
    fn sender_receiver_stay_in_sync() {
        let mut enc = DeltaCoder::new();
        let mut dec = DeltaCoder::new();
        let frames = [
            caption(&[(1, 10), (5, 20), (9, 30)]),
            caption(&[(1, 10), (5, 21), (9, 30)]),          // token change
            caption(&[(1, 10), (9, 30), (12, 7)]),          // remove + add
            caption(&[]),                                    // all gone
            caption(&[(2, 2)]),
        ];
        for f in &frames {
            let ops = enc.encode(f);
            let bytes = DeltaCoder::ops_to_bytes(&ops);
            let decoded_ops = DeltaCoder::ops_from_bytes(&bytes).unwrap();
            assert_eq!(decoded_ops, ops);
            dec.apply(&decoded_ops);
            assert_eq!(&dec.current(), f, "receiver diverged");
        }
    }

    #[test]
    fn delta_smaller_than_full_for_small_changes() {
        let mut enc = DeltaCoder::new();
        let base: Vec<(u32, u16)> = (0..300).map(|i| (i * 3, (i % 50) as u16)).collect();
        let c0 = caption(&base);
        let full_bytes = DeltaCoder::ops_to_bytes(&enc.encode(&c0));
        // Change 5 cells.
        let mut changed = base.clone();
        for c in changed.iter_mut().take(5) {
            c.1 += 1;
        }
        let delta_bytes = DeltaCoder::ops_to_bytes(&enc.encode(&caption(&changed)));
        assert!(
            delta_bytes.len() * 5 < full_bytes.len(),
            "delta {} vs full {}",
            delta_bytes.len(),
            full_bytes.len()
        );
    }

    #[test]
    fn corrupt_delta_errors() {
        let raw = lzma_compress(&[10]); // claims 10 ops, no payload
        assert!(DeltaCoder::ops_from_bytes(&raw).is_err());
    }
}
