//! Vector-quantized codebooks: the "vocabulary" of the text semantics.

use crate::cells::{CellFeature, FEATURE_DIM};
use holo_math::Pcg32;

/// A k-means codebook over cell features. Token ids are indices into the
/// codebook; the token sequence is the "text".
#[derive(Debug, Clone)]
pub struct Codebook {
    /// Cluster centers.
    pub centers: Vec<[f32; FEATURE_DIM]>,
}

fn dist_sq(a: &[f32; FEATURE_DIM], b: &[f32; FEATURE_DIM]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Codebook {
    /// Train with k-means (k-means++ seeding, fixed iterations, seeded).
    pub fn train(corpus: &[CellFeature], k: usize, iterations: usize, rng: &mut Pcg32) -> Self {
        assert!(!corpus.is_empty(), "empty training corpus");
        let k = k.min(corpus.len()).max(1);
        // k-means++ initialization.
        let mut centers: Vec<[f32; FEATURE_DIM]> = Vec::with_capacity(k);
        centers.push(corpus[rng.index(corpus.len())].0);
        while centers.len() < k {
            // Choose the next center proportional to squared distance.
            let d2: Vec<f32> = corpus
                .iter()
                .map(|f| centers.iter().map(|c| dist_sq(&f.0, c)).fold(f32::INFINITY, f32::min))
                .collect();
            let total: f32 = d2.iter().sum();
            if total <= 1e-12 {
                // All points identical; duplicate the center.
                centers.push(centers[0]);
                continue;
            }
            let mut r = rng.next_f32() * total;
            let mut chosen = corpus.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                r -= d;
                if r <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centers.push(corpus[chosen].0);
        }
        // Lloyd iterations.
        for _ in 0..iterations {
            let mut sums = vec![[0f32; FEATURE_DIM]; k];
            let mut counts = vec![0u32; k];
            for f in corpus {
                let best = Self::nearest(&centers, &f.0);
                counts[best] += 1;
                for (s, v) in sums[best].iter_mut().zip(&f.0) {
                    *s += v;
                }
            }
            for (ci, center) in centers.iter_mut().enumerate() {
                if counts[ci] > 0 {
                    for (c, s) in center.iter_mut().zip(&sums[ci]) {
                        *c = s / counts[ci] as f32;
                    }
                }
            }
        }
        Self { centers }
    }

    fn nearest(centers: &[[f32; FEATURE_DIM]], f: &[f32; FEATURE_DIM]) -> usize {
        let mut best = 0;
        let mut bd = f32::INFINITY;
        for (i, c) in centers.iter().enumerate() {
            let d = dist_sq(c, f);
            if d < bd {
                bd = d;
                best = i;
            }
        }
        best
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True when empty (never for trained codebooks).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Quantize a feature to its token id.
    pub fn quantize(&self, f: &CellFeature) -> u16 {
        Self::nearest(&self.centers, &f.0) as u16
    }

    /// Decode a token back to its (centroid) feature.
    pub fn decode(&self, token: u16) -> Option<CellFeature> {
        self.centers.get(token as usize).map(|c| CellFeature(*c))
    }

    /// Mean quantization error over a corpus (feature-space RMS).
    pub fn quantization_rms(&self, corpus: &[CellFeature]) -> f32 {
        if corpus.is_empty() {
            return 0.0;
        }
        let sum: f32 = corpus
            .iter()
            .map(|f| dist_sq(&self.centers[self.quantize(f) as usize], &f.0))
            .sum();
        (sum / corpus.len() as f32).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_corpus(n: usize, seed: u64) -> Vec<CellFeature> {
        // Three latent clusters.
        let mut rng = Pcg32::new(seed);
        (0..n)
            .map(|_| {
                let c = rng.index(3) as f32;
                let mut f = [0f32; FEATURE_DIM];
                for (k, v) in f.iter_mut().enumerate() {
                    *v = c * 0.3 + (k as f32 * 0.05) + rng.normal() * 0.02;
                }
                CellFeature(f)
            })
            .collect()
    }

    #[test]
    fn kmeans_recovers_clusters() {
        let corpus = synthetic_corpus(600, 1);
        let mut rng = Pcg32::new(2);
        let cb = Codebook::train(&corpus, 3, 12, &mut rng);
        assert_eq!(cb.len(), 3);
        let rms = cb.quantization_rms(&corpus);
        assert!(rms < 0.1, "quantization RMS {rms}");
    }

    #[test]
    fn bigger_codebook_lower_error() {
        let corpus = synthetic_corpus(800, 3);
        let mut rng = Pcg32::new(4);
        let small = Codebook::train(&corpus, 2, 10, &mut rng.fork(1));
        let large = Codebook::train(&corpus, 16, 10, &mut rng.fork(2));
        assert!(large.quantization_rms(&corpus) < small.quantization_rms(&corpus));
    }

    #[test]
    fn quantize_decode_roundtrip_to_center() {
        let corpus = synthetic_corpus(300, 5);
        let mut rng = Pcg32::new(6);
        let cb = Codebook::train(&corpus, 8, 10, &mut rng);
        for f in corpus.iter().take(50) {
            let tok = cb.quantize(f);
            let back = cb.decode(tok).unwrap();
            // Re-quantizing the decoded center gives the same token.
            assert_eq!(cb.quantize(&back), tok);
        }
        assert!(cb.decode(9999).is_none());
    }

    #[test]
    fn degenerate_corpus_handled() {
        let corpus = vec![CellFeature([0.5; FEATURE_DIM]); 20];
        let mut rng = Pcg32::new(7);
        let cb = Codebook::train(&corpus, 4, 5, &mut rng);
        assert!(cb.quantization_rms(&corpus) < 1e-6);
    }

    #[test]
    fn deterministic_training() {
        let corpus = synthetic_corpus(200, 8);
        let a = Codebook::train(&corpus, 4, 8, &mut Pcg32::new(9));
        let b = Codebook::train(&corpus, 4, 8, &mut Pcg32::new(9));
        assert_eq!(a.centers, b.centers);
    }
}
