//! 3D captioning: point cloud -> token sequence -> bytes.

use crate::cells::CellPartition;
use crate::vq::Codebook;
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::primitives::{read_varint, write_varint};
use holo_math::Vec3;
use holo_runtime::ser::DecodeError;

/// A frame caption: one token per occupied cell, in ascending cell order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Caption {
    /// `(cell index, token)` pairs, ascending by cell.
    pub tokens: Vec<(u32, u16)>,
}

impl Caption {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no cells are occupied.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Serialize: varint count, then delta-coded cell indices and tokens,
    /// all LZMA-compressed. This is what crosses the network.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut raw = Vec::with_capacity(4 + self.tokens.len() * 3);
        write_varint(&mut raw, self.tokens.len() as u32);
        let mut prev = 0u32;
        for &(cell, token) in &self.tokens {
            write_varint(&mut raw, cell - prev);
            write_varint(&mut raw, token as u32);
            prev = cell;
        }
        lzma_compress(&raw)
    }

    /// Parse [`Caption::to_bytes`] output.
    ///
    /// Hostile-input contract: a token costs at least 2 bytes (two
    /// varints), so the declared count is checked against the
    /// decompressed length before the token vector is sized — a forged
    /// count can't drive a huge allocation.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let raw = lzma_decompress(data)?;
        let (count, mut pos) = read_varint(&raw)
            .ok_or(DecodeError::Truncated { needed: 1, available: raw.len() })?;
        let budget = raw.len().saturating_sub(pos) / 2;
        if count as usize > budget {
            return Err(DecodeError::LimitExceeded {
                what: "caption tokens",
                requested: count as u64,
                limit: budget as u64,
            });
        }
        let mut tokens = Vec::with_capacity(count as usize);
        let mut prev = 0u32;
        for _ in 0..count {
            let (dc, used) = read_varint(&raw[pos..])
                .ok_or(DecodeError::Truncated { needed: pos + 1, available: raw.len() })?;
            pos += used;
            let (tok, used) = read_varint(&raw[pos..])
                .ok_or(DecodeError::Truncated { needed: pos + 1, available: raw.len() })?;
            pos += used;
            if tok > u16::MAX as u32 {
                return Err(DecodeError::corrupt("caption", format!("token {tok} out of range")));
            }
            prev = prev.wrapping_add(dc);
            tokens.push((prev, tok as u16));
        }
        Ok(Self { tokens })
    }

    /// Render the caption as human-readable pseudo-text ("words" from a
    /// syllable alphabet, one per token) — the literal "text" channel.
    pub fn as_text(&self) -> String {
        const ONSET: [&str; 8] = ["b", "d", "f", "k", "l", "m", "r", "t"];
        const NUCLEUS: [&str; 5] = ["a", "e", "i", "o", "u"];
        let mut s = String::new();
        for (i, &(cell, token)) in self.tokens.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            // Two syllables from the token, one from the cell.
            let t = token as usize;
            s.push_str(ONSET[t % 8]);
            s.push_str(NUCLEUS[(t / 8) % 5]);
            s.push_str(ONSET[(t / 40) % 8]);
            s.push_str(NUCLEUS[(t / 320) % 5]);
            s.push_str(ONSET[cell as usize % 8]);
            s.push_str(NUCLEUS[(cell as usize / 8) % 5]);
        }
        s
    }
}

/// The captioner: partition + codebook.
#[derive(Debug, Clone)]
pub struct Captioner {
    /// Cell partition.
    pub partition: CellPartition,
    /// Trained vocabulary.
    pub codebook: Codebook,
}

impl Captioner {
    /// Caption a point cloud.
    pub fn caption(&self, points: &[Vec3]) -> Caption {
        let tokens = self
            .partition
            .features(points)
            .into_iter()
            .map(|(cell, f)| (cell, self.codebook.quantize(&f)))
            .collect();
        Caption { tokens }
    }

    /// Caption with temporal *token stickiness* (dead-zone quantization):
    /// a cell keeps its previous token as long as the previous codeword
    /// still fits the new feature within `slack` times the best
    /// codeword's error. This suppresses the token churn that sensor
    /// noise causes on cell boundaries, which is what makes the §3.3
    /// delta coding effective on real captures.
    pub fn caption_with_reference(
        &self,
        points: &[Vec3],
        previous: &std::collections::BTreeMap<u32, u16>,
        slack: f32,
    ) -> Caption {
        let dist = |a: &crate::cells::CellFeature, token: u16| -> f32 {
            match self.codebook.decode(token) {
                Some(c) => a.0.iter().zip(&c.0).map(|(x, y)| (x - y) * (x - y)).sum(),
                None => f32::INFINITY,
            }
        };
        let tokens = self
            .partition
            .features(points)
            .into_iter()
            .map(|(cell, f)| {
                let best = self.codebook.quantize(&f);
                if let Some(&prev) = previous.get(&cell) {
                    if prev != best && dist(&f, prev) <= dist(&f, best) * slack.max(1.0) {
                        return (cell, prev);
                    }
                }
                (cell, best)
            })
            .collect();
        Caption { tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellFeature;
    use holo_math::Pcg32;

    fn make_captioner(seed: u64) -> Captioner {
        let partition = CellPartition::body_volume(8);
        let mut rng = Pcg32::new(seed);
        // Train the codebook on random plausible features.
        let corpus: Vec<CellFeature> = (0..500)
            .map(|_| {
                CellFeature([
                    rng.next_f32(),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.next_f32(),
                    rng.next_f32(),
                    rng.next_f32(),
                ])
            })
            .collect();
        let codebook = Codebook::train(&corpus, 64, 8, &mut rng);
        Captioner { partition, codebook }
    }

    fn body_like_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = Pcg32::new(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.normal() * 0.15,
                    1.0 + rng.normal() * 0.4,
                    rng.normal() * 0.1,
                )
            })
            .collect()
    }

    #[test]
    fn caption_roundtrips_through_bytes() {
        let cap = make_captioner(1);
        let cloud = body_like_cloud(3000, 2);
        let caption = cap.caption(&cloud);
        assert!(!caption.is_empty());
        let bytes = caption.to_bytes();
        let back = Caption::from_bytes(&bytes).unwrap();
        assert_eq!(back, caption);
    }

    #[test]
    fn caption_is_tiny_compared_to_cloud() {
        let cap = make_captioner(3);
        let cloud = body_like_cloud(20_000, 4);
        let caption = cap.caption(&cloud);
        let bytes = caption.to_bytes();
        let raw_cloud = cloud.len() * 12;
        assert!(
            bytes.len() * 50 < raw_cloud,
            "caption {} B vs cloud {} B",
            bytes.len(),
            raw_cloud
        );
    }

    #[test]
    fn text_rendering_has_one_word_per_token() {
        let cap = make_captioner(5);
        let cloud = body_like_cloud(1000, 6);
        let caption = cap.caption(&cloud);
        let text = caption.as_text();
        assert_eq!(text.split_whitespace().count(), caption.len());
    }

    #[test]
    fn identical_clouds_identical_captions() {
        let cap = make_captioner(7);
        let cloud = body_like_cloud(2000, 8);
        assert_eq!(cap.caption(&cloud), cap.caption(&cloud));
    }

    #[test]
    fn corrupt_bytes_error() {
        assert!(Caption::from_bytes(&[1, 2, 3]).is_err() || Caption::from_bytes(&[1, 2, 3]).is_ok());
        // Specifically: a valid LZMA stream with truncated caption body.
        let raw = lzma_compress(&[5]); // claims 5 tokens, no data
        assert!(Caption::from_bytes(&raw).is_err());
    }

    #[test]
    fn empty_cloud_empty_caption() {
        let cap = make_captioner(9);
        let caption = cap.caption(&[]);
        assert!(caption.is_empty());
        let back = Caption::from_bytes(&caption.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
