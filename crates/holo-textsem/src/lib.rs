//! Text-based semantics (§3.3).
//!
//! The paper's third semantic type translates 3D content into text and
//! back using dense-captioning and text-to-3D generative models. Those
//! models are not available offline, so this crate builds the closest
//! structural equivalent: a learned discrete *code* — text in the
//! information-theoretic sense. A vector-quantized codebook is trained
//! (k-means) over per-cell geometric features; the "captioner" maps a
//! point cloud to a sequence of tokens (one per occupied cell), and the
//! "text-to-3D" decoder regenerates a point cloud from tokens alone. The
//! substitution preserves exactly what §3.3's systems questions depend
//! on: tiny discrete payloads, lossy reconstruction, a reconstruction
//! cost, cell partitioning (with its loss of global structure), temporal
//! delta coding, and the two-step global+local channel design.
//!
//! - [`cells`] — uniform cell partitions and per-cell features.
//! - [`vq`] — k-means codebook training and quantization.
//! - [`caption`] — cloud -> token caption -> bytes (and a readable
//!   pseudo-word rendering).
//! - [`decode`] — tokens -> point cloud.
//! - [`delta`] — frame-to-frame token deltas (§3.3's inter-frame coding).
//! - [`channels`] — the two-step global + local channel codec.

pub mod caption;
pub mod cells;
pub mod channels;
pub mod decode;
pub mod delta;
pub mod vq;

pub use caption::{Caption, Captioner};
pub use cells::{CellFeature, CellPartition};
pub use channels::GlobalLocalCodec;
pub use decode::TextToCloud;
pub use delta::{DeltaCoder, DeltaOp};
pub use vq::Codebook;
