//! Text-to-3D: regenerate a point cloud from a caption.
//!
//! The decoder inverts the captioner: each token decodes to its codebook
//! feature (density, centroid offset, extent), and points are generated
//! deterministically inside the cell to match those statistics — the
//! generative step standing in for a text-to-3D diffusion model.

use crate::caption::Caption;
use crate::cells::CellPartition;
use crate::vq::Codebook;
use holo_math::{Pcg32, Vec3};
use holo_mesh::pointcloud::PointCloud;

/// The text-to-3D decoder.
#[derive(Debug, Clone)]
pub struct TextToCloud {
    /// Cell partition (must match the captioner's).
    pub partition: CellPartition,
    /// Vocabulary (must match the captioner's).
    pub codebook: Codebook,
    /// Points generated per unit density (cell fully dense = this many).
    pub points_per_cell: u32,
}

impl TextToCloud {
    /// Build a decoder.
    pub fn new(partition: CellPartition, codebook: Codebook) -> Self {
        Self { partition, codebook, points_per_cell: 48 }
    }

    /// Decode a caption into a point cloud. Deterministic: the same
    /// caption always produces the same cloud (generation is seeded by
    /// cell index).
    pub fn decode(&self, caption: &Caption) -> PointCloud {
        let mut cloud = PointCloud::new();
        let s = self.partition.cell_size();
        for &(cell, token) in &caption.tokens {
            let Some(feature) = self.codebook.decode(token) else {
                continue;
            };
            let f = feature.0;
            let center = self.partition.cell_center(cell)
                + Vec3::new(f[1] * s.x, f[2] * s.y, f[3] * s.z);
            let half_ext = Vec3::new(
                (f[4] * s.x * 0.5).max(0.001),
                (f[5] * s.y * 0.5).max(0.001),
                (f[6] * s.z * 0.5).max(0.001),
            );
            let count = ((f[0] * self.points_per_cell as f32).ceil() as u32).max(1);
            // Seeded per cell so decoding is reproducible and temporally
            // stable (unchanged cells regenerate identical points).
            let mut rng = Pcg32::with_stream(cell as u64, 0x7e77);
            for _ in 0..count {
                cloud.points.push(
                    center
                        + Vec3::new(
                            rng.range_f32(-1.0, 1.0) * half_ext.x,
                            rng.range_f32(-1.0, 1.0) * half_ext.y,
                            rng.range_f32(-1.0, 1.0) * half_ext.z,
                        ),
                );
            }
        }
        cloud
    }

    /// The reconstruction compute cost in "generator evaluations" (one
    /// per produced point) — the quantity the GPU model converts to time.
    pub fn decode_cost(&self, caption: &Caption) -> u64 {
        caption
            .tokens
            .iter()
            .filter_map(|&(_, t)| self.codebook.decode(t))
            .map(|f| ((f.0[0] * self.points_per_cell as f32).ceil() as u64).max(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caption::Captioner;
    use crate::cells::CellFeature;
    use holo_mesh::metrics::chamfer_distance;

    fn setup(seed: u64) -> (Captioner, TextToCloud) {
        let partition = CellPartition::body_volume(12);
        let mut rng = Pcg32::new(seed);
        let corpus: Vec<CellFeature> = (0..800)
            .map(|_| {
                CellFeature([
                    rng.next_f32(),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.next_f32(),
                    rng.next_f32(),
                    rng.next_f32(),
                ])
            })
            .collect();
        let codebook = Codebook::train(&corpus, 128, 10, &mut rng);
        let cap = Captioner { partition: partition.clone(), codebook: codebook.clone() };
        let dec = TextToCloud::new(partition, codebook);
        (cap, dec)
    }

    fn body_cloud(seed: u64) -> Vec<Vec3> {
        let mut rng = Pcg32::new(seed);
        (0..8000)
            .map(|_| Vec3::new(rng.normal() * 0.2, 1.0 + rng.normal() * 0.45, rng.normal() * 0.12))
            .collect()
    }

    #[test]
    fn reconstruction_close_to_original() {
        let (cap, dec) = setup(1);
        let cloud = body_cloud(2);
        let caption = cap.caption(&cloud);
        let recon = dec.decode(&caption);
        assert!(!recon.is_empty());
        let d = chamfer_distance(&cloud, &recon.points);
        // Cell size is ~17 cm; reconstruction should be well under one
        // cell of error.
        assert!(d < 0.09, "chamfer {d}");
    }

    #[test]
    fn finer_partition_better_reconstruction() {
        let cloud = body_cloud(3);
        let run = |dims: u32| {
            let partition = CellPartition::body_volume(dims);
            let mut rng = Pcg32::new(4);
            let corpus: Vec<CellFeature> =
                partition.features(&cloud).into_iter().map(|(_, f)| f).collect();
            let codebook = Codebook::train(&corpus, 64, 8, &mut rng);
            let cap = Captioner { partition: partition.clone(), codebook: codebook.clone() };
            let dec = TextToCloud::new(partition, codebook);
            let recon = dec.decode(&cap.caption(&cloud));
            chamfer_distance(&cloud, &recon.points)
        };
        let coarse = run(4);
        let fine = run(16);
        assert!(fine < coarse, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn decoding_is_deterministic() {
        let (cap, dec) = setup(5);
        let caption = cap.caption(&body_cloud(6));
        let a = dec.decode(&caption);
        let b = dec.decode(&caption);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn decode_cost_tracks_occupancy() {
        let (cap, dec) = setup(7);
        let small = cap.caption(&body_cloud(8)[..500].to_vec());
        let large = cap.caption(&body_cloud(8));
        assert!(dec.decode_cost(&large) > dec.decode_cost(&small));
    }

    #[test]
    fn empty_caption_empty_cloud() {
        let (_, dec) = setup(9);
        let recon = dec.decode(&Caption { tokens: vec![] });
        assert!(recon.is_empty());
        assert_eq!(dec.decode_cost(&Caption { tokens: vec![] }), 0);
    }
}
