//! Cell partitions and per-cell geometric features.

use holo_math::{Aabb, Vec3};
use std::collections::BTreeMap;

/// Dimensionality of a cell feature vector.
pub const FEATURE_DIM: usize = 7;

/// Per-cell geometric summary: normalized point count, centroid offset
/// from the cell center (in cell units), and per-axis extent (in cell
/// units). This is what the captioner quantizes into a token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFeature(pub [f32; FEATURE_DIM]);

/// A uniform grid partition over a fixed body-volume bounding box.
#[derive(Debug, Clone)]
pub struct CellPartition {
    /// Partitioned region.
    pub bounds: Aabb,
    /// Cells per axis.
    pub dims: u32,
}

impl CellPartition {
    /// Create a partition with `dims` cells per axis over `bounds`.
    pub fn new(bounds: Aabb, dims: u32) -> Self {
        Self { bounds, dims: dims.max(1) }
    }

    /// The standard capture volume: a 2 m cube around a standing person.
    pub fn body_volume(dims: u32) -> Self {
        Self::new(
            Aabb::new(Vec3::new(-1.0, 0.0, -1.0), Vec3::new(1.0, 2.0, 1.0)),
            dims,
        )
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        (self.dims as usize).pow(3)
    }

    /// Cell side lengths.
    pub fn cell_size(&self) -> Vec3 {
        self.bounds.size() / self.dims as f32
    }

    /// Linear index of the cell containing `p`, or `None` outside bounds.
    pub fn cell_of(&self, p: Vec3) -> Option<u32> {
        if !self.bounds.contains(p) {
            return None;
        }
        let rel = p - self.bounds.min;
        let s = self.cell_size();
        let f = |r: f32, s: f32| (((r / s.max(1e-9)) as u32).min(self.dims - 1)) as u32;
        let (x, y, z) = (f(rel.x, s.x), f(rel.y, s.y), f(rel.z, s.z));
        Some((z * self.dims + y) * self.dims + x)
    }

    /// World-space center of a cell.
    pub fn cell_center(&self, idx: u32) -> Vec3 {
        let d = self.dims;
        let x = idx % d;
        let y = (idx / d) % d;
        let z = idx / (d * d);
        let s = self.cell_size();
        self.bounds.min
            + Vec3::new((x as f32 + 0.5) * s.x, (y as f32 + 0.5) * s.y, (z as f32 + 0.5) * s.z)
    }

    /// Compute features for every occupied cell, sorted by cell index
    /// (deterministic order).
    pub fn features(&self, points: &[Vec3]) -> Vec<(u32, CellFeature)> {
        #[derive(Default)]
        struct Acc {
            n: u32,
            sum: Vec3,
            min: Vec3,
            max: Vec3,
        }
        // BTreeMap: iteration is already in cell-index order, so the
        // output is canonical by construction, not by a trailing sort.
        let mut cells: BTreeMap<u32, Acc> = BTreeMap::new();
        for &p in points {
            if let Some(idx) = self.cell_of(p) {
                let acc = cells.entry(idx).or_insert(Acc {
                    n: 0,
                    sum: Vec3::ZERO,
                    min: Vec3::splat(f32::INFINITY),
                    max: Vec3::splat(f32::NEG_INFINITY),
                });
                acc.n += 1;
                acc.sum += p;
                acc.min = acc.min.min(p);
                acc.max = acc.max.max(p);
            }
        }
        let s = self.cell_size();
        cells
            .into_iter()
            .map(|(idx, acc)| {
                let center = self.cell_center(idx);
                let centroid = acc.sum / acc.n as f32;
                let off = centroid - center;
                let ext = acc.max - acc.min;
                // Density saturates at ~64 points per cell.
                let density = (acc.n as f32 / 64.0).min(1.0);
                let f = CellFeature([
                    density,
                    (off.x / s.x).clamp(-0.5, 0.5),
                    (off.y / s.y).clamp(-0.5, 0.5),
                    (off.z / s.z).clamp(-0.5, 0.5),
                    (ext.x / s.x).clamp(0.0, 1.0),
                    (ext.y / s.y).clamp(0.0, 1.0),
                    (ext.z / s.z).clamp(0.0, 1.0),
                ]);
                (idx, f)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    #[test]
    fn cell_of_and_center_consistent() {
        let part = CellPartition::body_volume(8);
        let mut rng = Pcg32::new(1);
        for _ in 0..500 {
            let p = Vec3::new(rng.range_f32(-0.99, 0.99), rng.range_f32(0.01, 1.99), rng.range_f32(-0.99, 0.99));
            let idx = part.cell_of(p).expect("inside");
            let c = part.cell_center(idx);
            assert_eq!(part.cell_of(c), Some(idx));
            let s = part.cell_size();
            assert!((p - c).abs().x <= s.x * 0.51);
        }
        assert!(part.cell_of(Vec3::new(5.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn features_deterministic_and_sorted() {
        let part = CellPartition::body_volume(8);
        let mut rng = Pcg32::new(2);
        let pts: Vec<Vec3> = (0..2000)
            .map(|_| Vec3::new(rng.range_f32(-0.5, 0.5), rng.range_f32(0.5, 1.5), rng.range_f32(-0.3, 0.3)))
            .collect();
        let a = part.features(&pts);
        let b = part.features(&pts);
        assert_eq!(a.len(), b.len());
        for ((ia, fa), (ib, fb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(fa.0, fb.0);
        }
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn feature_values_in_range() {
        let part = CellPartition::body_volume(6);
        let mut rng = Pcg32::new(3);
        let pts: Vec<Vec3> = (0..3000)
            .map(|_| Vec3::new(rng.range_f32(-1.0, 1.0), rng.range_f32(0.0, 2.0), rng.range_f32(-1.0, 1.0)))
            .collect();
        for (_, f) in part.features(&pts) {
            assert!((0.0..=1.0).contains(&f.0[0]));
            for k in 1..4 {
                assert!((-0.5..=0.5).contains(&f.0[k]), "offset {k}: {}", f.0[k]);
            }
            for k in 4..7 {
                assert!((0.0..=1.0).contains(&f.0[k]));
            }
        }
    }

    #[test]
    fn dense_cluster_small_extent() {
        let part = CellPartition::body_volume(4);
        // All points at nearly the same spot.
        let pts = vec![Vec3::new(0.1, 1.0, 0.1); 100];
        let feats = part.features(&pts);
        assert_eq!(feats.len(), 1);
        let f = feats[0].1;
        assert!(f.0[0] > 0.9, "density {}", f.0[0]);
        assert!(f.0[4] < 0.05 && f.0[5] < 0.05, "extent should be tiny");
    }
}
