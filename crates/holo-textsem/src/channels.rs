//! Two-step global + local channel coding (§3.3).
//!
//! Partitioning the human model into cells loses global structure — the
//! paper's fix is a two-step encoding: "First, we encode global features
//! with a dedicated text channel. Following this, we design fine-grained
//! local feature channels with reference to the global one." Here the
//! global channel carries each coarse region's centroid (finely
//! quantized), and the decoder rigidly shifts every coarse region of the
//! locally-decoded cloud so its centroid matches the global channel —
//! restoring the overall body pose that per-cell quantization distorts.

use crate::caption::{Caption, Captioner};
use crate::cells::CellPartition;
use crate::decode::TextToCloud;
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::primitives::{read_varint, write_varint};
use holo_math::Vec3;
use holo_runtime::ser::DecodeError;
use holo_mesh::pointcloud::PointCloud;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The global channel: per-coarse-cell centroids quantized to 8 bits per
/// component within the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalChannel {
    /// `(coarse cell index, quantized centroid [0,255]^3)`.
    pub entries: Vec<(u32, [u8; 3])>,
}

impl GlobalChannel {
    /// Serialize (varint + LZMA).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut raw = Vec::new();
        write_varint(&mut raw, self.entries.len() as u32);
        let mut prev = 0u32;
        for &(cell, q) in &self.entries {
            write_varint(&mut raw, cell - prev);
            raw.extend_from_slice(&q);
            prev = cell;
        }
        lzma_compress(&raw)
    }

    /// Parse.
    ///
    /// Hostile-input contract: an entry costs at least 4 bytes (one
    /// varint + 3 centroid bytes), so the declared count is bounded by
    /// the decompressed length before allocation.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let raw = lzma_decompress(data)?;
        let (count, mut pos) = read_varint(&raw)
            .ok_or(DecodeError::Truncated { needed: 1, available: raw.len() })?;
        let budget = raw.len().saturating_sub(pos) / 4;
        if count as usize > budget {
            return Err(DecodeError::LimitExceeded {
                what: "global channel entries",
                requested: count as u64,
                limit: budget as u64,
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        let mut prev = 0u32;
        for _ in 0..count {
            let (dc, used) = read_varint(&raw[pos..])
                .ok_or(DecodeError::Truncated { needed: pos + 1, available: raw.len() })?;
            pos += used;
            if pos + 3 > raw.len() {
                return Err(DecodeError::Truncated { needed: pos + 3, available: raw.len() });
            }
            prev = prev.wrapping_add(dc);
            entries.push((prev, [raw[pos], raw[pos + 1], raw[pos + 2]]));
            pos += 3;
        }
        Ok(Self { entries })
    }
}

/// The two-step codec: a coarse global partition plus a fine local
/// captioner/decoder pair.
pub struct GlobalLocalCodec {
    /// Coarse partition for the global channel (e.g. 4^3).
    pub global_partition: CellPartition,
    /// Fine captioner (local channel).
    pub captioner: Captioner,
    /// Fine decoder.
    pub decoder: TextToCloud,
}

impl GlobalLocalCodec {
    /// Encode both channels.
    pub fn encode(&self, points: &[Vec3]) -> (GlobalChannel, Caption) {
        let local = self.captioner.caption(points);
        // Global: centroid of the points in each coarse cell. BTreeMap
        // iteration is already in cell order, so the channel's entry
        // order is canonical by construction.
        let mut acc: BTreeMap<u32, (Vec3, u32)> = BTreeMap::new();
        for &p in points {
            if let Some(c) = self.global_partition.cell_of(p) {
                let e = acc.entry(c).or_insert((Vec3::ZERO, 0));
                e.0 += p;
                e.1 += 1;
            }
        }
        let s = self.global_partition.cell_size();
        let entries: Vec<(u32, [u8; 3])> = acc
            .into_iter()
            .map(|(cell, (sum, n))| {
                let centroid = sum / n as f32;
                let center = self.global_partition.cell_center(cell);
                let rel = centroid - center;
                let q = |v: f32, s: f32| (((v / s + 0.5).clamp(0.0, 1.0)) * 255.0).round() as u8;
                (cell, [q(rel.x, s.x), q(rel.y, s.y), q(rel.z, s.z)])
            })
            .collect();
        (GlobalChannel { entries }, local)
    }

    /// Decode. When `global` is present, coarse regions are rigidly
    /// shifted so their centroids match the global channel.
    pub fn decode(&self, global: Option<&GlobalChannel>, local: &Caption) -> PointCloud {
        let mut cloud = self.decoder.decode(local);
        let Some(global) = global else {
            return cloud;
        };
        let s = self.global_partition.cell_size();
        // Target centroid per coarse cell.
        let mut target: HashMap<u32, Vec3> = HashMap::new();
        for &(cell, q) in &global.entries {
            let center = self.global_partition.cell_center(cell);
            let dq = |b: u8, s: f32| (b as f32 / 255.0 - 0.5) * s;
            target.insert(cell, center + Vec3::new(dq(q[0], s.x), dq(q[1], s.y), dq(q[2], s.z)));
        }
        // Current centroid per coarse cell of the decoded cloud.
        // Ordered like the encoder's accumulator, so any future
        // iteration over it stays canonical.
        let mut acc: BTreeMap<u32, (Vec3, u32)> = BTreeMap::new();
        let assignment: Vec<Option<u32>> =
            cloud.points.iter().map(|&p| self.global_partition.cell_of(p)).collect();
        for (p, cell) in cloud.points.iter().zip(&assignment) {
            if let Some(c) = cell {
                let e = acc.entry(*c).or_insert((Vec3::ZERO, 0));
                e.0 += *p;
                e.1 += 1;
            }
        }
        let shift: HashMap<u32, Vec3> = acc
            .into_iter()
            .filter_map(|(cell, (sum, n))| {
                target.get(&cell).map(|t| (cell, *t - sum / n as f32))
            })
            .collect();
        for (p, cell) in cloud.points.iter_mut().zip(&assignment) {
            if let Some(c) = cell {
                if let Some(d) = shift.get(c) {
                    *p += *d;
                }
            }
        }
        cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellFeature;
    use crate::vq::Codebook;
    use holo_math::Pcg32;
    use holo_mesh::metrics::chamfer_distance;

    fn codec(local_vocab: usize, seed: u64) -> GlobalLocalCodec {
        let fine = CellPartition::body_volume(12);
        let mut rng = Pcg32::new(seed);
        let corpus: Vec<CellFeature> = (0..600)
            .map(|_| {
                CellFeature([
                    rng.next_f32(),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.range_f32(-0.5, 0.5),
                    rng.next_f32(),
                    rng.next_f32(),
                    rng.next_f32(),
                ])
            })
            .collect();
        let codebook = Codebook::train(&corpus, local_vocab, 8, &mut rng);
        GlobalLocalCodec {
            global_partition: CellPartition::body_volume(4),
            captioner: Captioner { partition: fine.clone(), codebook: codebook.clone() },
            decoder: TextToCloud::new(fine, codebook),
        }
    }

    fn body_cloud(seed: u64) -> Vec<Vec3> {
        let mut rng = Pcg32::new(seed);
        (0..6000)
            .map(|_| Vec3::new(rng.normal() * 0.2, 1.0 + rng.normal() * 0.4, rng.normal() * 0.12))
            .collect()
    }

    #[test]
    fn global_channel_roundtrips() {
        let c = codec(64, 1);
        let cloud = body_cloud(2);
        let (global, _) = c.encode(&cloud);
        assert!(!global.entries.is_empty());
        let back = GlobalChannel::from_bytes(&global.to_bytes()).unwrap();
        assert_eq!(back, global);
    }

    #[test]
    fn global_correction_improves_reconstruction() {
        // A tiny local vocabulary has large per-cell quantization bias;
        // the global channel must pull coarse centroids back into place.
        let c = codec(4, 3);
        let cloud = body_cloud(4);
        let (global, local) = c.encode(&cloud);
        let without = c.decode(None, &local);
        let with = c.decode(Some(&global), &local);
        let err_without = chamfer_distance(&cloud, &without.points);
        let err_with = chamfer_distance(&cloud, &with.points);
        assert!(
            err_with < err_without,
            "global channel must help: with {err_with} without {err_without}"
        );
    }

    #[test]
    fn global_channel_is_small() {
        let c = codec(64, 5);
        let cloud = body_cloud(6);
        let (global, local) = c.encode(&cloud);
        let gb = global.to_bytes().len();
        let lb = local.to_bytes().len();
        assert!(gb < lb, "global {gb} B should be smaller than local {lb} B");
        assert!(gb < 400, "global channel {gb} B");
    }

    #[test]
    fn decode_without_global_still_works() {
        let c = codec(64, 7);
        let cloud = body_cloud(8);
        let (_, local) = c.encode(&cloud);
        let recon = c.decode(None, &local);
        assert!(!recon.is_empty());
    }

    #[test]
    fn corrupt_global_errors() {
        let raw = lzma_compress(&[3, 0]); // 3 entries, truncated
        assert!(GlobalChannel::from_bytes(&raw).is_err());
    }
}
