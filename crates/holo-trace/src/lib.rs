//! **holo-trace** — deterministic structured tracing + metrics for the
//! SemHolo pipeline.
//!
//! The paper's whole evaluation is about *where time and bytes go* —
//! extraction vs. transmission vs. reconstruction against the 100 ms
//! interactivity budget — so the pipeline needs per-stage, per-frame
//! visibility, not just end-of-run aggregates. This crate provides it
//! in the spirit of `tracing`/`metrics`, with two properties those
//! crates do not give us:
//!
//! 1. **Determinism.** Spans are stamped in virtual [`SimTime`]
//!    microseconds supplied by the simulation, never the wall clock, so
//!    two runs of the same seed produce **byte-identical** trace-event
//!    JSON. (Wall-clock measurements are allowed only in histograms,
//!    which are excluded from the byte-identity guarantee; see
//!    [`metrics`].)
//! 2. **A free disabled path.** Every recording entry point first reads
//!    one relaxed `AtomicBool`; when tracing is off the call returns
//!    immediately without allocating or touching the thread-local
//!    recorder. Enable with `SEMHOLO_TRACE=1` or [`enable`].
//!
//! The recorder is thread-local: each simulation thread owns its own
//! event stream, so tests run in parallel without interleaving spans.
//! When a simulation fans out over the deterministic fork-join pool,
//! use [`parallel::par_map`] — it merges worker recorders back into the
//! caller's at scope exit, byte-identically across thread counts.
//!
//! - [`recorder`] — the thread-local [`Recorder`]: span enter/exit with
//!   parent nesting, logical lane ids (chrome "tids"), metrics.
//! - [`metrics`] — counters, gauges, and fixed-bucket histograms with a
//!   canonical-JSON snapshot (sorted keys, via `holo_runtime::ser`).
//! - [`chrome`] — `chrome://tracing` / Perfetto trace-event export.
//! - [`report`] — [`TraceReport`]: the per-stage latency table printed
//!   by `examples/quickstart.rs` and the benches.
//! - [`parallel`] — `holo_runtime::par` scope hooks: deterministic
//!   worker-recorder merge (spans re-sorted by `(start_us, lane)` with
//!   a stable per-thread `seq` tiebreak at scope exit).
//!
//! # Example
//!
//! ```
//! holo_trace::enable();
//! holo_trace::reset();
//! holo_trace::span_enter("frame", 0);
//! holo_trace::span_enter("extract", 0);
//! holo_trace::span_exit(7_000);          // virtual microseconds
//! holo_trace::span_exit(9_000);
//! holo_trace::counter("frames", 1);
//! let report = holo_trace::trace_report();
//! assert_eq!(report.get("extract").unwrap().count, 1);
//! let json = holo_trace::chrome_trace(); // byte-identical per seed
//! assert!(json.contains("\"traceEvents\""));
//! # holo_trace::disable();
//! ```

pub mod chrome;
pub mod metrics;
pub mod parallel;
pub mod recorder;
pub mod report;

pub use metrics::{Gauge, Histogram, Metrics};
pub use recorder::{Recorder, SpanEvent};
pub use report::{StageStat, TraceReport};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide enable flag: the fast path every instrumentation site
/// checks first.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Whether `SEMHOLO_TRACE` has been consulted yet.
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
}

/// Is tracing on? One relaxed atomic load after the first call (the
/// first call reads `SEMHOLO_TRACE`; `1` or any non-empty value other
/// than `0` enables).
#[inline]
pub fn enabled() -> bool {
    if !ENV_CHECKED.load(Ordering::Relaxed) {
        init_from_env();
    }
    ENABLED.load(Ordering::Relaxed)
}

#[cold]
fn init_from_env() {
    let on = std::env::var("SEMHOLO_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    // `enable`/`disable` may have run first; they set ENV_CHECKED before
    // this can observe it unset, so only a pristine process lands here.
    if !ENV_CHECKED.swap(true, Ordering::Relaxed) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Turn tracing on programmatically (overrides the environment).
pub fn enable() {
    ENV_CHECKED.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off programmatically (overrides the environment).
pub fn disable() {
    ENV_CHECKED.store(true, Ordering::Relaxed);
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clear this thread's recorder: spans, open stack, metrics, lane.
pub fn reset() {
    RECORDER.with(|r| r.borrow_mut().reset());
}

/// Run `f` with mutable access to this thread's recorder (for tests and
/// exporters; instrumentation sites should use the free functions).
pub fn with_recorder<T>(f: impl FnOnce(&mut Recorder) -> T) -> T {
    RECORDER.with(|r| f(&mut r.borrow_mut()))
}

/// Open a span at virtual time `at_us`. Must be matched by a
/// [`span_exit`]; nesting is tracked per thread.
#[inline]
pub fn span_enter(name: &'static str, at_us: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().span_enter(name, at_us, None));
}

/// Open a span carrying a frame index (rendered into the chrome-trace
/// `args`, so per-frame stages are identifiable in the viewer).
#[inline]
pub fn span_enter_frame(name: &'static str, at_us: u64, frame: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().span_enter(name, at_us, Some(frame)));
}

/// Close the innermost open span at virtual time `at_us`.
#[inline]
pub fn span_exit(at_us: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().span_exit(at_us));
}

/// Route subsequent spans to a logical lane (a chrome-trace "tid").
/// Simulations use one lane per participant so fan-out renders as
/// parallel tracks.
#[inline]
pub fn set_lane(lane: u32) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().lane = lane);
}

/// Add `delta` to a monotonic counter.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.counter(name, delta));
}

/// Record an instantaneous gauge observation (last/min/max/mean kept).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.gauge(name, value));
}

/// Record a value into a fixed-bucket histogram.
#[inline]
pub fn histogram(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.histogram(name, value));
}

/// Record a **wall-clock** value into a fixed-bucket histogram. The
/// histogram is tagged `nondeterministic: true` in the snapshot, which
/// is how the SLO engine and the bench regression gate know to skip the
/// family — by flag, not by a hard-coded name list. Use this (and only
/// this) for real-time measurements; everything else stays virtual.
#[inline]
pub fn histogram_wall(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.histogram_wall(name, value));
}

/// Canonical-JSON metric snapshot of this thread's recorder (sorted
/// keys; see [`Metrics::to_json`]), plus the recorder's exact
/// `spans_dropped` count so span-cap truncation is visible downstream.
pub fn snapshot_json() -> holo_runtime::ser::JsonValue {
    use holo_runtime::ser::{JsonValue, ToJson};
    RECORDER.with(|r| {
        let r = r.borrow();
        let mut doc = r.metrics.to_json();
        if let JsonValue::Obj(pairs) = &mut doc {
            // Keys stay sorted: bucket_bounds, counters, gauges,
            // histograms, spans_dropped.
            pairs.push(("spans_dropped".to_string(), r.spans_dropped.to_json()));
        }
        doc
    })
}

/// Render this thread's completed spans as chrome://tracing trace-event
/// JSON. Deterministic: virtual timestamps only, stable ordering.
pub fn chrome_trace() -> String {
    RECORDER.with(|r| chrome::chrome_trace_json(&r.borrow().spans))
}

/// Summarize this thread's completed spans into a per-stage table
/// (carrying the recorder's `spans_dropped` count, so a capped run
/// warns in the rendered table instead of looking merely short).
pub fn trace_report() -> TraceReport {
    RECORDER.with(|r| {
        let r = r.borrow();
        TraceReport::from_spans(&r.spans).with_spans_dropped(r.spans_dropped)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The enable flag is process-wide; serialize tests that toggle it.
    pub(crate) fn flag_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = flag_lock();
        disable();
        reset();
        span_enter("s", 0);
        span_exit(10);
        counter("c", 1);
        histogram("h", 1.0);
        gauge("g", 1.0);
        with_recorder(|r| {
            assert!(r.spans.is_empty());
            assert!(r.metrics.is_empty());
        });
    }

    #[test]
    fn enabled_records_spans_and_metrics() {
        let _g = flag_lock();
        enable();
        reset();
        span_enter_frame("frame", 100, 3);
        span_enter("inner", 150);
        span_exit(250);
        span_exit(400);
        counter("c", 2);
        counter("c", 3);
        gauge("depth", 4.0);
        histogram("lat_ms", 0.3);
        with_recorder(|r| {
            assert_eq!(r.spans.len(), 2);
            // Children complete (and are recorded) before parents.
            assert_eq!(r.spans[0].name, "inner");
            assert_eq!(r.spans[0].depth, 1);
            assert_eq!(r.spans[1].name, "frame");
            assert_eq!(r.spans[1].depth, 0);
            assert_eq!(r.spans[1].frame, Some(3));
            assert_eq!(r.metrics.counters.get("c"), Some(&5));
        });
        disable();
        reset();
    }

    #[test]
    fn lanes_tag_spans() {
        let _g = flag_lock();
        enable();
        reset();
        set_lane(7);
        span_enter("fwd", 0);
        span_exit(5);
        with_recorder(|r| assert_eq!(r.spans[0].lane, 7));
        disable();
        reset();
    }

    #[test]
    fn reset_clears_everything() {
        let _g = flag_lock();
        enable();
        reset();
        span_enter("s", 0);
        span_exit(1);
        counter("c", 1);
        reset();
        with_recorder(|r| {
            assert!(r.spans.is_empty());
            assert!(r.metrics.is_empty());
            assert_eq!(r.lane, 0);
        });
        disable();
    }
}
