//! Deterministic merging of worker recorders at fork-join scope exit.
//!
//! The recorder is thread-local, so a bare `holo_runtime::par::par_map`
//! would strand every span and counter recorded on a worker thread in
//! TLS that dies with the worker. This module closes that hole: it
//! installs [`holo_runtime::par::ScopeHooks`] that
//!
//! 1. mark the parent recorder's span count when a scope opens,
//! 2. snapshot each worker's recorder (spans + metrics) when its chunk
//!    completes, and
//! 3. at scope exit — on the parent thread, with payloads in worker
//!    index order — append the snapshots, [`Metrics::merge`] the
//!    registries, and **stable-sort the scope-local spans by
//!    `(start_us, lane)`**.
//!
//! The sort is the byte-identity trick. Workers interleave in virtual
//! time, so raw concatenation order depends on the partition map (and
//! therefore on the thread count); `(start_us, lane)` is a pure
//! function of the span set. The sort is *stable*, and payload
//! concatenation in worker index order reproduces exactly the
//! sequential item order, so the per-thread record sequence (`seq`)
//! breaks the remaining ties identically at every thread count. The
//! sequential leg (1 worker, run inline on the caller) goes through the
//! same `end` hook and gets the same sort, which is what makes
//! `SEMHOLO_THREADS=1` and `=N` produce the same bytes rather than
//! merely equivalent traces.
//!
//! Call sites in the simulators use [`par_map`]/[`scope`] from this
//! module rather than `holo_runtime::par` directly — the wrappers
//! lazily install the hooks (a process-wide one-shot), so merging works
//! no matter which subsystem parallelizes first.

use crate::recorder::MAX_SPANS;
use crate::{Metrics, SpanEvent};
use holo_runtime::par::{self, ScopeHooks, ScopePayload, ScopeToken};
use std::sync::Once;

/// What a worker's recorder contributes to the scope merge.
struct TracePayload {
    spans: Vec<SpanEvent>,
    metrics: Metrics,
    truncated: bool,
    spans_dropped: u64,
}

/// Parent-side scope state: where this scope's spans start.
struct TraceToken {
    marker: usize,
}

fn begin() -> ScopeToken {
    let marker =
        if crate::enabled() { crate::with_recorder(|r| r.spans.len()) } else { 0 };
    Box::new(TraceToken { marker })
}

fn collect() -> ScopePayload {
    if !crate::enabled() {
        return Box::new(TracePayload {
            spans: Vec::new(),
            metrics: Metrics::default(),
            truncated: false,
            spans_dropped: 0,
        });
    }
    crate::with_recorder(|r| {
        Box::new(TracePayload {
            spans: std::mem::take(&mut r.spans),
            metrics: std::mem::take(&mut r.metrics),
            truncated: r.truncated,
            spans_dropped: std::mem::take(&mut r.spans_dropped),
        }) as ScopePayload
    })
}

fn end(token: ScopeToken, payloads: Vec<ScopePayload>) {
    let token = token.downcast::<TraceToken>().expect("foreign scope token");
    if !crate::enabled() {
        return;
    }
    crate::with_recorder(|r| {
        for payload in payloads {
            let p = payload.downcast::<TracePayload>().expect("foreign scope payload");
            r.truncated |= p.truncated;
            r.spans_dropped += p.spans_dropped;
            for span in p.spans {
                if r.spans.len() >= MAX_SPANS {
                    r.truncated = true;
                    r.spans_dropped += 1;
                    continue;
                }
                r.spans.push(span);
            }
            r.metrics.merge(&p.metrics);
        }
        // Canonicalize this scope's spans. Stable sort: equal
        // (start, lane) keys keep sequential item order (see module
        // docs), so every thread count renders the same bytes.
        let marker = token.marker.min(r.spans.len());
        r.spans[marker..].sort_by_key(|s| (s.start_us, s.lane));
    });
}

/// Install the trace merge hooks into the fork-join pool (process-wide,
/// idempotent). The [`par_map`]/[`scope`] wrappers call this; exposed
/// for call sites that reach `holo_runtime::par` directly.
pub fn install() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        par::set_scope_hooks(ScopeHooks { begin, collect, end });
    });
}

/// [`holo_runtime::par::par_map`] with trace merging installed: spans
/// and metrics recorded by workers land in the caller's recorder, in
/// canonical order, byte-identically across thread counts.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    install();
    par::par_map(items, f)
}

/// [`holo_runtime::par::scope`] with trace merging installed.
pub fn scope<R: Send>(tasks: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
    install();
    par::scope(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One traced parallel workload; returns (chrome trace, metric
    /// snapshot) rendered from the caller's recorder after the scope.
    fn traced_run() -> (String, String) {
        crate::reset();
        let out = par_map((0..6u64).collect::<Vec<_>>(), |i| {
            crate::set_lane(i as u32);
            crate::span_enter("work", i * 100);
            crate::span_enter("inner", i * 100 + 10);
            crate::counter("items", 1);
            crate::gauge("idx", i as f64);
            crate::span_exit(i * 100 + 40);
            crate::span_exit(i * 100 + 50);
            i * 2
        });
        assert_eq!(out, (0..6).map(|i| i * 2).collect::<Vec<_>>());
        (crate::chrome_trace(), crate::snapshot_json().render())
    }

    #[test]
    fn merge_is_byte_identical_across_thread_counts() {
        let _g = crate::tests::flag_lock();
        crate::enable();
        par::set_thread_override(Some(1));
        let base = traced_run();
        assert!(base.0.contains("\"name\":\"work\""));
        for t in [2, 3, 8] {
            par::set_thread_override(Some(t));
            let run = traced_run();
            assert_eq!(run.0, base.0, "chrome trace diverged at threads={t}");
            assert_eq!(run.1, base.1, "metric snapshot diverged at threads={t}");
        }
        par::set_thread_override(None);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn worker_metrics_merge_exactly() {
        let _g = crate::tests::flag_lock();
        crate::enable();
        par::set_thread_override(Some(4));
        crate::reset();
        par_map((0..100u64).collect::<Vec<_>>(), |i| {
            crate::counter("n", 1);
            crate::counter("sum", i);
        });
        crate::with_recorder(|r| {
            assert_eq!(r.metrics.counter_value("n"), 100);
            assert_eq!(r.metrics.counter_value("sum"), (0..100).sum::<u64>());
        });
        par::set_thread_override(None);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_tracing_still_maps() {
        let _g = crate::tests::flag_lock();
        crate::disable();
        par::set_thread_override(Some(4));
        let out = par_map(vec![1u32, 2, 3], |x| {
            crate::span_enter("ghost", 0);
            crate::span_exit(1);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        crate::with_recorder(|r| assert!(r.spans.is_empty()));
        par::set_thread_override(None);
    }

    #[test]
    fn surrounding_spans_survive_a_scope() {
        // Spans already on the parent recorder must not be re-sorted or
        // lost; only the scope-local suffix is canonicalized.
        let _g = crate::tests::flag_lock();
        crate::enable();
        crate::reset();
        par::set_thread_override(Some(2));
        crate::span_enter("outer", 0);
        crate::span_exit(5);
        par_map(vec![900u64, 100], |start| {
            crate::span_enter("par", start);
            crate::span_exit(start + 1);
        });
        crate::with_recorder(|r| {
            let got: Vec<_> = r.spans.iter().map(|s| (s.name, s.start_us)).collect();
            assert_eq!(got, vec![("outer", 0), ("par", 100), ("par", 900)]);
        });
        par::set_thread_override(None);
        crate::disable();
        crate::reset();
    }
}
