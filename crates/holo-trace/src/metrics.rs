//! Counters, gauges, and fixed-bucket histograms.
//!
//! All three are keyed by name in `BTreeMap`s, so the JSON snapshot
//! iterates in sorted order and renders canonically. Histograms use one
//! fixed 1–2.5–5 geometric bucket ladder spanning `1e-6 .. 1e6` — wide
//! enough for ratios, milliseconds, and byte counts alike — so two
//! histograms are always mergeable and the snapshot shape never depends
//! on the data. Values recorded from the wall clock (the compression
//! codecs' timing histograms) are the one deliberately nondeterministic
//! input; everything else in the recorder is virtual-time only.

use holo_runtime::ser::{JsonValue, ToJson};
use std::collections::BTreeMap;

/// Upper bounds of the fixed histogram buckets (1–2.5–5 per decade,
/// `1e-6 ..= 1e6`); values above the last bound land in an overflow
/// bucket.
pub const BUCKET_BOUNDS: [f64; 37] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 1e1, 2.5e1, 5e1, 1e2, 2.5e2, 5e2, 1e3, 2.5e3, 5e3,
    1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6,
];

/// A last-value gauge that also keeps min/max/mean of its observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    /// Most recent observation.
    pub last: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sum of observations (mean = sum / count).
    pub sum: f64,
    /// Observation count.
    pub count: u64,
}

impl Gauge {
    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.last = v;
        self.sum += v;
        self.count += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another gauge's observations into this one, as if they had
    /// been recorded here after this gauge's own (so `last` takes the
    /// other's last). Used by the fork-join trace merge, where "after"
    /// means later in canonical worker order.
    pub fn absorb(&mut self, other: &Gauge) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
        self.last = other.last;
    }
}

impl ToJson for Gauge {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("last", self.last.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("mean", self.mean().to_json()),
            ("count", self.count.to_json()),
        ])
    }
}

/// A fixed-bucket histogram over [`BUCKET_BOUNDS`], plus exact
/// count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Count per bucket (`value <= BUCKET_BOUNDS[i]`, cumulative-free).
    counts: [u64; BUCKET_BOUNDS.len()],
    /// Values above the last bound.
    pub overflow: u64,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// True when any observation came from the wall clock (see
    /// [`Metrics::histogram_wall`]). Marked in the snapshot so
    /// downstream consumers — the SLO engine, the bench regression
    /// gate — can skip the family by flag instead of by name list.
    pub nondeterministic: bool,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKET_BOUNDS.len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nondeterministic: false,
        }
    }
}

impl Histogram {
    /// Record one observation (NaN is counted but lands in overflow).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        match BUCKET_BOUNDS.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Occupied buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        BUCKET_BOUNDS
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
            .collect()
    }

    /// Fold another histogram's observations into this one. Bucket
    /// counts and totals add exactly; only `sum` is float, so the merge
    /// is order-sensitive in at most the last ulp — see DESIGN.md §10
    /// for why no cross-thread-deterministic report depends on it.
    pub fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nondeterministic |= other.nondeterministic;
    }

    /// Approximate quantile `q` in `[0, 1]` from the bucket counts:
    /// the upper bound of the bucket containing the q-th observation
    /// (`max` for the overflow bucket, `NaN` when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return BUCKET_BOUNDS[i];
            }
        }
        self.max
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> JsonValue {
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(b, c)| JsonValue::Arr(vec![b.to_json(), c.to_json()]))
            .collect();
        let mut doc = JsonValue::obj([
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", if self.count == 0 { JsonValue::Null } else { self.min.to_json() }),
            ("max", if self.count == 0 { JsonValue::Null } else { self.max.to_json() }),
            ("buckets", JsonValue::Arr(buckets)),
            ("overflow", self.overflow.to_json()),
        ]);
        // Wall-clock families carry an explicit marker; deterministic
        // histograms keep their exact prior shape (byte-identity).
        if self.nondeterministic {
            if let JsonValue::Obj(pairs) = &mut doc {
                pairs.push(("nondeterministic".to_string(), JsonValue::Bool(true)));
            }
        }
        doc
    }
}

/// The recorder's metric registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges.
    pub gauges: BTreeMap<String, Gauge>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Add to a counter, creating it at zero.
    pub fn counter(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record a gauge observation.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => g.record(value),
            None => {
                let mut g = Gauge::default();
                g.record(value);
                self.gauges.insert(name.to_string(), g);
            }
        }
    }

    /// Record a histogram observation.
    pub fn histogram(&mut self, name: &str, value: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Record a wall-clock histogram observation: same ladder, but the
    /// histogram is permanently tagged `nondeterministic` so snapshot
    /// consumers can exclude it from byte-identity and gating by flag.
    pub fn histogram_wall(&mut self, name: &str, value: f64) {
        let h = self.histograms.entry(name.to_string()).or_default();
        h.nondeterministic = true;
        h.record(value);
    }

    /// A counter's current value (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one: counters add, gauges and
    /// histograms [`Gauge::absorb`]/[`Histogram::absorb`]. The caller
    /// (the fork-join scope merge) invokes this in canonical worker
    /// order, so counter totals — the values report assertions read —
    /// are exact and thread-count-independent.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, delta) in &other.counters {
            self.counter(name, *delta);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().absorb(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().absorb(h);
        }
    }

    /// Canonical JSON snapshot: `BTreeMap` iteration gives sorted keys,
    /// so equal metric states render byte-identically. The shared
    /// bucket ladder is emitted once up front (`bucket_bounds`), so a
    /// downstream tool can reconstruct percentiles from any histogram's
    /// `buckets` pairs without compiled-in knowledge of the ladder.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            (
                "bucket_bounds",
                JsonValue::Arr(BUCKET_BOUNDS.iter().map(|b| b.to_json()).collect()),
            ),
            (
                "counters",
                JsonValue::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), v.to_json())).collect()),
            ),
            (
                "histograms",
                JsonValue::Obj(
                    self.histograms.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_runtime::ser;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.counter("a", 2);
        m.counter("a", 3);
        assert_eq!(m.counter_value("a"), 5);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn gauge_tracks_extremes_and_last() {
        let mut g = Gauge::default();
        for v in [3.0, -1.0, 2.0] {
            g.record(v);
        }
        assert_eq!(g.last, 2.0);
        assert_eq!(g.min, -1.0);
        assert_eq!(g.max, 3.0);
        assert!((g.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::default();
        h.record(0.3); // <= 0.5
        h.record(0.4); // <= 0.5
        h.record(42.0); // <= 50
        h.record(5e7); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.overflow, 1);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0.5, 2), (50.0, 1)]);
        assert_eq!(h.quantile(0.25), 0.5);
        assert_eq!(h.quantile(0.75), 50.0);
        assert_eq!(h.quantile(1.0), 5e7); // overflow resolves to max
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        assert!(Histogram::default().quantile(0.5).is_nan());
    }

    #[test]
    fn merge_equals_sequential_recording() {
        // Recording a+b sequentially must equal recording them into two
        // registries and merging — the fork-join identity contract.
        let obs_a = [0.3, 42.0, 5e7];
        let obs_b = [0.4, 2.0];
        let mut seq = Metrics::default();
        for &v in obs_a.iter().chain(&obs_b) {
            seq.counter("n", 1);
            seq.gauge("g", v);
            seq.histogram("h", v);
        }
        let mut left = Metrics::default();
        for &v in &obs_a {
            left.counter("n", 1);
            left.gauge("g", v);
            left.histogram("h", v);
        }
        let mut right = Metrics::default();
        for &v in &obs_b {
            right.counter("n", 1);
            right.gauge("g", v);
            right.histogram("h", v);
        }
        left.merge(&right);
        assert_eq!(seq.to_json().render(), left.to_json().render());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Metrics::default();
        m.counter("c", 7);
        m.gauge("g", 1.0);
        m.histogram("h", 2.0);
        let before = m.to_json().render();
        m.merge(&Metrics::default());
        assert_eq!(before, m.to_json().render());
        let mut empty = Metrics::default();
        empty.merge(&m);
        assert_eq!(before, empty.to_json().render());
    }

    #[test]
    fn wall_clock_histograms_carry_the_marker() {
        let mut m = Metrics::default();
        m.histogram("det_ms", 1.0);
        m.histogram_wall("wall_ms", 1.0);
        assert!(!m.histograms["det_ms"].nondeterministic);
        assert!(m.histograms["wall_ms"].nondeterministic);
        let text = m.to_json().render();
        assert!(text.contains("\"wall_ms\":{") && text.contains("\"nondeterministic\":true"));
        assert!(!text.contains("\"det_ms\":{\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[1,1]],\"overflow\":0,\"nondeterministic\""));
        // The marker survives a fork-join merge in either direction.
        let mut other = Metrics::default();
        other.histogram("wall_ms", 2.0);
        other.merge(&m);
        assert!(other.histograms["wall_ms"].nondeterministic);
    }

    #[test]
    fn snapshot_exports_the_bucket_ladder() {
        let mut m = Metrics::default();
        m.histogram("h", 0.02);
        let doc = m.to_json();
        let bounds = doc.get("bucket_bounds").unwrap().as_array().unwrap();
        assert_eq!(bounds.len(), BUCKET_BOUNDS.len());
        assert_eq!(bounds[0].as_f64(), Some(1e-6));
        assert_eq!(bounds[BUCKET_BOUNDS.len() - 1].as_f64(), Some(1e6));
        // bucket_bounds sorts ahead of counters/gauges/histograms.
        let text = doc.render();
        assert!(text.starts_with("{\"bucket_bounds\":["), "{text}");
    }

    #[test]
    fn snapshot_is_canonical_and_parses() {
        let mut m = Metrics::default();
        m.counter("z.late", 1);
        m.counter("a.early", 2);
        m.gauge("g", 1.5);
        m.histogram("h", 0.02);
        let text = m.to_json().render();
        // Sorted keys: a.early before z.late.
        assert!(text.find("a.early").unwrap() < text.find("z.late").unwrap());
        let back = ser::parse(&text).expect("snapshot parses");
        assert_eq!(
            back.get("counters").unwrap().get("a.early").unwrap().as_f64(),
            Some(2.0)
        );
        // Re-render is byte-stable.
        assert_eq!(text, m.to_json().render());
    }
}
