//! The per-stage latency summarizer.
//!
//! A [`TraceReport`] collapses a recorder's span stream into one row
//! per stage name — count, total, mean, p50/p95, min/max in
//! milliseconds — which is what the quickstart example and the benches
//! print as the "where does the time go" table the paper's evaluation
//! is built around.

use crate::recorder::SpanEvent;
use holo_math::Summary;
use holo_runtime::ser::{JsonValue, ToJson};
use std::fmt::Write as _;

/// Aggregated latency of one stage (all spans sharing a name).
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage (span) name.
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed duration, ms.
    pub total_ms: f64,
    /// Duration distribution, ms (exact percentiles retained).
    pub ms: Summary,
}

impl ToJson for StageStat {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name", self.name.to_json()),
            ("count", self.count.to_json()),
            ("total_ms", self.total_ms.to_json()),
            ("mean_ms", self.ms.mean().to_json()),
            ("p50_ms", self.ms.percentile(50.0).unwrap_or(f64::NAN).to_json()),
            ("p95_ms", self.ms.percentile(95.0).unwrap_or(f64::NAN).to_json()),
            ("max_ms", self.ms.max().to_json()),
        ])
    }
}

/// Per-stage latency summary of a traced run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Stages in order of first appearance in the span stream.
    pub stages: Vec<StageStat>,
    /// Spans discarded at the recorder cap; nonzero means every row
    /// above undercounts and the table says so.
    pub spans_dropped: u64,
}

impl TraceReport {
    /// Aggregate spans by name (first-appearance order).
    pub fn from_spans(spans: &[SpanEvent]) -> Self {
        let mut stages: Vec<StageStat> = Vec::new();
        for span in spans {
            let stat = match stages.iter_mut().find(|s| s.name == span.name) {
                Some(s) => s,
                None => {
                    stages.push(StageStat {
                        name: span.name,
                        count: 0,
                        total_ms: 0.0,
                        ms: Summary::with_samples(),
                    });
                    stages.last_mut().unwrap()
                }
            };
            let d = span.duration_ms();
            stat.count += 1;
            stat.total_ms += d;
            stat.ms.record(d);
        }
        Self { stages, spans_dropped: 0 }
    }

    /// Attach the recorder's drop count (see [`crate::trace_report`]).
    pub fn with_spans_dropped(mut self, spans_dropped: u64) -> Self {
        self.spans_dropped = spans_dropped;
        self
    }

    /// Look up a stage by name.
    pub fn get(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Render the per-stage latency table (fixed-width columns, one row
    /// per stage).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>10.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                s.name,
                s.count,
                s.total_ms,
                s.ms.mean(),
                s.ms.percentile(50.0).unwrap_or(f64::NAN),
                s.ms.percentile(95.0).unwrap_or(f64::NAN),
                s.ms.max(),
            );
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} span(s) dropped at the recorder cap — rows above undercount",
                self.spans_dropped
            );
        }
        out
    }

    /// JSON form (stage array, insertion order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("stages", self.stages.to_json()),
            ("spans_dropped", self.spans_dropped.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, end: u64) -> SpanEvent {
        SpanEvent { name, start_us: start, end_us: end, depth: 0, lane: 0, frame: None }
    }

    #[test]
    fn aggregates_by_name_in_first_appearance_order() {
        let spans = vec![
            span("extract", 0, 2_000),
            span("transmit", 2_000, 5_000),
            span("extract", 10_000, 13_000),
        ];
        let r = TraceReport::from_spans(&spans);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].name, "extract");
        let e = r.get("extract").unwrap();
        assert_eq!(e.count, 2);
        assert!((e.total_ms - 5.0).abs() < 1e-9);
        assert!((e.ms.mean() - 2.5).abs() < 1e-9);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn table_lists_every_stage() {
        let spans = vec![span("extract", 0, 1_000), span("render", 1_000, 2_000)];
        let table = TraceReport::from_spans(&spans).table();
        assert!(table.contains("extract"));
        assert!(table.contains("render"));
        assert!(table.lines().count() == 3, "{table}");
    }

    #[test]
    fn json_has_percentiles() {
        let spans = vec![span("s", 0, 4_000); 10];
        let j = TraceReport::from_spans(&spans).to_json().render();
        assert!(j.contains("\"p95_ms\":4"), "{j}");
    }
}
