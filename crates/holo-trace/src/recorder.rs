//! The thread-local recorder: spans with parent nesting, plus metrics.
//!
//! The recorder is pure bookkeeping — it never looks at the wall clock.
//! Every span timestamp is a virtual-time microsecond count supplied by
//! the caller (the simulations pass `SimTime.0`), which is what makes
//! the exported trace byte-identical across runs of the same seed.

use crate::metrics::Metrics;

/// A completed span. Spans land in completion (exit) order, so children
/// always precede their parent; `depth` is the nesting level at entry
/// (0 = top level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (`"extract"`, `"transmit"`, `"room.forward"`, ...).
    pub name: &'static str,
    /// Virtual start time, microseconds.
    pub start_us: u64,
    /// Virtual end time, microseconds (>= `start_us`).
    pub end_us: u64,
    /// Nesting depth at entry.
    pub depth: u16,
    /// Logical lane (chrome-trace tid): participant id in rooms.
    pub lane: u32,
    /// Optional frame index carried into the chrome-trace `args`.
    pub frame: Option<u64>,
}

impl SpanEvent {
    /// Span duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_us.saturating_sub(self.start_us) as f64 / 1e3
    }
}

/// An open span on the stack.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    name: &'static str,
    start_us: u64,
    lane: u32,
    frame: Option<u64>,
}

/// Hard cap on retained spans: a runaway always-on process degrades to
/// metrics-only instead of exhausting memory (~48 MB of spans).
pub const MAX_SPANS: usize = 1 << 20;

/// Per-thread trace state. Obtain through the crate-level free
/// functions ([`crate::span_enter`], [`crate::with_recorder`], ...).
#[derive(Debug, Default)]
pub struct Recorder {
    /// Completed spans in exit order.
    pub spans: Vec<SpanEvent>,
    /// Counters, gauges, histograms.
    pub metrics: Metrics,
    /// Lane applied to newly opened spans (see [`crate::set_lane`]).
    pub lane: u32,
    /// Set when the span cap was hit and spans were discarded.
    pub truncated: bool,
    /// Exact number of completed spans discarded at the cap. Surfaced
    /// in [`crate::snapshot_json`] and [`crate::TraceReport`] so a
    /// capped run is visibly incomplete instead of silently short.
    pub spans_dropped: u64,
    open: Vec<OpenSpan>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all state.
    pub fn reset(&mut self) {
        self.spans.clear();
        self.open.clear();
        self.metrics = Metrics::default();
        self.lane = 0;
        self.truncated = false;
        self.spans_dropped = 0;
    }

    /// Open a span; the lane is captured at entry.
    pub fn span_enter(&mut self, name: &'static str, at_us: u64, frame: Option<u64>) {
        self.open.push(OpenSpan { name, start_us: at_us, lane: self.lane, frame });
    }

    /// Close the innermost open span. Exiting with no span open is a
    /// no-op (a site that only records when enabled may race a mid-span
    /// `enable()`); exiting earlier than the start clamps to zero
    /// duration rather than underflowing.
    pub fn span_exit(&mut self, at_us: u64) {
        let Some(open) = self.open.pop() else {
            return;
        };
        if self.spans.len() >= MAX_SPANS {
            self.truncated = true;
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(SpanEvent {
            name: open.name,
            start_us: open.start_us,
            end_us: at_us.max(open.start_us),
            depth: self.open.len() as u16,
            lane: open.lane,
            frame: open.frame,
        });
    }

    /// Number of spans still open (unbalanced enters).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depths() {
        let mut r = Recorder::new();
        r.span_enter("a", 0, None);
        r.span_enter("b", 10, None);
        r.span_enter("c", 20, None);
        r.span_exit(30);
        r.span_exit(40);
        r.span_exit(50);
        let names: Vec<_> = r.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(names, vec![("c", 2), ("b", 1), ("a", 0)]);
        assert_eq!(r.open_spans(), 0);
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let mut r = Recorder::new();
        r.span_exit(5);
        assert!(r.spans.is_empty());
    }

    #[test]
    fn backwards_exit_clamps() {
        let mut r = Recorder::new();
        r.span_enter("s", 100, None);
        r.span_exit(40);
        assert_eq!(r.spans[0].start_us, 100);
        assert_eq!(r.spans[0].end_us, 100);
        assert_eq!(r.spans[0].duration_ms(), 0.0);
    }

    #[test]
    fn cap_counts_every_dropped_span() {
        let mut r = Recorder::new();
        r.spans = vec![
            SpanEvent { name: "pad", start_us: 0, end_us: 0, depth: 0, lane: 0, frame: None };
            MAX_SPANS
        ];
        for i in 0..3u64 {
            r.span_enter("late", i, None);
            r.span_exit(i + 1);
        }
        assert!(r.truncated);
        assert_eq!(r.spans_dropped, 3);
        assert_eq!(r.spans.len(), MAX_SPANS);
        r.reset();
        assert_eq!(r.spans_dropped, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn lane_captured_at_entry() {
        let mut r = Recorder::new();
        r.lane = 3;
        r.span_enter("s", 0, Some(9));
        r.lane = 8; // changing mid-span must not retag the open span
        r.span_exit(10);
        assert_eq!(r.spans[0].lane, 3);
        assert_eq!(r.spans[0].frame, Some(9));
    }
}
