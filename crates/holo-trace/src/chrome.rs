//! `chrome://tracing` / Perfetto trace-event export.
//!
//! Spans render as complete (`"ph":"X"`) events with microsecond `ts`
//! and `dur` — exactly the recorder's virtual timestamps, as integers,
//! so the output is byte-identical across runs of the same seed. Load
//! the file in `chrome://tracing` or <https://ui.perfetto.dev>; lanes
//! map to tids, so a room renders one track per participant.

use crate::recorder::SpanEvent;
use holo_runtime::ser::{JsonValue, ToJson};

/// Render completed spans as a trace-event JSON document
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`).
///
/// Events are emitted in span-completion order re-sorted by
/// `(start, -end)`, so parents precede their children at equal start
/// times and the byte stream is a pure function of the span set.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut ordered: Vec<&SpanEvent> = spans.iter().collect();
    // Stable key: start ascending, longer (enclosing) spans first, then
    // lane and name for full determinism on exact ties.
    ordered.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then(b.end_us.cmp(&a.end_us))
            .then(a.lane.cmp(&b.lane))
            .then(a.name.cmp(b.name))
    });
    let events: Vec<JsonValue> = ordered.iter().map(|s| event_json(s)).collect();
    JsonValue::obj([
        ("displayTimeUnit", JsonValue::Str("ms".into())),
        ("traceEvents", JsonValue::Arr(events)),
    ])
    .render()
}

fn event_json(s: &SpanEvent) -> JsonValue {
    let mut pairs = vec![
        ("name".to_string(), JsonValue::Str(s.name.to_string())),
        ("cat".to_string(), JsonValue::Str("semholo".into())),
        ("ph".to_string(), JsonValue::Str("X".into())),
        ("ts".to_string(), s.start_us.to_json()),
        ("dur".to_string(), (s.end_us - s.start_us).to_json()),
        ("pid".to_string(), JsonValue::Num(0.0)),
        ("tid".to_string(), s.lane.to_json()),
    ];
    if let Some(frame) = s.frame {
        pairs.push(("args".to_string(), JsonValue::obj([("frame", frame.to_json())])));
    }
    JsonValue::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_runtime::ser;

    fn span(name: &'static str, start: u64, end: u64, lane: u32) -> SpanEvent {
        SpanEvent { name, start_us: start, end_us: end, depth: 0, lane, frame: None }
    }

    #[test]
    fn events_are_sorted_and_parse() {
        let spans = vec![
            span("child", 10, 20, 0),
            span("parent", 0, 100, 0),
            span("other", 10, 15, 1),
        ];
        let text = chrome_trace_json(&spans);
        let doc = ser::parse(&text).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        let names: Vec<&str> =
            events.iter().map(|e| e.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, vec!["parent", "child", "other"]);
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(100.0));
        assert_eq!(events[2].get("tid").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn output_is_deterministic() {
        let spans = vec![span("a", 0, 5, 0), span("b", 0, 5, 0)];
        assert_eq!(chrome_trace_json(&spans), chrome_trace_json(&spans));
        // Ties at identical (start, end, lane) break on name.
        let text = chrome_trace_json(&spans);
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn frame_arg_is_emitted() {
        let mut s = span("frame", 0, 1, 0);
        s.frame = Some(12);
        let text = chrome_trace_json(&[s]);
        assert!(text.contains("\"args\":{\"frame\":12}"), "{text}");
    }
}
