//! The fleet run: many rooms, sharded across nodes, in virtual time.
//!
//! Each room is a full `holo_conf::Room` — the SFU, its queues, ABR
//! thinning, and the semantic degradation ladder all run unchanged —
//! anchored at a **home** node chosen by the placement policy. A room
//! that spans nodes pays the cascade: remote publishers' uplinks and
//! remote subscribers' downlinks gain the inter-node propagation delay,
//! and every spanned frame is offered to the directed cascade links for
//! byte accounting.
//!
//! ## The cascade invariant
//!
//! A publisher's stream crosses each inter-node link **once per frame**:
//! one copy from the publisher's node to the home node, then one copy
//! from the home node to each remote node hosting at least one
//! subscriber — *not* one copy per remote subscriber. The naive
//! per-subscriber cost is tallied alongside so the saving is a measured
//! number, not a claim.
//!
//! ## Determinism
//!
//! Placement is sequential. Rooms are independent given their placement
//! (cascade contention is accounted on the shared links *after* the
//! rooms run, it does not feed back into per-room delivery), so rooms
//! fan out over `holo_trace::parallel::par_map` and merge in room-id
//! order; each room's cascade offers are generated inside its worker,
//! concatenated in room order, stably sorted by offer time, and fed
//! through the shared links sequentially. `SEMHOLO_THREADS` is a pure
//! wall-clock knob: the `FleetReport` is byte-identical at any thread
//! count.

use crate::placement::{FleetLoad, Placement, PlacementPolicy, PolicyKind};
use crate::report::{CascadeEdgeReport, FleetReport, NodeReport, RegionLatency, RoomSummary};
use crate::topology::FleetTopology;
use holo_conf::{jain_index, ParticipantConfig, Room, RoomConfig, RoomReport};
use holo_gpu::Workload;
use holo_math::Summary;
use holo_net::link::Delivery;
use holo_net::time::SimTime;
use holo_runtime::ser::{JsonValue, ToJson};
use holo_net::wire::WIRE_HEADER_BYTES;
use semholo::error::{Result, SemHoloError};
use semholo::scene::SceneSource;
use semholo::semantics::SemanticPipeline;
use std::collections::BTreeMap;
use std::time::Duration;

/// One room's demand: where its participants are and what access links
/// they bring.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomSpec {
    /// Region of each participant (room size = the vector's length).
    pub participant_regions: Vec<usize>,
    /// Symmetric access bandwidth per participant, bps.
    pub access_bps: f64,
}

impl RoomSpec {
    /// `size` participants, all in `region`.
    pub fn uniform(size: usize, region: usize, access_bps: f64) -> Self {
        Self { participant_regions: vec![region; size], access_bps }
    }
}

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes and cascade mesh.
    pub topology: FleetTopology,
    /// The rooms to place and run.
    pub rooms: Vec<RoomSpec>,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Frames per sender stream in every room.
    pub frames: usize,
    /// Keyframe cadence inside every room.
    pub keyframe_interval: usize,
    /// Latency budget for the per-room `within_budget` statistic, ms.
    pub latency_budget_ms: f64,
    /// Fleet seed; room `i` runs on [`room_seed`]`(seed, i)`.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            topology: FleetTopology::single(1e9),
            rooms: Vec::new(),
            policy: PolicyKind::LeastLoaded,
            frames: 6,
            keyframe_interval: 10,
            latency_budget_ms: 100.0,
            seed: 1,
        }
    }
}

/// Derive room `room`'s seed from the fleet seed (splitmix-style odd
/// multiplier; distinct rooms get decorrelated link RNGs). Public so a
/// standalone [`Room`] can be pinned against its fleet-embedded twin.
pub fn room_seed(fleet_seed: u64, room: usize) -> u64 {
    fleet_seed ^ 0xBF58_476D_1CE4_E5B9u64.wrapping_mul((room as u64).wrapping_mul(2).wrapping_add(1))
}

/// The SFU's cost to forward one frame copy of `wire_bytes`: a
/// checksum-and-copy pass (no dense math), priced on the node's
/// `Device` roofline — so per-copy launch overhead, not TFLOPs, is
/// what eventually binds.
pub fn forward_copy_workload(wire_bytes: usize) -> Workload {
    Workload {
        flops: wire_bytes as f64 * 8.0,
        bytes: wire_bytes as f64 * 3.0,
        peak_memory: (wire_bytes as u64).saturating_mul(4).max(1 << 20),
    }
}

/// One frame copy offered to a cascade edge.
#[derive(Debug, Clone, Copy)]
struct CascadeOffer {
    at: SimTime,
    from: usize,
    to: usize,
    wire_bytes: usize,
}

/// One room's worker output.
struct RoomOutcome {
    report: RoomReport,
    offers: Vec<CascadeOffer>,
    /// Bytes the naive per-subscriber scheme would have offered.
    naive_bytes: u64,
    /// Mean wire bytes per frame of this room's (shared) stream.
    mean_wire_bytes: f64,
}

/// Everything a fleet run produces: the canonical [`FleetReport`] plus
/// the full per-room [`RoomReport`]s (in room order) for callers that
/// drill down — the report itself carries compact per-room summaries.
pub struct FleetRun {
    /// The canonical fleet-level report.
    pub report: FleetReport,
    /// Per-room placements, in room order.
    pub placements: Vec<Placement>,
    /// Full per-room reports, in room order.
    pub rooms: Vec<RoomReport>,
}

/// Per-room lane namespace stride: room `i`'s participant `p` records
/// spans on lane `i * LANE_STRIDE + p`, so merged fleet traces keep
/// rooms apart (good for up to 4096 participants per room).
pub const LANE_STRIDE: u32 = 1 << 12;

/// Build room `room_idx`'s embedded config: a plain symmetric room plus
/// cascade propagation folded into the access links of participants
/// attached away from the home node. A room that spans nothing gets
/// zero augmentation — its config is exactly the standalone one.
fn embedded_room_config(
    cfg: &FleetConfig,
    spec: &RoomSpec,
    placement: &Placement,
    room_idx: usize,
) -> RoomConfig {
    let participants = placement
        .participant_nodes
        .iter()
        .map(|&node| {
            let mut p = ParticipantConfig::symmetric(spec.access_bps);
            if node != placement.home {
                let up = cfg.topology.latency_ms(node, placement.home) / 1e3;
                let down = cfg.topology.latency_ms(placement.home, node) / 1e3;
                p.uplink.propagation += Duration::from_secs_f64(up);
                p.downlink.propagation += Duration::from_secs_f64(down);
            }
            p
        })
        .collect();
    RoomConfig {
        participants,
        frames: cfg.frames,
        keyframe_interval: cfg.keyframe_interval,
        latency_budget_ms: cfg.latency_budget_ms,
        seed: room_seed(cfg.seed, room_idx),
        share_encoder: true,
        // Namespace this room's spans so a merged fleet trace never
        // collides across rooms: lanes by stride, path ids by tag.
        lane_base: room_idx as u32 * LANE_STRIDE,
        trace_tag: (room_idx as u64) << 48,
        ..RoomConfig::default()
    }
}

/// Generate room `room_idx`'s cascade offers from its per-frame wire
/// sizes, and the naive per-subscriber byte count for the same frames.
fn cascade_offers(
    topo: &FleetTopology,
    placement: &Placement,
    wire_sizes: &[usize],
    fps: f64,
) -> (Vec<CascadeOffer>, u64) {
    let home = placement.home;
    let n = placement.participant_nodes.len();
    let mut offers = Vec::new();
    let mut naive_bytes = 0u64;
    for (index, &wire) in wire_sizes.iter().enumerate() {
        let t = SimTime::from_secs_f64(index as f64 / fps);
        for p in 0..n {
            let a = placement.participant_nodes[p];
            // Leg 1: publisher's node -> home, one copy (both schemes).
            let at_home = if a != home {
                offers.push(CascadeOffer { at: t, from: a, to: home, wire_bytes: wire });
                naive_bytes += wire as u64;
                t + Duration::from_secs_f64(topo.latency_ms(a, home) / 1e3)
            } else {
                t
            };
            // Leg 2: home -> each remote node with subscribers of p.
            // Cascade ships one copy per node; naive ships one per
            // subscriber.
            let mut remote_subs: BTreeMap<usize, u64> = BTreeMap::new();
            for s in 0..n {
                let b = placement.participant_nodes[s];
                if s != p && b != home {
                    *remote_subs.entry(b).or_insert(0) += 1;
                }
            }
            for (&b, &subs) in &remote_subs {
                offers.push(CascadeOffer { at: at_home, from: home, to: b, wire_bytes: wire });
                naive_bytes += wire as u64 * subs;
            }
        }
    }
    (offers, naive_bytes)
}

/// Run a fleet with the config's built-in [`PolicyKind`].
pub fn run_fleet(
    cfg: &FleetConfig,
    scene: &SceneSource,
    make_pipeline: &(dyn Fn(usize) -> Box<dyn SemanticPipeline> + Sync),
) -> Result<FleetRun> {
    let mut policy = cfg.policy.build();
    run_fleet_with_policy(cfg, scene, make_pipeline, policy.as_mut())
}

/// Run a fleet under a caller-supplied placement policy. `make_pipeline`
/// builds room `i`'s shared encoder (rooms run `share_encoder`, so one
/// pipeline serves each room).
pub fn run_fleet_with_policy(
    cfg: &FleetConfig,
    scene: &SceneSource,
    make_pipeline: &(dyn Fn(usize) -> Box<dyn SemanticPipeline> + Sync),
    policy: &mut dyn PlacementPolicy,
) -> Result<FleetRun> {
    cfg.topology.validate().map_err(SemHoloError::Config)?;
    if cfg.rooms.is_empty() {
        return Err(SemHoloError::Config("a fleet run needs at least one room".into()));
    }
    for (i, spec) in cfg.rooms.iter().enumerate() {
        if spec.participant_regions.len() < 2 {
            return Err(SemHoloError::Config(format!(
                "room {i} needs at least 2 participants"
            )));
        }
        if let Some(&r) = spec.participant_regions.iter().find(|&&r| r >= cfg.topology.regions.len())
        {
            return Err(SemHoloError::Config(format!(
                "room {i} references unknown region {r}"
            )));
        }
    }
    let topo = &cfg.topology;
    let fps = scene.context().config.fps as f64;
    let horizon_s = cfg.frames as f64 / fps;

    // --- Phase 1: sequential placement (policies are stateful). ---
    let mut load = FleetLoad::new(topo.nodes.len());
    let mut placements: Vec<Placement> = Vec::with_capacity(cfg.rooms.len());
    for spec in &cfg.rooms {
        let p = policy.place(spec, topo, &load);
        load.absorb(&p);
        placements.push(p);
    }
    for m in policy.rebalance(&placements, topo, &load) {
        load.rooms[placements[m.room].home] -= 1;
        load.rooms[m.to] += 1;
        placements[m.room].home = m.to;
    }

    // --- Phase 2: rooms in parallel (deterministic fork-join). ---
    let items: Vec<usize> = (0..cfg.rooms.len()).collect();
    let run_room = |room_idx: usize| -> Result<RoomOutcome> {
        let spec = &cfg.rooms[room_idx];
        let placement = &placements[room_idx];
        // Wire sizes first: a fresh pipeline encodes the shared stream
        // once, exactly as the room's shared-encoder cache will.
        let mut sizer = make_pipeline(room_idx);
        let mut wire_sizes = Vec::with_capacity(cfg.frames);
        for index in 0..cfg.frames {
            let encoded = sizer.encode(&scene.frame(index))?;
            wire_sizes.push(encoded.payload.len() + WIRE_HEADER_BYTES);
        }
        let (offers, naive_bytes) = if placement.nodes_spanned().len() > 1 {
            cascade_offers(topo, placement, &wire_sizes, fps)
        } else {
            (Vec::new(), 0)
        };
        let mean_wire_bytes =
            wire_sizes.iter().sum::<usize>() as f64 / wire_sizes.len().max(1) as f64;
        let room_cfg = embedded_room_config(cfg, spec, placement, room_idx);
        let mut pipelines = vec![make_pipeline(room_idx)];
        let report = Room::new(room_cfg)?.run(scene, &mut pipelines)?;
        Ok(RoomOutcome { report, offers, naive_bytes, mean_wire_bytes })
    };
    let outcomes: Vec<RoomOutcome> = holo_trace::parallel::par_map(items, run_room)
        .into_iter()
        .collect::<Result<_>>()?;

    // --- Phase 3: sequential merge over the shared cascade links. ---
    let mut all_offers: Vec<CascadeOffer> = Vec::new();
    for o in &outcomes {
        all_offers.extend_from_slice(&o.offers);
    }
    // Stable sort: ties keep room order (workers appended in room order).
    all_offers.sort_by_key(|o| o.at);
    let mut links = BTreeMap::new();
    let mut edge_offered: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for offer in &all_offers {
        let key = (offer.from, offer.to);
        let link = links
            .entry(key)
            .or_insert_with(|| topo.cascade_link(offer.from, offer.to, cfg.seed));
        // Outcome lands in the link's stats; per-copy fate is not
        // tracked back to rooms (see the determinism note above).
        let _: Delivery = link.transmit(offer.wire_bytes, offer.at);
        let e = edge_offered.entry(key).or_insert((0, 0));
        e.0 += 1;
        e.1 += offer.wire_bytes as u64;
    }
    let cascade_edges: Vec<CascadeEdgeReport> = edge_offered
        .iter()
        .map(|(&(from, to), &(copies, bytes))| {
            let stats = links[&(from, to)].stats();
            CascadeEdgeReport {
                from,
                to,
                latency_ms: topo.latency_ms(from, to),
                offered_copies: copies,
                offered_bytes: bytes,
                delivered: stats.delivered,
                queue_drops: stats.queue_drops,
                bytes_delivered: stats.bytes_delivered,
                utilization: stats.bytes_admitted as f64 * 8.0
                    / horizon_s.max(1e-9)
                    / topo.cascade_bps.max(1.0),
            }
        })
        .collect();

    // --- Phase 4: per-node accounting. ---
    let room_sizes: Vec<usize> = cfg.rooms.iter().map(|s| s.participant_regions.len()).collect();
    let mut node_egress_bps = vec![0.0f64; topo.nodes.len()];
    let mut node_copies_per_s = vec![0.0f64; topo.nodes.len()];
    let mut node_mean_wire = vec![Summary::new(); topo.nodes.len()];
    for (room_idx, outcome) in outcomes.iter().enumerate() {
        let placement = &placements[room_idx];
        let n = room_sizes[room_idx];
        let stream_wire_bps = outcome.mean_wire_bytes * 8.0 * fps;
        // Access fan-out: each subscriber pulls N-1 streams from the
        // node it is attached to.
        for &node in &placement.participant_nodes {
            node_egress_bps[node] += (n - 1) as f64 * stream_wire_bps;
            node_copies_per_s[node] += (n - 1) as f64 * fps;
            node_mean_wire[node].record(outcome.mean_wire_bytes);
        }
    }
    // Cascade egress is charged to the sending node.
    for e in &cascade_edges {
        node_egress_bps[e.from] += e.offered_bytes as f64 * 8.0 / horizon_s.max(1e-9);
        node_copies_per_s[e.from] += e.offered_copies as f64 / horizon_s.max(1e-9);
    }
    let node_reports: Vec<NodeReport> = topo
        .nodes
        .iter()
        .enumerate()
        .map(|(id, spec)| {
            let copy_wire = node_mean_wire[id].mean().max(1.0) as usize;
            let compute_utilization = match spec.device.exec_time(&forward_copy_workload(copy_wire))
            {
                Ok(t) => node_copies_per_s[id] * t.as_secs_f64(),
                Err(_) => f64::INFINITY,
            };
            NodeReport {
                id,
                region: topo.regions[spec.region].clone(),
                rooms_homed: load.rooms[id],
                participants: load.participants[id],
                egress_used_bps: node_egress_bps[id],
                egress_utilization: node_egress_bps[id] / spec.egress_bps,
                compute_utilization,
            }
        })
        .collect();

    // --- Phase 5: region latency + fairness + bottleneck. ---
    let mut region_e2e: Vec<Summary> =
        (0..topo.regions.len()).map(|_| Summary::with_samples()).collect();
    let mut usable_rates = Vec::new();
    for (room_idx, outcome) in outcomes.iter().enumerate() {
        for sub in &outcome.report.subscribers {
            let node = placements[room_idx].participant_nodes[sub.id];
            region_e2e[topo.nodes[node].region].merge(&sub.e2e_ms);
            usable_rates.push(sub.usable_rate);
        }
    }
    let region_latency: Vec<RegionLatency> = region_e2e
        .iter()
        .enumerate()
        .map(|(r, s)| RegionLatency {
            region: topo.regions[r].clone(),
            count: s.count(),
            mean_ms: s.mean(),
            p50_ms: s.percentile(50.0).unwrap_or(f64::NAN),
            p95_ms: s.percentile(95.0).unwrap_or(f64::NAN),
            max_ms: s.max(),
        })
        .collect();

    let mut first_bottleneck = String::from("none");
    let mut bottleneck_utilization = 0.0f64;
    for n in &node_reports {
        if n.egress_utilization > bottleneck_utilization {
            bottleneck_utilization = n.egress_utilization;
            first_bottleneck = format!("node-egress:{}", n.id);
        }
        if n.compute_utilization > bottleneck_utilization {
            bottleneck_utilization = n.compute_utilization;
            first_bottleneck = format!("node-compute:{}", n.id);
        }
    }
    for e in &cascade_edges {
        if e.utilization > bottleneck_utilization {
            bottleneck_utilization = e.utilization;
            first_bottleneck = format!("cascade:{}->{}", e.from, e.to);
        }
    }

    let cascade_bytes_offered: u64 = cascade_edges.iter().map(|e| e.offered_bytes).sum();
    let naive_bytes_offered: u64 = outcomes.iter().map(|o| o.naive_bytes).sum();
    let room_summaries: Vec<RoomSummary> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| RoomSummary {
            room: i,
            home: placements[i].home,
            nodes_spanned: placements[i].nodes_spanned().len(),
            participants: room_sizes[i],
            min_usable_rate: o.report.min_usable_rate(),
            mean_e2e_ms: o.report.mean_e2e_ms(),
            jain_fairness: o.report.jain_fairness,
        })
        .collect();

    let report = FleetReport {
        nodes: topo.nodes.len(),
        regions: topo.regions.len(),
        rooms: cfg.rooms.len(),
        policy: policy.name().to_string(),
        frames: cfg.frames,
        fps,
        seed: cfg.seed,
        total_subscribers: usable_rates.len(),
        fleet_jain_fairness: jain_index(&usable_rates),
        min_room_usable_rate: room_summaries
            .iter()
            .map(|r| r.min_usable_rate)
            .fold(f64::INFINITY, f64::min),
        cascade_bytes_offered,
        naive_bytes_offered,
        first_bottleneck,
        bottleneck_utilization,
        node_reports,
        cascade_edges,
        region_latency,
        room_summaries,
    };
    Ok(FleetRun {
        report,
        placements,
        rooms: outcomes.into_iter().map(|o| o.report).collect(),
    })
}

/// A fleet run plus the observability artifacts derived from its
/// merged trace: exact stage-budget attribution and SLO verdicts.
pub struct FleetObservation {
    /// The underlying run ([`FleetReport`] bytes are identical to an
    /// untraced run with the same config).
    pub run: FleetRun,
    /// Critical-path attribution over every delivered frame copy, with
    /// cascade hops carved out of remote lanes' uplink/forward time.
    pub attribution: holo_obs::AttributionReport,
    /// One verdict per node (node-id order) over the subscribers
    /// attached to that node.
    pub node_verdicts: Vec<(usize, holo_obs::SloVerdict)>,
    /// The fleet-level verdict over all subscribers.
    pub fleet_verdict: holo_obs::SloVerdict,
}

impl FleetObservation {
    /// True when the fleet and every node hold the SLO.
    pub fn pass(&self) -> bool {
        self.fleet_verdict.pass() && self.node_verdicts.iter().all(|(_, v)| v.pass())
    }

    /// The machine-readable SLO + attribution document (what
    /// `examples/fleet_capacity.rs` writes as `SLO_fleet.json`).
    /// Canonical field order; byte-identical per seed and thread count.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("seed", self.run.report.seed.to_json()),
            ("policy", self.run.report.policy.to_json()),
            ("pass", JsonValue::Bool(self.pass())),
            ("fleet", self.fleet_verdict.to_json()),
            (
                "nodes",
                JsonValue::Arr(
                    self.node_verdicts
                        .iter()
                        .map(|(node, v)| {
                            JsonValue::obj([("node", node.to_json()), ("verdict", v.to_json())])
                        })
                        .collect(),
                ),
            ),
            ("attribution", self.attribution.to_json()),
        ])
    }
}

/// Build the [`holo_obs::AttributionOptions`] for a placed fleet: the
/// cascade hop µs to carve per remote lane (uplink keyed by sender
/// lane, downlink by subscriber lane — both halves of the same
/// participant's remoteness) and the lane → node map.
pub fn attribution_options(
    cfg: &FleetConfig,
    placements: &[Placement],
) -> holo_obs::AttributionOptions {
    let mut opts = holo_obs::AttributionOptions::default();
    for (room_idx, placement) in placements.iter().enumerate() {
        let base = room_idx as u32 * LANE_STRIDE;
        for (p, &node) in placement.participant_nodes.iter().enumerate() {
            let lane = base + p as u32;
            opts.node_of_lane.insert(lane, node as u32);
            if node != placement.home {
                let up = cfg.topology.latency_ms(node, placement.home) / 1e3;
                let down = cfg.topology.latency_ms(placement.home, node) / 1e3;
                opts.cascade_up_us.insert(lane, Duration::from_secs_f64(up).as_micros() as u64);
                opts.cascade_down_us
                    .insert(lane, Duration::from_secs_f64(down).as_micros() as u64);
            }
        }
    }
    opts
}

/// Run the fleet with tracing force-enabled and derive the
/// observability artifacts from the merged spans: attribution (with
/// cascade hops split out) plus per-node and fleet SLO verdicts. The
/// recorder is reset at entry and the previous enable state restored
/// at exit; the embedded [`FleetReport`] is byte-identical to an
/// untraced [`run_fleet`] of the same config.
pub fn run_fleet_observed(
    cfg: &FleetConfig,
    scene: &SceneSource,
    make_pipeline: &(dyn Fn(usize) -> Box<dyn SemanticPipeline> + Sync),
    spec: &holo_obs::SloSpec,
) -> Result<FleetObservation> {
    let was_enabled = holo_trace::enabled();
    holo_trace::enable();
    holo_trace::reset();
    let outcome = run_fleet(cfg, scene, make_pipeline);
    let run = match outcome {
        Ok(run) => run,
        Err(e) => {
            if !was_enabled {
                holo_trace::disable();
            }
            return Err(e);
        }
    };
    let opts = attribution_options(cfg, &run.placements);
    let mut attr = holo_obs::Attribution::with_nodes(opts.node_of_lane.clone());
    let ingest = holo_trace::with_recorder(|r| {
        attr.spans_dropped = r.spans_dropped;
        attr.ingest_spans(&r.spans, &opts)
    });
    if !was_enabled {
        holo_trace::disable();
    }
    ingest.map_err(SemHoloError::Config)?;
    let attribution = attr.finish();

    // Per-node SLO inputs: subscribers grouped by the node they are
    // attached to; a node's p99 is its worst subscriber's p99 (floors,
    // not averages).
    let mut per_node: BTreeMap<usize, holo_obs::SloSummary> = BTreeMap::new();
    for (room_idx, report) in run.rooms.iter().enumerate() {
        for sub in &report.subscribers {
            let node = run.placements[room_idx].participant_nodes[sub.id];
            let s = per_node.entry(node).or_default();
            s.frames_expected += sub.expected as u64;
            s.frames_usable += sub.usable as u64;
            if let Some(p) = sub.e2e_ms.percentile(99.0) {
                s.p99_e2e_ms = Some(s.p99_e2e_ms.map_or(p, |a| a.max(p)));
            }
        }
    }
    let mut fleet_summary = holo_obs::SloSummary::default();
    let mut node_verdicts = Vec::with_capacity(per_node.len());
    for (node, s) in per_node {
        fleet_summary.frames_expected += s.frames_expected;
        fleet_summary.frames_usable += s.frames_usable;
        if let Some(p) = s.p99_e2e_ms {
            fleet_summary.p99_e2e_ms = Some(fleet_summary.p99_e2e_ms.map_or(p, |a| a.max(p)));
        }
        node_verdicts.push((node, spec.evaluate_summary(&s)));
    }
    let fleet_verdict = spec.evaluate_summary(&fleet_summary);
    Ok(FleetObservation { run, attribution, node_verdicts, fleet_verdict })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::keypoint::{KeypointConfig, KeypointPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn make_pipeline(room: usize) -> Box<dyn SemanticPipeline> {
        Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            room as u64,
        ))
    }

    #[test]
    fn single_node_fleet_has_no_cascade_traffic() {
        let cfg = FleetConfig {
            topology: FleetTopology::single(1e9),
            rooms: vec![RoomSpec::uniform(3, 0, 25e6); 2],
            frames: 4,
            ..Default::default()
        };
        let run = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
        assert!(run.report.cascade_edges.is_empty());
        assert_eq!(run.report.cascade_bytes_offered, 0);
        assert_eq!(run.report.naive_bytes_offered, 0);
        assert_eq!(run.rooms.len(), 2);
        assert_eq!(run.report.node_reports[0].rooms_homed, 2);
        assert_eq!(run.report.node_reports[0].participants, 6);
        assert!(run.report.node_reports[0].egress_used_bps > 0.0);
    }

    #[test]
    fn spanning_room_counts_each_link_once_per_frame() {
        // Two nodes, one region each; a 4-party room split 2/2.
        let topo = FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 20.0);
        let cfg = FleetConfig {
            topology: topo,
            rooms: vec![RoomSpec {
                participant_regions: vec![0, 0, 1, 1],
                access_bps: 25e6,
            }],
            policy: PolicyKind::RoundRobin,
            frames: 3,
            ..Default::default()
        };
        let run = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
        let p = &run.placements[0];
        assert_eq!(p.participant_nodes, vec![0, 0, 1, 1]);
        assert_eq!(p.home, 0);
        // Per frame: publishers 2,3 (node 1) send one copy each 1->0;
        // every publisher has a subscriber on node 1, so 0->1 carries
        // one copy per publisher (4). Never per-subscriber.
        let e10 = run.report.cascade_edges.iter().find(|e| e.from == 1 && e.to == 0).unwrap();
        let e01 = run.report.cascade_edges.iter().find(|e| e.from == 0 && e.to == 1).unwrap();
        assert_eq!(e10.offered_copies, 2 * 3);
        assert_eq!(e01.offered_copies, 4 * 3);
        // Naive would ship per-subscriber on 0->1: pubs 0,1 have 2 subs
        // there, pubs 2,3 have 1 other => 6 copies/frame vs cascade's 4.
        assert!(run.report.naive_bytes_offered > run.report.cascade_bytes_offered);
    }

    #[test]
    fn remote_participants_pay_cascade_latency() {
        let topo = FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 40.0);
        let mk = |regions: Vec<usize>| FleetConfig {
            topology: topo.clone(),
            rooms: vec![RoomSpec { participant_regions: regions, access_bps: 25e6 }],
            policy: PolicyKind::RoundRobin,
            frames: 4,
            ..Default::default()
        };
        let local = run_fleet(&mk(vec![0, 0, 0]), &scene(), &make_pipeline).unwrap();
        let split = run_fleet(&mk(vec![0, 0, 1]), &scene(), &make_pipeline).unwrap();
        let local_e2e = local.rooms[0].mean_e2e_ms();
        let split_e2e = split.rooms[0].mean_e2e_ms();
        // One 40 ms hop each way must show up in end-to-end latency.
        assert!(
            split_e2e > local_e2e + 20.0,
            "split {split_e2e} ms vs local {local_e2e} ms"
        );
        let far_region = split.report.region_latency.iter().find(|r| r.region == "region-1");
        assert!(far_region.unwrap().count > 0, "remote subscribers must land in their region");
    }

    #[test]
    fn fleet_report_is_deterministic() {
        let cfg = FleetConfig {
            topology: FleetTopology::uniform(2, 2, 1e9, 1e9, 1.0, 20.0),
            rooms: vec![
                RoomSpec::uniform(3, 0, 25e6),
                RoomSpec { participant_regions: vec![0, 1, 1], access_bps: 25e6 },
                RoomSpec::uniform(4, 1, 25e6),
            ],
            frames: 4,
            seed: 9,
            ..Default::default()
        };
        let a = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
        let b = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
        assert_eq!(a.report.render(), b.report.render());
    }

    #[test]
    fn observed_fleet_tiles_exactly_and_carves_the_cascade() {
        let topo = FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 40.0);
        let cfg = FleetConfig {
            topology: topo,
            rooms: vec![RoomSpec { participant_regions: vec![0, 0, 1], access_bps: 25e6 }],
            policy: PolicyKind::RoundRobin,
            frames: 4,
            ..Default::default()
        };
        let spec = holo_obs::SloSpec::telepresence();
        let obs = run_fleet_observed(&cfg, &scene(), &make_pipeline, &spec).unwrap();
        assert!(obs.attribution.frames > 0, "delivered paths must be attributed");
        assert!(obs.attribution.tiles_exactly(), "stage budgets must tile e2e exactly");
        assert_eq!(obs.attribution.spans_dropped, 0);
        // The remote participant pays a 40 ms hop each way; that time
        // must land in the CascadeHop stage, not hide in the links.
        let hop = obs.attribution.stage(holo_obs::Stage::CascadeHop);
        assert!(hop.total_us > 0, "cascade hop must be carved out: {hop:?}");
        // Tracing must not perturb the simulation: report bytes match
        // an untraced run of the same config.
        let plain = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
        assert_eq!(obs.run.report.render(), plain.report.render());
        // Both nodes host subscribers, so both get verdicts, and the
        // document bytes are stable.
        assert_eq!(obs.node_verdicts.iter().map(|(n, _)| *n).collect::<Vec<_>>(), vec![0, 1]);
        let doc = obs.to_json().render();
        holo_runtime::ser::parse(&doc).expect("SLO_fleet doc parses");
        let again = run_fleet_observed(&cfg, &scene(), &make_pipeline, &spec).unwrap();
        assert_eq!(doc, again.to_json().render());
    }

    #[test]
    fn rejects_bad_configs() {
        let cfg = FleetConfig { rooms: vec![], ..Default::default() };
        assert!(run_fleet(&cfg, &scene(), &make_pipeline).is_err(), "no rooms");
        let cfg = FleetConfig {
            rooms: vec![RoomSpec::uniform(2, 3, 25e6)],
            ..Default::default()
        };
        assert!(run_fleet(&cfg, &scene(), &make_pipeline).is_err(), "unknown region");
        let cfg = FleetConfig {
            rooms: vec![RoomSpec::uniform(1, 0, 25e6)],
            ..Default::default()
        };
        assert!(run_fleet(&cfg, &scene(), &make_pipeline).is_err(), "1-party room");
    }
}
