//! Fleet capacity: how many rooms does N nodes sustain, and which
//! resource breaks first.
//!
//! Reuses `core::conference`'s monotone-oracle pattern
//! (`simulated_max_participants`: doubling then bisection over a
//! monotone `fits` predicate), but the unit is **rooms**, and the
//! predicate is a placement-plus-arithmetic probe rather than a full
//! simulation:
//!
//! 1. **Quality gate, once.** Rooms are independent given placement
//!    (see `sim`'s determinism note), so per-room delivery quality does
//!    not change with fleet size. One representative room is simulated
//!    up front; if its worst subscriber misses the usable-rate floor,
//!    the capacity is 0 rooms with bottleneck `room-quality`.
//! 2. **Monotone resource probe.** `fits(R)` places R rooms with a
//!    fresh policy (placement of room *i* depends only on rooms < *i*,
//!    so probes are prefix-stable and the predicate is monotone) and
//!    checks every node-egress, node-compute, and cascade-edge
//!    utilization against 1.0 using the measured stream wire rate.
//!
//! The first failing probe's highest-utilization resource becomes the
//! bottleneck attribution, and a definitive [`run_fleet`] at the
//! measured capacity produces the byte-identical [`FleetReport`]
//! artifact.

use crate::placement::{FleetLoad, Placement, PolicyKind};
use crate::report::FleetReport;
use crate::sim::{forward_copy_workload, run_fleet, FleetConfig, RoomSpec};
use crate::topology::FleetTopology;
use holo_net::wire::WIRE_HEADER_BYTES;
use holo_runtime::ser::{JsonValue, ToJson};
use semholo::conference::{closed_form_fleet_capacity, simulated_max_participants};
use semholo::error::Result;
use semholo::scene::SceneSource;
use semholo::semantics::SemanticPipeline;
use std::collections::BTreeMap;

/// Fleet-capacity search parameters.
#[derive(Debug, Clone)]
pub struct FleetCapacityConfig {
    /// The fleet under test.
    pub topology: FleetTopology,
    /// Participants per room (uniform).
    pub room_size: usize,
    /// Symmetric access bandwidth per participant, bps.
    pub access_bps: f64,
    /// Frames per sender stream in simulated rooms.
    pub frames: usize,
    /// Fleet seed.
    pub seed: u64,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Search ceiling, rooms.
    pub max_rooms: usize,
    /// Quality floor: the representative room's worst subscriber must
    /// keep at least this usable-frame rate.
    pub min_usable_rate: f64,
}

impl Default for FleetCapacityConfig {
    fn default() -> Self {
        Self {
            topology: FleetTopology::single(1e9),
            room_size: 4,
            access_bps: 100e6,
            frames: 6,
            seed: 1,
            policy: PolicyKind::LeastLoaded,
            max_rooms: 4096,
            min_usable_rate: 0.9,
        }
    }
}

/// The search outcome.
#[derive(Debug, Clone)]
pub struct FleetCapacityMeasurement {
    /// Rooms the fleet sustains.
    pub max_rooms: usize,
    /// `max_rooms * room_size`.
    pub total_subscribers: usize,
    /// Measured per-stream wire rate (payload + envelope), bps.
    pub stream_wire_bps: f64,
    /// The resource that broke first at `max_rooms + 1` (`room-quality`,
    /// `node-egress:i`, `node-compute:i`, `cascade:a->b`, or
    /// `search-ceiling` when the probe never failed).
    pub bottleneck: String,
    /// `core::conference::closed_form_fleet_capacity` at the same
    /// rates, in subscribers — the arithmetic bound next to the
    /// placement-aware measurement.
    pub closed_form_subscribers: usize,
    /// Definitive fleet run at `max_rooms` (absent when capacity is 0).
    pub report: Option<FleetReport>,
}

impl ToJson for FleetCapacityMeasurement {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("max_rooms", self.max_rooms.to_json()),
            ("total_subscribers", self.total_subscribers.to_json()),
            ("stream_wire_bps", self.stream_wire_bps.to_json()),
            ("bottleneck", self.bottleneck.to_json()),
            ("closed_form_subscribers", self.closed_form_subscribers.to_json()),
            (
                "report",
                match &self.report {
                    Some(r) => r.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// Uniform room specs for a probe: room `r` lands in region
/// `r % regions`, spreading demand across the fleet.
fn probe_rooms(cfg: &FleetCapacityConfig, count: usize) -> Vec<RoomSpec> {
    (0..count)
        .map(|r| {
            RoomSpec::uniform(cfg.room_size, r % cfg.topology.regions.len(), cfg.access_bps)
        })
        .collect()
}

/// A probe's verdict: the highest resource utilization and its label.
struct Probe {
    peak_utilization: f64,
    label: String,
}

/// Place `count` rooms and compute every resource's utilization
/// arithmetically from the measured stream rate.
fn probe(cfg: &FleetCapacityConfig, stream_wire_bps: f64, mean_wire_bytes: f64, count: usize) -> Probe {
    let topo = &cfg.topology;
    let fps_copies = stream_wire_bps / (mean_wire_bytes * 8.0).max(1e-9);
    let mut policy = cfg.policy.build();
    let mut load = FleetLoad::new(topo.nodes.len());
    let mut placements: Vec<Placement> = Vec::with_capacity(count);
    for spec in &probe_rooms(cfg, count) {
        let p = policy.place(spec, topo, &load);
        load.absorb(&p);
        placements.push(p);
    }
    for m in policy.rebalance(&placements, topo, &load) {
        placements[m.room].home = m.to;
    }

    let k = cfg.room_size;
    let mut egress = vec![0.0f64; topo.nodes.len()];
    let mut copies = vec![0.0f64; topo.nodes.len()];
    let mut edges: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for placement in &placements {
        let home = placement.home;
        // Access fan-out at each attachment node.
        for &node in &placement.participant_nodes {
            egress[node] += (k - 1) as f64 * stream_wire_bps;
            copies[node] += (k - 1) as f64 * fps_copies;
        }
        // Cascade legs, one copy per (publisher, edge) — the same
        // counting as `sim::cascade_offers`, per second instead of per
        // frame.
        for p in 0..k {
            let a = placement.participant_nodes[p];
            if a != home {
                *edges.entry((a, home)).or_insert(0.0) += stream_wire_bps;
            }
            let mut remote: BTreeMap<usize, bool> = BTreeMap::new();
            for s in 0..k {
                let b = placement.participant_nodes[s];
                if s != p && b != home {
                    remote.insert(b, true);
                }
            }
            for &b in remote.keys() {
                *edges.entry((home, b)).or_insert(0.0) += stream_wire_bps;
            }
        }
    }
    for (&(from, _), bps) in &edges {
        egress[from] += bps;
        copies[from] += bps / (mean_wire_bytes * 8.0).max(1e-9);
    }

    let mut peak = Probe { peak_utilization: 0.0, label: "none".into() };
    for (id, spec) in topo.nodes.iter().enumerate() {
        let e = egress[id] / spec.egress_bps;
        if e > peak.peak_utilization {
            peak = Probe { peak_utilization: e, label: format!("node-egress:{id}") };
        }
        let c = match spec.device.exec_time(&forward_copy_workload(mean_wire_bytes as usize)) {
            Ok(t) => copies[id] * t.as_secs_f64(),
            Err(_) => f64::INFINITY,
        };
        if c > peak.peak_utilization {
            peak = Probe { peak_utilization: c, label: format!("node-compute:{id}") };
        }
    }
    for (&(from, to), bps) in &edges {
        let u = bps / topo.cascade_bps.max(1.0);
        if u > peak.peak_utilization {
            peak = Probe { peak_utilization: u, label: format!("cascade:{from}->{to}") };
        }
    }
    peak
}

/// Measure the fleet's room capacity and attribute the bottleneck.
pub fn fleet_capacity(
    cfg: &FleetCapacityConfig,
    scene: &SceneSource,
    make_pipeline: &(dyn Fn(usize) -> Box<dyn SemanticPipeline> + Sync),
) -> Result<FleetCapacityMeasurement> {
    // Measure the stream's wire rate once from room 0's pipeline.
    let fps = scene.context().config.fps as f64;
    let mut sizer = make_pipeline(0);
    let mut total_wire = 0usize;
    for index in 0..cfg.frames {
        total_wire += sizer.encode(&scene.frame(index))?.payload.len() + WIRE_HEADER_BYTES;
    }
    let mean_wire_bytes = total_wire as f64 / cfg.frames.max(1) as f64;
    let stream_wire_bps = mean_wire_bytes * 8.0 * fps;
    let closed_form_subscribers = closed_form_fleet_capacity(
        cfg.topology.nodes.len(),
        cfg.topology.cascade_bps,
        cfg.access_bps,
        stream_wire_bps,
    );

    let fleet_cfg = |rooms: usize| FleetConfig {
        topology: cfg.topology.clone(),
        rooms: probe_rooms(cfg, rooms),
        policy: cfg.policy,
        frames: cfg.frames,
        keyframe_interval: 10,
        latency_budget_ms: 150.0,
        seed: cfg.seed,
    };

    // Quality gate: one representative room, full simulation.
    let one = run_fleet(&fleet_cfg(1), scene, make_pipeline)?;
    if one.report.min_room_usable_rate < cfg.min_usable_rate {
        return Ok(FleetCapacityMeasurement {
            max_rooms: 0,
            total_subscribers: 0,
            stream_wire_bps,
            bottleneck: "room-quality".into(),
            closed_form_subscribers,
            report: None,
        });
    }

    let fits = |rooms: usize| probe(cfg, stream_wire_bps, mean_wire_bytes, rooms).peak_utilization <= 1.0;
    let max_rooms = if !fits(1) {
        0
    } else if cfg.max_rooms <= 1 {
        1
    } else {
        simulated_max_participants(cfg.max_rooms, fits)
    };
    let bottleneck = if max_rooms >= cfg.max_rooms {
        "search-ceiling".into()
    } else {
        probe(cfg, stream_wire_bps, mean_wire_bytes, max_rooms + 1).label
    };
    let report = if max_rooms > 0 {
        Some(run_fleet(&fleet_cfg(max_rooms), scene, make_pipeline)?.report)
    } else {
        None
    };
    Ok(FleetCapacityMeasurement {
        max_rooms,
        total_subscribers: max_rooms * cfg.room_size,
        stream_wire_bps,
        bottleneck,
        closed_form_subscribers,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::keypoint::{KeypointConfig, KeypointPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn make_pipeline(room: usize) -> Box<dyn SemanticPipeline> {
        Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            room as u64,
        ))
    }

    fn base(topology: FleetTopology) -> FleetCapacityConfig {
        FleetCapacityConfig {
            topology,
            frames: 4,
            max_rooms: 512,
            ..Default::default()
        }
    }

    #[test]
    fn capacity_is_positive_and_bounded_on_one_node() {
        let cfg = base(FleetTopology::single(50e6));
        let m = fleet_capacity(&cfg, &scene(), &make_pipeline).unwrap();
        assert!(m.max_rooms > 0, "a 50 Mbps node must host at least one keypoint room");
        assert!(m.max_rooms < 512, "50 Mbps cannot host the ceiling");
        assert!(m.bottleneck.starts_with("node-"), "bottleneck {}", m.bottleneck);
        assert_eq!(m.total_subscribers, m.max_rooms * cfg.room_size);
        let report = m.report.expect("definitive run present");
        assert_eq!(report.rooms, m.max_rooms);
    }

    #[test]
    fn more_nodes_sustain_more_rooms() {
        let egress = 40e6;
        let cap = |nodes| {
            let cfg = base(FleetTopology::uniform(nodes, 1, egress, 1e9, 1.0, 20.0));
            fleet_capacity(&cfg, &scene(), &make_pipeline).unwrap().max_rooms
        };
        let one = cap(1);
        let two = cap(2);
        let four = cap(4);
        assert!(one > 0);
        assert!(two > one, "2 nodes ({two}) must beat 1 ({one})");
        assert!(four > two, "4 nodes ({four}) must beat 2 ({two})");
    }

    #[test]
    fn tight_cascade_becomes_the_bottleneck() {
        // Two regions, ample node egress, a starved cascade: rooms in
        // region 1 still fan out locally, but region spread means the
        // cross links carry spanning rooms' streams.
        let mut topo = FleetTopology::uniform(2, 2, 1e9, 1e9, 1.0, 20.0);
        topo.cascade_bps = 2e6;
        let mut cfg = base(topo);
        // Region affinity pins each room to one node, so nothing ever
        // crosses the starved cascade and it must NOT be blamed.
        cfg.policy = PolicyKind::RegionAffinity;
        let m = fleet_capacity(&cfg, &scene(), &make_pipeline).unwrap();
        assert!(!m.bottleneck.starts_with("cascade"), "bottleneck {}", m.bottleneck);

        // Now force spanning rooms through the arithmetic probe.
        let span = RoomSpec { participant_regions: vec![0, 0, 1, 1], access_bps: 100e6 };
        let fleet = FleetConfig {
            topology: cfg.topology.clone(),
            rooms: vec![span; 3],
            policy: PolicyKind::RoundRobin,
            frames: 4,
            ..Default::default()
        };
        let run = run_fleet(&fleet, &scene(), &make_pipeline).unwrap();
        assert!(
            run.report.first_bottleneck.starts_with("cascade"),
            "spanning rooms over a 2 Mbps cascade must blame it, got {}",
            run.report.first_bottleneck
        );
    }

    #[test]
    fn closed_form_rides_along() {
        let cfg = base(FleetTopology::uniform(2, 1, 100e6, 1e9, 1.0, 20.0));
        let m = fleet_capacity(&cfg, &scene(), &make_pipeline).unwrap();
        assert!(m.closed_form_subscribers > 0);
        assert!(m.stream_wire_bps > 0.0);
    }
}
