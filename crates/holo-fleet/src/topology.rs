//! The fleet's shape: regions, nodes, and the cascade mesh.
//!
//! A fleet is a set of SFU **nodes** grouped into **regions**. Every
//! ordered node pair is connected by a directed **cascade link**
//! (`holo_net::Link`): constant `cascade_bps` capacity and a one-way
//! propagation delay taken from the region latency matrix, so
//! cross-region edges are slower than intra-region ones — the
//! heterogeneity that makes placement matter. Per-node capacity is a
//! `holo_gpu::Device` (compute) plus an egress-bps budget (network),
//! never a hardcoded rooms-per-node count.

use holo_gpu::Device;
use holo_net::link::{Link, LinkConfig};
use holo_net::trace::BandwidthTrace;
use std::time::Duration;

/// One SFU node: where it sits and what it can push.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Index into the fleet's region list.
    pub region: usize,
    /// The forwarding hardware (see `Device::sfu_server`).
    pub device: Device,
    /// Total egress budget across this node's access downlinks and
    /// cascade uplinks, bps.
    pub egress_bps: f64,
}

/// The fleet: regions, nodes, and cascade-edge parameters.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    /// Region names (index = region id).
    pub regions: Vec<String>,
    /// The nodes.
    pub nodes: Vec<NodeSpec>,
    /// Capacity of every directed cascade link, bps.
    pub cascade_bps: f64,
    /// One-way latency between regions, ms; `[a][b]` for a link from a
    /// node in region `a` to one in region `b` (diagonal = intra).
    pub region_latency_ms: Vec<Vec<f64>>,
}

impl FleetTopology {
    /// A single node in a single region (no cascade links exist).
    pub fn single(egress_bps: f64) -> Self {
        Self {
            regions: vec!["region-0".into()],
            nodes: vec![NodeSpec {
                region: 0,
                device: Device::sfu_server(),
                egress_bps,
            }],
            cascade_bps: 0.0,
            region_latency_ms: vec![vec![1.0]],
        }
    }

    /// A uniform fleet: `regions` regions of `nodes_per_region`
    /// `sfu_server` nodes each. Intra-region cascade hops cost
    /// `intra_ms`; inter-region hops cost `inter_ms` scaled up 25% per
    /// region of "distance" (`|a-b|`), so a 3+-region fleet has
    /// genuinely heterogeneous edges, not two latency classes.
    pub fn uniform(
        regions: usize,
        nodes_per_region: usize,
        egress_bps: f64,
        cascade_bps: f64,
        intra_ms: f64,
        inter_ms: f64,
    ) -> Self {
        let region_names = (0..regions).map(|r| format!("region-{r}")).collect();
        let mut nodes = Vec::with_capacity(regions * nodes_per_region);
        for r in 0..regions {
            for _ in 0..nodes_per_region {
                nodes.push(NodeSpec {
                    region: r,
                    device: Device::sfu_server(),
                    egress_bps,
                });
            }
        }
        let region_latency_ms = (0..regions)
            .map(|a| {
                (0..regions)
                    .map(|b| {
                        if a == b {
                            intra_ms
                        } else {
                            let dist = a.abs_diff(b) as f64;
                            inter_ms * (1.0 + 0.25 * (dist - 1.0))
                        }
                    })
                    .collect()
            })
            .collect();
        Self { regions: region_names, nodes, cascade_bps, region_latency_ms }
    }

    /// Structural validation: at least one node, every node in a known
    /// region, a square latency matrix, and a usable cascade whenever
    /// more than one node exists.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("a fleet needs at least one node".into());
        }
        if self.regions.is_empty() {
            return Err("a fleet needs at least one region".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.region >= self.regions.len() {
                return Err(format!("node {i} references unknown region {}", n.region));
            }
            if n.egress_bps <= 0.0 {
                return Err(format!("node {i} has a non-positive egress budget"));
            }
        }
        if self.region_latency_ms.len() != self.regions.len()
            || self.region_latency_ms.iter().any(|row| row.len() != self.regions.len())
        {
            return Err("region latency matrix must be regions x regions".into());
        }
        if self.nodes.len() > 1 && self.cascade_bps <= 0.0 {
            return Err("a multi-node fleet needs cascade_bps > 0".into());
        }
        Ok(())
    }

    /// One-way latency between two nodes, ms (region matrix lookup).
    pub fn latency_ms(&self, from_node: usize, to_node: usize) -> f64 {
        let a = self.nodes[from_node].region;
        let b = self.nodes[to_node].region;
        self.region_latency_ms[a][b]
    }

    /// Node ids in a region, ascending.
    pub fn nodes_in_region(&self, region: usize) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].region == region).collect()
    }

    /// Build the directed cascade link for an edge. The seed is derived
    /// from the fleet seed and the edge identity, so cascade jitter (if
    /// ever configured) stays decorrelated per edge and per run.
    pub fn cascade_link(&self, from: usize, to: usize, fleet_seed: u64) -> Link {
        let config = LinkConfig {
            propagation: Duration::from_secs_f64(self.latency_ms(from, to) / 1e3),
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
            max_queue_delay: Duration::from_millis(200),
        };
        let lane = (from as u64) << 20 | to as u64;
        let seed = fleet_seed ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(lane.wrapping_add(1));
        Link::new(config, BandwidthTrace::Constant { bps: self.cascade_bps }, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builder_shapes_the_fleet() {
        let t = FleetTopology::uniform(3, 2, 400e6, 1e9, 1.0, 20.0);
        assert_eq!(t.regions.len(), 3);
        assert_eq!(t.nodes.len(), 6);
        assert!(t.validate().is_ok());
        assert_eq!(t.nodes_in_region(1), vec![2, 3]);
        // Intra cheap, inter expensive, and farther regions cost more.
        assert_eq!(t.latency_ms(0, 1), 1.0);
        assert_eq!(t.latency_ms(0, 2), 20.0);
        assert_eq!(t.latency_ms(0, 4), 25.0, "distance-2 regions are 25% slower");
        // Symmetric for the symmetric matrix the builder emits.
        assert_eq!(t.latency_ms(4, 0), t.latency_ms(0, 4));
    }

    #[test]
    fn validation_rejects_degenerate_topologies() {
        let mut t = FleetTopology::single(100e6);
        assert!(t.validate().is_ok());
        t.nodes[0].region = 5;
        assert!(t.validate().is_err(), "unknown region");
        let mut t = FleetTopology::uniform(2, 1, 100e6, 1e9, 1.0, 20.0);
        t.cascade_bps = 0.0;
        assert!(t.validate().is_err(), "multi-node fleet without a cascade");
        t = FleetTopology::uniform(2, 1, 100e6, 1e9, 1.0, 20.0);
        t.region_latency_ms.pop();
        assert!(t.validate().is_err(), "ragged latency matrix");
        t = FleetTopology::uniform(2, 1, 0.0, 1e9, 1.0, 20.0);
        assert!(t.validate().is_err(), "zero egress budget");
    }

    #[test]
    fn cascade_links_carry_the_matrix_latency() {
        let t = FleetTopology::uniform(2, 1, 100e6, 1e9, 1.0, 30.0);
        let l = t.cascade_link(0, 1, 42);
        assert_eq!(l.config.propagation, Duration::from_secs_f64(0.030));
        assert_eq!(l.config.loss_rate, 0.0);
        let intra = FleetTopology::uniform(1, 2, 100e6, 1e9, 1.5, 30.0).cascade_link(0, 1, 42);
        assert_eq!(intra.config.propagation, Duration::from_secs_f64(0.0015));
    }
}
