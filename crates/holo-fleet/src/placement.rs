//! Who hosts what: placement policies and rebalancing.
//!
//! Placement decides two things per room: which node each participant
//! attaches to (always a node in the participant's region — access
//! networks terminate locally) and which node anchors the room's SFU
//! (the **home** node; remote participants' streams transit it over
//! the cascade). Policies are deterministic: identical inputs place
//! identically, so fleet reports stay byte-identical.

use crate::sim::RoomSpec;
use crate::topology::FleetTopology;

/// Where a room landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The node anchoring the room's SFU.
    pub home: usize,
    /// Node per participant (same order as the room's region list).
    pub participant_nodes: Vec<usize>,
}

impl Placement {
    /// Distinct nodes this room touches, ascending.
    pub fn nodes_spanned(&self) -> Vec<usize> {
        let mut nodes = self.participant_nodes.clone();
        nodes.push(self.home);
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Running load tally the policies (and rebalancing) read.
#[derive(Debug, Clone, Default)]
pub struct FleetLoad {
    /// Rooms homed per node.
    pub rooms: Vec<u64>,
    /// Participants attached per node.
    pub participants: Vec<u64>,
}

impl FleetLoad {
    /// Zero load across `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { rooms: vec![0; nodes], participants: vec![0; nodes] }
    }

    /// Account a finished placement.
    pub fn absorb(&mut self, p: &Placement) {
        self.rooms[p.home] += 1;
        for &n in &p.participant_nodes {
            self.participants[n] += 1;
        }
    }
}

/// A proposed home move produced by a rebalancing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Which room (index into the fleet's room list).
    pub room: usize,
    /// Its new home node.
    pub to: usize,
}

/// The placement decision point. Implementations must be deterministic
/// functions of their inputs and internal state; ties always break
/// toward the lowest node id.
pub trait PlacementPolicy {
    /// Short label recorded in the fleet report.
    fn name(&self) -> &'static str;

    /// Place one room: attach each participant to a node in its region
    /// and pick the home node.
    fn place(&mut self, spec: &RoomSpec, topo: &FleetTopology, load: &FleetLoad) -> Placement;

    /// Rebalancing hook, called once after all rooms are placed with
    /// every placement visible. The default does nothing; policies can
    /// return home moves (`Migration`s) the fleet applies before
    /// simulating.
    fn rebalance(
        &mut self,
        _placements: &[Placement],
        _topo: &FleetTopology,
        _load: &FleetLoad,
    ) -> Vec<Migration> {
        Vec::new()
    }
}

/// Pick the home node for a placed participant set: the node hosting
/// the most participants, ties to the lowest id.
fn majority_home(participant_nodes: &[usize], nodes: usize) -> usize {
    let mut counts = vec![0u64; nodes];
    for &n in participant_nodes {
        counts[n] += 1;
    }
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

/// Round-robin: participants cycle through their region's nodes in
/// arrival order, globally (one counter per region).
#[derive(Debug, Default)]
pub struct RoundRobin {
    next_in_region: Vec<usize>,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, spec: &RoomSpec, topo: &FleetTopology, _load: &FleetLoad) -> Placement {
        self.next_in_region.resize(topo.regions.len().max(self.next_in_region.len()), 0);
        let participant_nodes: Vec<usize> = spec
            .participant_regions
            .iter()
            .map(|&r| {
                let candidates = topo.nodes_in_region(r);
                let slot = self.next_in_region[r] % candidates.len();
                self.next_in_region[r] += 1;
                candidates[slot]
            })
            .collect();
        let home = majority_home(&participant_nodes, topo.nodes.len());
        Placement { home, participant_nodes }
    }
}

/// Least-loaded: each participant attaches to the least-populated node
/// in its region (by attached participants, ties to the lowest id);
/// the home is the majority node. Its rebalancing pass levels homes:
/// while some node homes 2+ more rooms than another, it moves one room
/// from the most- to the least-loaded node.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, spec: &RoomSpec, topo: &FleetTopology, load: &FleetLoad) -> Placement {
        // Account in-room attachments too, so one room's participants
        // spread instead of piling onto the globally-least node.
        let mut pending = vec![0u64; topo.nodes.len()];
        let participant_nodes: Vec<usize> = spec
            .participant_regions
            .iter()
            .map(|&r| {
                let candidates = topo.nodes_in_region(r);
                let best = *candidates
                    .iter()
                    .min_by_key(|&&n| (load.participants[n] + pending[n], n))
                    .expect("validated topology: every region has a node");
                pending[best] += 1;
                best
            })
            .collect();
        let home = majority_home(&participant_nodes, topo.nodes.len());
        Placement { home, participant_nodes }
    }

    fn rebalance(
        &mut self,
        placements: &[Placement],
        _topo: &FleetTopology,
        load: &FleetLoad,
    ) -> Vec<Migration> {
        let mut rooms = load.rooms.clone();
        let mut moves = Vec::new();
        while let Some(max_node) = rooms
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, usize::MAX - i))
            .map(|(i, _)| i)
        {
            let min_node = rooms
                .iter()
                .enumerate()
                .min_by_key(|&(i, &c)| (c, i))
                .map(|(i, _)| i)
                .unwrap_or(max_node);
            if rooms[max_node] < rooms[min_node] + 2 {
                break;
            }
            // Move the lowest-indexed room homed on the hot node whose
            // home we have not already moved.
            let victim = placements
                .iter()
                .enumerate()
                .position(|(i, p)| {
                    p.home == max_node && !moves.iter().any(|m: &Migration| m.room == i)
                });
            match victim {
                Some(room) => {
                    moves.push(Migration { room, to: min_node });
                    rooms[max_node] -= 1;
                    rooms[min_node] += 1;
                }
                None => break,
            }
        }
        moves
    }
}

/// Region affinity: the whole room lands on one node — the
/// least-loaded node in the room's majority region — so rooms never
/// span the cascade. Participants whose own region differs still
/// attach there (they pay the access latency, not cascade transit).
#[derive(Debug, Default)]
pub struct RegionAffinity;

impl PlacementPolicy for RegionAffinity {
    fn name(&self) -> &'static str {
        "region-affinity"
    }

    fn place(&mut self, spec: &RoomSpec, topo: &FleetTopology, load: &FleetLoad) -> Placement {
        let mut counts = vec![0u64; topo.regions.len()];
        for &r in &spec.participant_regions {
            counts[r] += 1;
        }
        let mut region = 0;
        for (r, &c) in counts.iter().enumerate() {
            if c > counts[region] {
                region = r;
            }
        }
        let candidates = topo.nodes_in_region(region);
        let home = *candidates
            .iter()
            .min_by_key(|&&n| (load.participants[n], n))
            .expect("validated topology: every region has a node");
        Placement {
            home,
            participant_nodes: vec![home; spec.participant_regions.len()],
        }
    }
}

/// The built-in policies, as a `Copy` selector for configs that must
/// stay `Clone` (custom policies go through
/// [`crate::sim::run_fleet_with_policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`RegionAffinity`].
    RegionAffinity,
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::RegionAffinity => Box::new(RegionAffinity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FleetTopology {
        FleetTopology::uniform(2, 2, 400e6, 1e9, 1.0, 20.0)
    }

    fn spec(regions: &[usize]) -> RoomSpec {
        RoomSpec { participant_regions: regions.to_vec(), access_bps: 100e6 }
    }

    #[test]
    fn round_robin_cycles_region_nodes() {
        let topo = topo();
        let mut rr = RoundRobin::default();
        let load = FleetLoad::new(topo.nodes.len());
        let a = rr.place(&spec(&[0, 0]), &topo, &load);
        let b = rr.place(&spec(&[0, 0]), &topo, &load);
        // Region 0 owns nodes 0 and 1: four attachments cycle 0,1,0,1.
        assert_eq!(a.participant_nodes, vec![0, 1]);
        assert_eq!(b.participant_nodes, vec![0, 1]);
        assert_eq!(a.home, 0, "ties break to the lowest node id");
    }

    #[test]
    fn least_loaded_spreads_and_rebalances() {
        let topo = topo();
        let mut ll = LeastLoaded;
        let mut load = FleetLoad::new(topo.nodes.len());
        let mut placements = Vec::new();
        for _ in 0..4 {
            let p = ll.place(&spec(&[0]), &topo, &load);
            load.absorb(&p);
            placements.push(p);
        }
        // Single-participant region-0 rooms alternate between nodes 0/1.
        assert_eq!(load.participants[0], 2);
        assert_eq!(load.participants[1], 2);
        assert_eq!(load.rooms[0], 2);
        assert_eq!(load.rooms[1], 2);
        // Force imbalance, then let rebalance level it.
        let skew = Placement { home: 0, participant_nodes: vec![0] };
        load.absorb(&skew);
        load.absorb(&skew);
        placements.push(skew.clone());
        placements.push(skew);
        let moves = ll.rebalance(&placements, &topo, &load);
        assert!(!moves.is_empty(), "imbalance of 4 vs 2 must trigger a move");
        for m in &moves {
            assert_eq!(placements[m.room].home, 0, "moves come off the hot node");
        }
    }

    #[test]
    fn region_affinity_never_spans() {
        let topo = topo();
        let mut ra = RegionAffinity;
        let load = FleetLoad::new(topo.nodes.len());
        // Majority region 1 (nodes 2, 3): the whole room lands there.
        let p = ra.place(&spec(&[1, 1, 0]), &topo, &load);
        assert_eq!(p.nodes_spanned().len(), 1);
        assert!(topo.nodes_in_region(1).contains(&p.home));
        assert!(p.participant_nodes.iter().all(|&n| n == p.home));
    }

    #[test]
    fn policies_are_deterministic() {
        let topo = topo();
        for kind in [PolicyKind::RoundRobin, PolicyKind::LeastLoaded, PolicyKind::RegionAffinity] {
            let run = |_| {
                let mut policy = kind.build();
                let mut load = FleetLoad::new(topo.nodes.len());
                let mut out = Vec::new();
                for i in 0..6 {
                    let p = policy.place(&spec(&[i % 2, (i + 1) % 2]), &topo, &load);
                    load.absorb(&p);
                    out.push(p);
                }
                out
            };
            assert_eq!(run(0), run(1), "{kind:?} placed differently across runs");
        }
    }
}
