//! The fleet's outcome: canonical, byte-identical JSON.
//!
//! A `FleetReport` is the fleet-level analogue of holo-conf's
//! `RoomReport`: per-node utilization, per-cascade-edge occupancy,
//! per-region latency distributions, fleet-wide Jain fairness over
//! every subscriber in every room, and first-bottleneck attribution.
//! Rendering uses the workspace's canonical JSON (`holo_runtime::ser`),
//! so a seeded fleet reproduces the report byte for byte at any
//! `SEMHOLO_THREADS` setting.

use holo_runtime::ser::{JsonValue, ToJson};

/// One node's utilization.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node id.
    pub id: usize,
    /// Region name.
    pub region: String,
    /// Rooms anchored here.
    pub rooms_homed: u64,
    /// Participants attached here.
    pub participants: u64,
    /// Egress actually used (access fan-out + cascade out), bps.
    pub egress_used_bps: f64,
    /// `egress_used_bps / egress_budget`.
    pub egress_utilization: f64,
    /// Fraction of a second the node's device spends forwarding each
    /// second (roofline-priced copies; infinite on OOM).
    pub compute_utilization: f64,
}

impl ToJson for NodeReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("id", self.id.to_json()),
            ("region", self.region.to_json()),
            ("rooms_homed", self.rooms_homed.to_json()),
            ("participants", self.participants.to_json()),
            ("egress_used_bps", self.egress_used_bps.to_json()),
            ("egress_utilization", self.egress_utilization.to_json()),
            ("compute_utilization", self.compute_utilization.to_json()),
        ])
    }
}

/// One directed cascade edge's accounting.
#[derive(Debug, Clone)]
pub struct CascadeEdgeReport {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// One-way propagation, ms.
    pub latency_ms: f64,
    /// Frame copies offered to the edge.
    pub offered_copies: u64,
    /// Bytes offered to the edge.
    pub offered_bytes: u64,
    /// Copies the link model delivered.
    pub delivered: u64,
    /// Copies rejected at the link queue (cascade congestion).
    pub queue_drops: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Admitted load over the run horizon relative to `cascade_bps`.
    pub utilization: f64,
}

impl ToJson for CascadeEdgeReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("latency_ms", self.latency_ms.to_json()),
            ("offered_copies", self.offered_copies.to_json()),
            ("offered_bytes", self.offered_bytes.to_json()),
            ("delivered", self.delivered.to_json()),
            ("queue_drops", self.queue_drops.to_json()),
            ("bytes_delivered", self.bytes_delivered.to_json()),
            ("utilization", self.utilization.to_json()),
        ])
    }
}

/// End-to-end latency distribution over one region's subscribers.
#[derive(Debug, Clone)]
pub struct RegionLatency {
    /// Region name.
    pub region: String,
    /// Usable frames observed.
    pub count: u64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// Worst observation, ms.
    pub max_ms: f64,
}

impl ToJson for RegionLatency {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("region", self.region.to_json()),
            ("count", self.count.to_json()),
            ("mean_ms", self.mean_ms.to_json()),
            ("p50_ms", self.p50_ms.to_json()),
            ("p95_ms", self.p95_ms.to_json()),
            ("max_ms", self.max_ms.to_json()),
        ])
    }
}

/// One room's compact row (the full `RoomReport`s ride on
/// [`crate::sim::FleetRun`], not the serialized report).
#[derive(Debug, Clone)]
pub struct RoomSummary {
    /// Room index.
    pub room: usize,
    /// Home node.
    pub home: usize,
    /// Distinct nodes the room touches.
    pub nodes_spanned: usize,
    /// Room size.
    pub participants: usize,
    /// Worst subscriber's usable-frame rate.
    pub min_usable_rate: f64,
    /// Mean end-to-end latency, ms.
    pub mean_e2e_ms: f64,
    /// Within-room Jain fairness.
    pub jain_fairness: f64,
}

impl ToJson for RoomSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("room", self.room.to_json()),
            ("home", self.home.to_json()),
            ("nodes_spanned", self.nodes_spanned.to_json()),
            ("participants", self.participants.to_json()),
            ("min_usable_rate", self.min_usable_rate.to_json()),
            ("mean_e2e_ms", self.mean_e2e_ms.to_json()),
            ("jain_fairness", self.jain_fairness.to_json()),
        ])
    }
}

/// The full fleet outcome.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Node count.
    pub nodes: usize,
    /// Region count.
    pub regions: usize,
    /// Rooms simulated.
    pub rooms: usize,
    /// Placement policy name.
    pub policy: String,
    /// Frames per sender stream.
    pub frames: usize,
    /// Scene frame rate.
    pub fps: f64,
    /// Fleet seed.
    pub seed: u64,
    /// Subscribers across all rooms.
    pub total_subscribers: usize,
    /// Jain fairness over every subscriber's usable rate, fleet-wide.
    pub fleet_jain_fairness: f64,
    /// The worst room's worst subscriber usable rate.
    pub min_room_usable_rate: f64,
    /// Bytes the cascade actually offered to inter-node links.
    pub cascade_bytes_offered: u64,
    /// Bytes naive per-subscriber forwarding would have offered.
    pub naive_bytes_offered: u64,
    /// The most-utilized resource (`node-egress:3`, `node-compute:0`,
    /// `cascade:0->1`, or `none`).
    pub first_bottleneck: String,
    /// That resource's utilization.
    pub bottleneck_utilization: f64,
    /// Per-node rows, node order.
    pub node_reports: Vec<NodeReport>,
    /// Per-edge rows, `(from, to)` order; only edges that carried
    /// traffic appear.
    pub cascade_edges: Vec<CascadeEdgeReport>,
    /// Per-region latency rows, region order.
    pub region_latency: Vec<RegionLatency>,
    /// Per-room rows, room order.
    pub room_summaries: Vec<RoomSummary>,
}

impl FleetReport {
    /// Fraction of naive inter-node bytes the cascade saved (0 when the
    /// fleet never spanned a link).
    pub fn cascade_savings(&self) -> f64 {
        if self.naive_bytes_offered == 0 {
            return 0.0;
        }
        1.0 - self.cascade_bytes_offered as f64 / self.naive_bytes_offered as f64
    }

    /// Canonical JSON (deterministic field order and float formatting).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("nodes", self.nodes.to_json()),
            ("regions", self.regions.to_json()),
            ("rooms", self.rooms.to_json()),
            ("policy", self.policy.to_json()),
            ("frames", self.frames.to_json()),
            ("fps", self.fps.to_json()),
            ("seed", self.seed.to_json()),
            ("total_subscribers", self.total_subscribers.to_json()),
            ("fleet_jain_fairness", self.fleet_jain_fairness.to_json()),
            ("min_room_usable_rate", self.min_room_usable_rate.to_json()),
            ("cascade_bytes_offered", self.cascade_bytes_offered.to_json()),
            ("naive_bytes_offered", self.naive_bytes_offered.to_json()),
            ("cascade_savings", self.cascade_savings().to_json()),
            ("first_bottleneck", self.first_bottleneck.to_json()),
            ("bottleneck_utilization", self.bottleneck_utilization.to_json()),
            ("node_reports", self.node_reports.to_json()),
            ("cascade_edges", self.cascade_edges.to_json()),
            ("region_latency", self.region_latency.to_json()),
            ("room_summaries", self.room_summaries.to_json()),
        ])
    }

    /// The canonical report bytes.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetReport {
        FleetReport {
            nodes: 1,
            regions: 1,
            rooms: 1,
            policy: "least-loaded".into(),
            frames: 4,
            fps: 30.0,
            seed: 7,
            total_subscribers: 3,
            fleet_jain_fairness: 1.0,
            min_room_usable_rate: 1.0,
            cascade_bytes_offered: 0,
            naive_bytes_offered: 0,
            first_bottleneck: "none".into(),
            bottleneck_utilization: 0.0,
            node_reports: vec![],
            cascade_edges: vec![],
            region_latency: vec![],
            room_summaries: vec![],
        }
    }

    #[test]
    fn renders_all_sections_deterministically() {
        let r = tiny();
        let s = r.render();
        for key in [
            "fleet_jain_fairness",
            "first_bottleneck",
            "cascade_edges",
            "region_latency",
            "room_summaries",
            "cascade_savings",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert_eq!(s, r.render());
        holo_runtime::ser::parse(&s).expect("report must be valid JSON");
    }

    #[test]
    fn savings_fraction_is_guarded() {
        let mut r = tiny();
        assert_eq!(r.cascade_savings(), 0.0, "no spanned traffic, no claim");
        r.cascade_bytes_offered = 600;
        r.naive_bytes_offered = 1000;
        assert!((r.cascade_savings() - 0.4).abs() < 1e-12);
    }
}
