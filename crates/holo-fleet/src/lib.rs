//! **holo-fleet** — a deterministic virtual-time simulation of many
//! rooms sharded across many SFU nodes.
//!
//! One SFU (`holo-conf`) answers "how many people fit in a room"; this
//! crate answers the operator's question one level up: **how many rooms
//! does a fleet of N nodes sustain, and which resource breaks first?**
//!
//! ```text
//!   region-0                 cascade links              region-1
//!  ┌────────┐          (holo_net::Link per edge)       ┌────────┐
//!  │ node 0 │◄──────────────────────────────────────►│ node 2 │
//!  │ node 1 │◄──────────────────────────────────────►│ node 3 │
//!  └────────┘   one copy per (publisher, edge, frame)  └────────┘
//!      ▲ access fan-out: holo-conf SFU/queue/ABR/ladder per room
//! ```
//!
//! - [`topology`] — regions, nodes (`holo_gpu::Device` + egress
//!   budget), and the heterogeneous-latency cascade mesh.
//! - [`placement`] — the [`PlacementPolicy`] trait (least-loaded,
//!   region-affinity, round-robin) with rebalancing hooks.
//! - [`sim`] — [`run_fleet`]: rooms embed unchanged [`holo_conf::Room`]
//!   machinery; spanning streams cross each inter-node link **once**
//!   per frame (cascade forwarding), and a 1-node fleet reproduces a
//!   standalone room byte for byte.
//! - [`capacity`] — [`fleet_capacity`]: the monotone-oracle search in
//!   rooms, with first-bottleneck attribution.
//! - [`report`] — the canonical [`FleetReport`]; byte-identical across
//!   reruns and `SEMHOLO_THREADS` settings.

pub mod capacity;
pub mod placement;
pub mod report;
pub mod sim;
pub mod topology;

pub use capacity::{fleet_capacity, FleetCapacityConfig, FleetCapacityMeasurement};
pub use placement::{
    FleetLoad, LeastLoaded, Migration, Placement, PlacementPolicy, PolicyKind, RegionAffinity,
    RoundRobin,
};
pub use report::{CascadeEdgeReport, FleetReport, NodeReport, RegionLatency, RoomSummary};
pub use sim::{
    attribution_options, forward_copy_workload, room_seed, run_fleet, run_fleet_observed,
    run_fleet_with_policy, FleetConfig, FleetObservation, FleetRun, RoomSpec, LANE_STRIDE,
};
pub use topology::{FleetTopology, NodeSpec};
