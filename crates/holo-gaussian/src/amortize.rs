//! Break-even math for the amortized tier, and its frontier report.
//!
//! A tier's total cost over a call of duration `t` seconds is
//! `prebuild_bytes + steady_bps * t / 8`. The gaussian tier buys a low
//! `steady_bps` with a large prebuild; the break-even duration against a
//! rival tier is where the totals cross:
//!
//! ```text
//! t* = 8 * (prebuild_own - prebuild_rival) / (bps_rival - bps_own)
//! ```
//!
//! Below `t*` the rival is honestly cheaper; beyond it the amortized
//! tier wins every additional second. When the rival's steady rate is
//! not higher, the prebuild never pays off (`t* = -1`, "never"); when
//! the own prebuild is not larger, the amortized tier wins from `t = 0`.

use holo_runtime::ser::{JsonValue, ToJson};

/// Cost model of one tier: startup bytes + steady-state rate.
#[derive(Debug, Clone)]
pub struct TierCost {
    /// Tier name ("mesh", "gaussian", "keypoints", ...).
    pub name: String,
    /// One-time startup transfer, bytes.
    pub prebuild_bytes: u64,
    /// Steady-state rate, bits per second.
    pub steady_bps: f64,
}

impl TierCost {
    /// Total bytes transferred over a call of `seconds`.
    pub fn total_bytes(&self, seconds: f64) -> f64 {
        self.prebuild_bytes as f64 + self.steady_bps * seconds / 8.0
    }
}

/// Break-even call duration in seconds for `own` against `rival`.
/// Returns `0.0` when `own` is cheaper from the start and `-1.0` when it
/// never pays off.
pub fn break_even_seconds(own: &TierCost, rival: &TierCost) -> f64 {
    let extra_bits = (own.prebuild_bytes as f64 - rival.prebuild_bytes as f64) * 8.0;
    let rate_gain = rival.steady_bps - own.steady_bps;
    if extra_bits <= 0.0 {
        return if rate_gain >= 0.0 { 0.0 } else { -1.0 };
    }
    if rate_gain <= 0.0 {
        return -1.0;
    }
    extra_bits / rate_gain
}

/// One cell of the amortization frontier: a hypothetical prebuild size ×
/// update rate, with break-evens against the measured rival tiers.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Prebuild size, bytes.
    pub prebuild_bytes: u64,
    /// Update-stream rate, bits per second.
    pub update_bps: f64,
    /// Break-even vs the mesh tier, seconds (-1 = never).
    pub break_even_vs_mesh_s: f64,
    /// Break-even vs the keypoint tier, seconds (-1 = never).
    pub break_even_vs_keypoints_s: f64,
}

impl ToJson for FrontierPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("prebuild_bytes", JsonValue::Num(self.prebuild_bytes as f64)),
            ("update_bps", JsonValue::Num(self.update_bps)),
            ("break_even_vs_mesh_s", JsonValue::Num(self.break_even_vs_mesh_s)),
            ("break_even_vs_keypoints_s", JsonValue::Num(self.break_even_vs_keypoints_s)),
        ])
    }
}

/// The amortization-frontier report (`GAUSSIAN_frontier.json`).
#[derive(Debug, Clone)]
pub struct FrontierReport {
    /// Measured per-tier cost models, richest first.
    pub tiers: Vec<TierCost>,
    /// The sweep grid.
    pub grid: Vec<FrontierPoint>,
}

impl FrontierReport {
    /// Build the grid: every (prebuild size, update rate) cell against
    /// the measured mesh and keypoint tiers found in `tiers`.
    pub fn sweep(
        tiers: Vec<TierCost>,
        prebuild_sizes: &[u64],
        update_rates_bps: &[f64],
    ) -> Self {
        let find = |name: &str| {
            tiers
                .iter()
                .find(|t| t.name == name)
                .cloned()
                .unwrap_or(TierCost { name: name.into(), prebuild_bytes: 0, steady_bps: 0.0 })
        };
        let mesh = find("mesh");
        let keypoints = find("keypoints");
        let mut grid = Vec::with_capacity(prebuild_sizes.len() * update_rates_bps.len());
        for &pb in prebuild_sizes {
            for &bps in update_rates_bps {
                let own = TierCost {
                    name: "gaussian".into(),
                    prebuild_bytes: pb,
                    steady_bps: bps,
                };
                grid.push(FrontierPoint {
                    prebuild_bytes: pb,
                    update_bps: bps,
                    break_even_vs_mesh_s: break_even_seconds(&own, &mesh),
                    break_even_vs_keypoints_s: break_even_seconds(&own, &keypoints),
                });
            }
        }
        Self { tiers, grid }
    }
}

impl ToJson for TierCost {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("tier", JsonValue::Str(self.name.clone())),
            ("prebuild_bytes", JsonValue::Num(self.prebuild_bytes as f64)),
            ("steady_bps", JsonValue::Num(self.steady_bps)),
        ])
    }
}

impl ToJson for FrontierReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("tiers", JsonValue::Arr(self.tiers.iter().map(ToJson::to_json).collect())),
            ("frontier", JsonValue::Arr(self.grid.iter().map(ToJson::to_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(name: &str, prebuild: u64, bps: f64) -> TierCost {
        TierCost { name: name.into(), prebuild_bytes: prebuild, steady_bps: bps }
    }

    #[test]
    fn break_even_crossover_is_exact() {
        let own = tier("gaussian", 1_000_000, 100_000.0);
        let rival = tier("mesh", 0, 900_000.0);
        let t = break_even_seconds(&own, &rival);
        assert!((t - 10.0).abs() < 1e-9, "t* {t}");
        // At t* the totals agree; before it the rival is cheaper.
        assert!((own.total_bytes(t) - rival.total_bytes(t)).abs() < 1.0);
        assert!(own.total_bytes(t * 0.5) > rival.total_bytes(t * 0.5));
        assert!(own.total_bytes(t * 2.0) < rival.total_bytes(t * 2.0));
    }

    #[test]
    fn degenerate_cases() {
        let cheap = tier("gaussian", 0, 50_000.0);
        let rich = tier("mesh", 0, 900_000.0);
        assert_eq!(break_even_seconds(&cheap, &rich), 0.0);
        // A prebuild with no rate advantage never pays off.
        let heavy = tier("gaussian", 1_000_000, 950_000.0);
        assert_eq!(break_even_seconds(&heavy, &rich), -1.0);
    }

    #[test]
    fn sweep_renders_deterministically() {
        let tiers = vec![tier("mesh", 0, 4.0e6), tier("keypoints", 0, 1.2e5)];
        let r = FrontierReport::sweep(tiers, &[100_000, 1_000_000], &[50_000.0, 100_000.0]);
        assert_eq!(r.grid.len(), 4);
        let a = r.to_json().render();
        let b = r.to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("break_even_vs_mesh_s"));
    }
}
