//! The tiny per-frame update stream for a prebuilt avatar.
//!
//! Same keyframe/delta design as `holo-keypoints::posedelta`, applied to
//! the avatar-conditioning vector: 55 joint axis-angles + root
//! translation + 55 per-region opacity multipliers + 55 per-region scale
//! multipliers = 278 floats. A keyframe carries the LZMA-compressed raw
//! vector; delta frames carry quantized, entropy-coded parameter deltas
//! in a closed loop (the encoder tracks the receiver's reconstruction,
//! so quantization error never accumulates). Steady-state cost is a few
//! hundred bytes per frame — the whole point of the amortized tier.

use crate::splat::AvatarState;
use holo_body::params::SmplxParams;
use holo_body::skeleton::JOINT_COUNT;
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::primitives::{unzigzag, zigzag};
use holo_compress::rc::{decode_bucketed, encode_bucketed, BitTree, RangeDecoder, RangeEncoder};
use holo_math::{Quat, Vec3};
use holo_runtime::ser::DecodeError;

const KEY_MAGIC: u8 = 0x47; // 'G'
const DELTA_MAGIC: u8 = 0x67; // 'g'

/// Floats in the conditioning vector: rotations, translation, region
/// opacity, region scale.
pub const UPDATE_VEC_LEN: usize = JOINT_COUNT * 3 + 3 + JOINT_COUNT + JOINT_COUNT;

/// Quantization steps for the update stream.
#[derive(Debug, Clone, Copy)]
pub struct GaussianUpdateConfig {
    /// Axis-angle component step, radians.
    pub rotation_step: f32,
    /// Translation component step, meters.
    pub translation_step: f32,
    /// Per-region opacity/scale multiplier step.
    pub region_step: f32,
    /// Keyframe refresh interval in frames (0 = never).
    pub keyframe_interval: u32,
}

impl Default for GaussianUpdateConfig {
    fn default() -> Self {
        Self {
            rotation_step: 0.002,
            translation_step: 0.001,
            region_step: 0.004,
            keyframe_interval: 120,
        }
    }
}

fn state_vector(s: &AvatarState) -> Vec<f32> {
    let mut v = Vec::with_capacity(UPDATE_VEC_LEN);
    for q in &s.pose.joint_rotations {
        let aa = q.to_axis_angle();
        v.extend_from_slice(&[aa.x, aa.y, aa.z]);
    }
    v.extend_from_slice(&[s.pose.translation.x, s.pose.translation.y, s.pose.translation.z]);
    v.extend_from_slice(&s.region_opacity);
    v.extend_from_slice(&s.region_scale);
    v
}

fn state_from_vector(v: &[f32]) -> AvatarState {
    let mut pose = SmplxParams::default();
    for j in 0..JOINT_COUNT {
        let o = j * 3;
        pose.joint_rotations[j] = Quat::from_axis_angle_vec(Vec3::new(v[o], v[o + 1], v[o + 2]));
    }
    let o = JOINT_COUNT * 3;
    pose.translation = Vec3::new(v[o], v[o + 1], v[o + 2]);
    let mut state = AvatarState::from_pose(pose);
    state.region_opacity.copy_from_slice(&v[o + 3..o + 3 + JOINT_COUNT]);
    state.region_scale.copy_from_slice(&v[o + 3 + JOINT_COUNT..UPDATE_VEC_LEN]);
    state
}

fn step_for(index: usize, cfg: &GaussianUpdateConfig) -> f32 {
    let rot_end = JOINT_COUNT * 3;
    if index < rot_end {
        cfg.rotation_step
    } else if index < rot_end + 3 {
        cfg.translation_step
    } else {
        cfg.region_step
    }
}

/// Encoder: keyframe + closed-loop quantized deltas.
pub struct GaussianUpdateEncoder {
    /// Configuration (must match the decoder's).
    pub config: GaussianUpdateConfig,
    reference: Option<Vec<f32>>,
    frames_since_key: u32,
}

/// Decoder state.
#[derive(Default)]
pub struct GaussianUpdateDecoder {
    reference: Option<Vec<f32>>,
}

impl GaussianUpdateEncoder {
    /// Build an encoder.
    pub fn new(config: GaussianUpdateConfig) -> Self {
        Self { config, reference: None, frames_since_key: 0 }
    }

    /// Encode one conditioning state.
    pub fn encode(&mut self, state: &AvatarState) -> Vec<u8> {
        let need_key = self.reference.is_none()
            || (self.config.keyframe_interval > 0
                && self.frames_since_key >= self.config.keyframe_interval);
        let current = state_vector(state);
        if need_key {
            self.frames_since_key = 0;
            let mut raw = Vec::with_capacity(UPDATE_VEC_LEN * 4);
            for f in &current {
                raw.extend_from_slice(&f.to_le_bytes());
            }
            // f32 bytes roundtrip exactly, so the wire vector *is* the
            // receiver's reference.
            self.reference = Some(current);
            let mut out = vec![KEY_MAGIC];
            out.extend_from_slice(&lzma_compress(&raw));
            return out;
        }
        self.frames_since_key += 1;
        let reference = self.reference.as_mut().unwrap();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(6);
        for (i, (r, &c)) in reference.iter_mut().zip(&current).enumerate() {
            let step = step_for(i, &self.config);
            let q = ((c - *r) / step).round() as i32;
            encode_bucketed(&mut enc, &mut tree, zigzag(q));
            *r += q as f32 * step; // closed loop
        }
        let mut out = vec![DELTA_MAGIC];
        out.extend_from_slice(&enc.finish());
        out
    }
}

impl GaussianUpdateDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode one update frame. `config` must match the encoder's.
    ///
    /// Hostile-input contract: typed errors; a delta whose coded bytes
    /// run dry is rejected with the reference rolled back; a delta before
    /// any keyframe is rejected (the closed loop has no basis yet).
    pub fn decode(
        &mut self,
        data: &[u8],
        config: &GaussianUpdateConfig,
    ) -> Result<AvatarState, DecodeError> {
        let (&magic, body) = data
            .split_first()
            .ok_or(DecodeError::Truncated { needed: 1, available: 0 })?;
        match magic {
            KEY_MAGIC => {
                let raw = lzma_decompress(body)?;
                if raw.len() != UPDATE_VEC_LEN * 4 {
                    return Err(DecodeError::corrupt(
                        "gaussian update",
                        format!("keyframe carries {} bytes, expected {}", raw.len(), UPDATE_VEC_LEN * 4),
                    ));
                }
                let v: Vec<f32> = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                if v.iter().any(|f| !f.is_finite()) {
                    return Err(DecodeError::corrupt("gaussian update", "non-finite keyframe value"));
                }
                let state = state_from_vector(&v);
                self.reference = Some(v);
                Ok(state)
            }
            DELTA_MAGIC => {
                let reference = self.reference.as_mut().ok_or_else(|| {
                    DecodeError::corrupt("gaussian update", "delta frame before any keyframe")
                })?;
                let mut dec = RangeDecoder::new(body);
                let mut tree = BitTree::new(6);
                let mut next = reference.clone();
                for (i, r) in next.iter_mut().enumerate() {
                    if dec.exhausted() {
                        return Err(DecodeError::Truncated {
                            needed: reference.len(),
                            available: i,
                        });
                    }
                    let q = unzigzag(decode_bucketed(&mut dec, &mut tree));
                    *r += q as f32 * step_for(i, config);
                }
                *reference = next;
                Ok(state_from_vector(reference))
            }
            other => Err(DecodeError::corrupt(
                "gaussian update",
                format!("unknown gaussian update magic {other:#x}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_body::motion::{MotionKind, MotionSynthesizer};
    use holo_body::skeleton::Skeleton;

    fn clip(frames: usize) -> Vec<AvatarState> {
        let mut synth = MotionSynthesizer::new(11);
        synth
            .clip(MotionKind::Talking, frames as f32 / 30.0, 30.0)
            .frames
            .into_iter()
            .enumerate()
            .map(|(i, pose)| {
                let mut s = AvatarState::from_pose(pose);
                // Exercise the region channels with smooth variation.
                s.region_opacity[3] = 1.0 - 0.002 * i as f32;
                s.region_scale[7] = 1.0 + 0.003 * i as f32;
                s
            })
            .collect()
    }

    #[test]
    fn stream_roundtrips_accurately() {
        let states = clip(30);
        let cfg = GaussianUpdateConfig::default();
        let mut enc = GaussianUpdateEncoder::new(cfg);
        let mut dec = GaussianUpdateDecoder::new();
        let sk = Skeleton::neutral();
        for s in &states {
            let out = dec.decode(&enc.encode(s), &cfg).unwrap();
            let a = sk.forward_kinematics(&s.pose).positions();
            let b = sk.forward_kinematics(&out.pose).positions();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((*x - *y).length() < 0.01, "joint error {}", (*x - *y).length());
            }
            for r in 0..JOINT_COUNT {
                assert!((s.region_opacity[r] - out.region_opacity[r]).abs() < 0.01);
                assert!((s.region_scale[r] - out.region_scale[r]).abs() < 0.01);
            }
        }
    }

    #[test]
    fn delta_frames_are_tiny() {
        let states = clip(30);
        let cfg = GaussianUpdateConfig::default();
        let mut enc = GaussianUpdateEncoder::new(cfg);
        let mut delta_total = 0usize;
        for (i, s) in states.iter().enumerate() {
            let bytes = enc.encode(s);
            if i == 0 {
                assert_eq!(bytes[0], KEY_MAGIC);
            } else {
                assert_eq!(bytes[0], DELTA_MAGIC);
                delta_total += bytes.len();
            }
        }
        let mean = delta_total / (states.len() - 1);
        assert!(mean < 600, "mean delta frame {mean} B");
    }

    #[test]
    fn keyframe_interval_refreshes() {
        let states = clip(10);
        let cfg = GaussianUpdateConfig { keyframe_interval: 3, ..Default::default() };
        let mut enc = GaussianUpdateEncoder::new(cfg);
        let keys = states.iter().filter(|s| enc.encode(s)[0] == KEY_MAGIC).count();
        assert!(keys >= 3, "keys {keys}");
    }

    #[test]
    fn decoder_rejects_hostile_frames() {
        let states = clip(2);
        let cfg = GaussianUpdateConfig::default();
        let mut enc = GaussianUpdateEncoder::new(cfg);
        let _key = enc.encode(&states[0]);
        let delta = enc.encode(&states[1]);
        let mut dec = GaussianUpdateDecoder::new();
        // Delta before key, empty input, unknown magic.
        assert!(dec.decode(&delta, &cfg).is_err());
        assert!(dec.decode(&[], &cfg).is_err());
        assert!(dec.decode(&[0xFF, 1, 2], &cfg).is_err());
    }

    #[test]
    fn truncated_delta_rolls_back_reference() {
        let states = clip(3);
        let cfg = GaussianUpdateConfig::default();
        let mut enc = GaussianUpdateEncoder::new(cfg);
        let key = enc.encode(&states[0]);
        let delta1 = enc.encode(&states[1]);
        let delta2 = enc.encode(&states[2]);
        let mut dec = GaussianUpdateDecoder::new();
        dec.decode(&key, &cfg).unwrap();
        // A starved delta must not poison the closed loop...
        assert!(dec.decode(&delta1[..2], &cfg).is_err());
        // ...so the intact retransmit still lands exactly.
        let out = dec.decode(&delta1, &cfg).unwrap();
        assert!((out.pose.translation - states[1].pose.translation).length() < 0.01);
        dec.decode(&delta2, &cfg).unwrap();
    }
}
