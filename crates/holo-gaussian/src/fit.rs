//! Deterministic offline avatar fitting from RGB-D fusion.
//!
//! The prebuild phase of the amortized tier: fuse one captured frame into
//! a colored point cloud, voxel-downsample to the splat budget, bind each
//! point to its nearest *posed* joint, and un-pose it into rest space so
//! the stored avatar is pose-independent. Everything is a pure function
//! of the frame — no RNG — so the same capture always produces the same
//! prebuild blob byte for byte.

use crate::splat::{GaussianAvatar, Splat, SH_COEFFS};
use holo_body::skeleton::JOINT_COUNT;
use holo_math::{Aabb, Quat, Vec3};
use semholo::scene::SceneFrame;

/// Offline fitting configuration.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Voxel edge for downsampling the fused cloud, meters.
    pub voxel_size: f32,
    /// Hard cap on splat count (deterministic truncation).
    pub max_splats: usize,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { voxel_size: 0.015, max_splats: 40_000 }
    }
}

/// Fit a splat-cloud avatar from one scene frame's RGB-D fusion.
pub fn fit_avatar(frame: &SceneFrame, config: &FitConfig) -> GaussianAvatar {
    let cloud = frame.captured_cloud().voxel_downsample(config.voxel_size);
    let skeleton = &frame.context.skeleton;
    let rest = skeleton.rest_positions();
    let posed = skeleton.forward_kinematics(&frame.params).positions();
    let radius = config.voxel_size * 0.6;
    let mut splats = Vec::with_capacity(cloud.points.len().min(config.max_splats));
    for (i, &p) in cloud.points.iter().enumerate().take(config.max_splats) {
        // Bind to the nearest posed joint, then un-pose into rest space.
        let mut region = 0usize;
        let mut best = f32::INFINITY;
        for (j, &jp) in posed.iter().enumerate() {
            let d = (p - jp).length_sq();
            if d < best {
                best = d;
                region = j;
            }
        }
        let color = cloud.colors.get(i).copied().unwrap_or(Vec3::new(0.5, 0.5, 0.5));
        let mut sh = [0.0f32; SH_COEFFS];
        sh[0] = color.x;
        sh[1] = color.y;
        sh[2] = color.z;
        splats.push(Splat {
            position: p - (posed[region] - rest[region]),
            scale: Vec3::new(radius, radius, radius),
            rotation: Quat::IDENTITY,
            opacity: 0.9,
            sh,
            region: region as u8,
        });
    }
    let positions: Vec<Vec3> = splats.iter().map(|s| s.position).collect();
    let bounds = if positions.is_empty() {
        Aabb::new(Vec3::ZERO, Vec3::new(1e-3, 1e-3, 1e-3))
    } else {
        Aabb::from_points(&positions).expanded(config.voxel_size.max(1e-3))
    };
    GaussianAvatar { splats, bounds, region_count: JOINT_COUNT as u8 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    #[test]
    fn fit_is_deterministic_and_body_shaped() {
        let scene = scene();
        let frame = scene.frame(0);
        let cfg = FitConfig::default();
        let a = fit_avatar(&frame, &cfg);
        let b = fit_avatar(&scene.frame(0), &cfg);
        assert!(a.splats.len() > 200, "splats {}", a.splats.len());
        assert_eq!(a.splats.len(), b.splats.len());
        for (x, y) in a.splats.iter().zip(&b.splats) {
            assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
            assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
            assert_eq!(x.position.z.to_bits(), y.position.z.to_bits());
        }
        let size = a.bounds.size();
        assert!(size.y > 1.0 && size.y < 2.5, "avatar height {size:?}");
    }

    #[test]
    fn max_splats_caps_output() {
        let scene = scene();
        let cfg = FitConfig { max_splats: 100, ..Default::default() };
        let a = fit_avatar(&scene.frame(0), &cfg);
        assert_eq!(a.splats.len(), 100);
        assert!(a.splats.iter().all(|s| (s.region as usize) < JOINT_COUNT));
    }
}
