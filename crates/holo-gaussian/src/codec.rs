//! Quantized binary codec for the one-time prebuild blob.
//!
//! The blob is big (tens of KB to a few MB), cacheable, and CDN-shaped:
//! it is transferred once per (publisher, subscriber-cohort) and counted
//! as startup bytes, never steady-state. The format is a fixed 27-byte
//! record per splat inside quantization bounds carried in the header:
//!
//! ```text
//! magic "GSPL" u32 | version u8 | region_count u8 | count u32 |
//! bounds min/max 6×f32 |
//! per splat: pos 3×u16 (normalized in bounds) | scale 3×u8 |
//!            rotation 4×i8 | opacity u8 | region u8 | sh 12×i8
//! ```
//!
//! Hostile-input contract (the fuzz target pins it): typed errors only,
//! the splat-count allocation cap is checked *before* any allocation,
//! and a truncated body is rejected before the splat vector is reserved.

use crate::splat::{GaussianAvatar, Splat, SH_COEFFS};
use holo_body::skeleton::JOINT_COUNT;
use holo_math::{Aabb, Quat, Vec3};
use holo_runtime::ser::{ByteReader, DecodeError};

/// Wire magic, "GSPL" little-endian.
pub const PREBUILD_MAGIC: u32 = 0x4C50_5347;
/// Current format version.
pub const PREBUILD_VERSION: u8 = 1;
/// Allocation cap: decoders never materialize more splats than this.
pub const MAX_SPLATS: usize = 1 << 18;
/// Fixed per-splat record size.
pub const SPLAT_WIRE_BYTES: usize = 27;
/// Header size: magic + version + region_count + count + bounds.
pub const PREBUILD_HEADER_BYTES: usize = 4 + 1 + 1 + 4 + 24;
/// Quantization ceiling for per-axis splat scale, meters.
const SCALE_MAX: f32 = 0.08;

fn quant_unit(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

fn quant_signed(v: f32) -> i8 {
    (v.clamp(-1.0, 1.0) * 127.0).round() as i8
}

/// Serialize an avatar into the prebuild wire format.
pub fn encode_prebuild(avatar: &GaussianAvatar) -> Vec<u8> {
    let count = avatar.splats.len().min(MAX_SPLATS) as u32;
    let mut out = Vec::with_capacity(PREBUILD_HEADER_BYTES + count as usize * SPLAT_WIRE_BYTES);
    out.extend_from_slice(&PREBUILD_MAGIC.to_le_bytes());
    out.push(PREBUILD_VERSION);
    out.push(avatar.region_count);
    out.extend_from_slice(&count.to_le_bytes());
    let (lo, hi) = (avatar.bounds.min, avatar.bounds.max);
    for f in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
        out.extend_from_slice(&f.to_le_bytes());
    }
    let span = hi - lo;
    for s in avatar.splats.iter().take(count as usize) {
        for (p, l, w) in [
            (s.position.x, lo.x, span.x),
            (s.position.y, lo.y, span.y),
            (s.position.z, lo.z, span.z),
        ] {
            let t = if w > 0.0 { ((p - l) / w).clamp(0.0, 1.0) } else { 0.0 };
            out.extend_from_slice(&((t * 65535.0).round() as u16).to_le_bytes());
        }
        for v in [s.scale.x, s.scale.y, s.scale.z] {
            out.push(quant_unit(v / SCALE_MAX));
        }
        // Canonicalize the quaternion sign so -q and q quantize alike.
        let q = s.rotation.normalized();
        let sign = if q.w < 0.0 { -1.0 } else { 1.0 };
        for v in [q.x * sign, q.y * sign, q.z * sign, q.w * sign] {
            out.push(quant_signed(v) as u8);
        }
        out.push(quant_unit(s.opacity));
        out.push(s.region);
        for v in s.sh {
            out.push(quant_signed(v) as u8);
        }
    }
    out
}

/// Parse a prebuild blob. Typed errors, allocation-capped.
pub fn decode_prebuild(data: &[u8]) -> Result<GaussianAvatar, DecodeError> {
    let mut r = ByteReader::new(data);
    r.expect_magic(PREBUILD_MAGIC)?;
    let version = r.u8()?;
    if version != PREBUILD_VERSION {
        return Err(DecodeError::corrupt(
            "gaussian prebuild",
            format!("unsupported version {version}"),
        ));
    }
    let region_count = r.u8()?;
    if region_count == 0 || region_count as usize > JOINT_COUNT {
        return Err(DecodeError::corrupt(
            "gaussian prebuild",
            format!("region count {region_count} outside 1..={JOINT_COUNT}"),
        ));
    }
    let count = r.u32_le()? as usize;
    if count > MAX_SPLATS {
        return Err(DecodeError::LimitExceeded {
            what: "gaussian splats",
            requested: count as u64,
            limit: MAX_SPLATS as u64,
        });
    }
    let mut bf = [0.0f32; 6];
    for b in &mut bf {
        *b = r.f32_le()?;
        if !b.is_finite() {
            return Err(DecodeError::corrupt("gaussian prebuild", "non-finite bounds"));
        }
    }
    let (lo, hi) = (Vec3::new(bf[0], bf[1], bf[2]), Vec3::new(bf[3], bf[4], bf[5]));
    if !(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z) {
        return Err(DecodeError::corrupt("gaussian prebuild", "inverted bounds"));
    }
    // Reject short or padded bodies before reserving the splat vector.
    let body = count * SPLAT_WIRE_BYTES;
    if r.remaining() < body {
        return Err(DecodeError::Truncated {
            needed: r.pos() + body,
            available: data.len(),
        });
    }
    if r.remaining() > body {
        return Err(DecodeError::corrupt(
            "gaussian prebuild",
            format!("{} trailing bytes after {count} splats", r.remaining() - body),
        ));
    }
    let span = hi - lo;
    let mut splats = Vec::with_capacity(count);
    for _ in 0..count {
        let mut pos = [0.0f32; 3];
        for (p, (l, w)) in pos
            .iter_mut()
            .zip([(lo.x, span.x), (lo.y, span.y), (lo.z, span.z)])
        {
            *p = l + r.u16_le()? as f32 / 65535.0 * w;
        }
        let mut scale = [0.0f32; 3];
        for s in &mut scale {
            *s = r.u8()? as f32 / 255.0 * SCALE_MAX;
        }
        let mut qc = [0.0f32; 4];
        for q in &mut qc {
            *q = (r.u8()? as i8) as f32 / 127.0;
        }
        let raw = Quat { x: qc[0], y: qc[1], z: qc[2], w: qc[3] };
        let rotation = if qc.iter().map(|v| v * v).sum::<f32>() < 1e-6 {
            Quat::IDENTITY
        } else {
            raw.normalized()
        };
        let opacity = r.u8()? as f32 / 255.0;
        let region = r.u8()?;
        if region >= region_count {
            return Err(DecodeError::corrupt(
                "gaussian prebuild",
                format!("splat region {region} >= region count {region_count}"),
            ));
        }
        let mut sh = [0.0f32; SH_COEFFS];
        for v in &mut sh {
            *v = (r.u8()? as i8) as f32 / 127.0;
        }
        splats.push(Splat {
            position: Vec3::new(pos[0], pos[1], pos[2]),
            scale: Vec3::new(scale[0], scale[1], scale[2]),
            rotation,
            opacity,
            sh,
            region,
        });
    }
    Ok(GaussianAvatar { splats, bounds: Aabb::new(lo, hi), region_count })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_avatar(n: usize) -> GaussianAvatar {
        let mut splats = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f32 / n.max(1) as f32;
            splats.push(Splat {
                position: Vec3::new(t - 0.5, 1.0 + t, 0.1 * t),
                scale: Vec3::new(0.01, 0.012, 0.008),
                rotation: Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), t),
                opacity: 0.9,
                sh: [t.min(1.0); SH_COEFFS],
                region: (i % JOINT_COUNT) as u8,
            });
        }
        let pts: Vec<Vec3> = splats.iter().map(|s| s.position).collect();
        GaussianAvatar {
            bounds: Aabb::from_points(&pts).expanded(0.02),
            splats,
            region_count: JOINT_COUNT as u8,
        }
    }

    #[test]
    fn roundtrip_within_quantization_error() {
        let avatar = sample_avatar(200);
        let blob = encode_prebuild(&avatar);
        assert_eq!(blob.len(), PREBUILD_HEADER_BYTES + 200 * SPLAT_WIRE_BYTES);
        let back = decode_prebuild(&blob).unwrap();
        assert_eq!(back.splats.len(), 200);
        let step = avatar.bounds.longest_side() / 65535.0;
        for (a, b) in avatar.splats.iter().zip(&back.splats) {
            assert!((a.position - b.position).length() < step * 4.0);
            assert!((a.opacity - b.opacity).abs() < 0.01);
            assert_eq!(a.region, b.region);
            assert!((a.sh[0] - b.sh[0]).abs() < 0.01);
        }
    }

    #[test]
    fn double_roundtrip_converges() {
        // A second encode/decode pass stays within quantization noise of
        // the first — the codec does not drift.
        let blob = encode_prebuild(&sample_avatar(64));
        let once = decode_prebuild(&blob).unwrap();
        let twice = decode_prebuild(&encode_prebuild(&once)).unwrap();
        for (a, b) in once.splats.iter().zip(&twice.splats) {
            assert!((a.position - b.position).length() < 1e-4);
            assert!(a.rotation.angle_to(b.rotation) < 0.05);
            assert_eq!(a.region, b.region);
        }
    }

    #[test]
    fn splat_count_cap_is_checked_before_allocation() {
        let mut blob = encode_prebuild(&sample_avatar(4));
        // Forge a giant splat count at offset 6.
        blob[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_prebuild(&blob) {
            Err(DecodeError::LimitExceeded { requested, limit, .. }) => {
                assert_eq!(requested, u32::MAX as u64);
                assert_eq!(limit, MAX_SPLATS as u64);
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let blob = encode_prebuild(&sample_avatar(16));
        for cut in [0, 3, 9, PREBUILD_HEADER_BYTES, blob.len() - 1] {
            assert!(decode_prebuild(&blob[..cut]).is_err(), "cut {cut} accepted");
        }
        let mut padded = blob.clone();
        padded.push(0);
        assert!(decode_prebuild(&padded).is_err());
    }

    #[test]
    fn hostile_header_fields_rejected() {
        let good = encode_prebuild(&sample_avatar(4));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(decode_prebuild(&bad_version).is_err());
        let mut bad_region = good.clone();
        bad_region[5] = 0;
        assert!(decode_prebuild(&bad_region).is_err());
        let mut nan_bounds = good.clone();
        nan_bounds[10..14].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(decode_prebuild(&nan_bounds).is_err());
        assert!(decode_prebuild(&[0xDE; 64]).is_err());
        assert!(decode_prebuild(&[]).is_err());
    }
}
