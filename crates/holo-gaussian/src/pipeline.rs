//! A [`SemanticPipeline`] adapter for the amortized gaussian tier.
//!
//! The first `encode` runs the offline prebuild (fit + quantized blob)
//! and keeps the *decoded* avatar as the receiver's copy — the receiver
//! reconstructs from the quantized blob it was shipped, so measured
//! quality is honest about quantization loss. Per-frame payloads are
//! only the tiny update stream; the prebuild is exposed as
//! [`GaussianPipeline::prebuild_bytes`] and accounted as startup cost by
//! the amortization report, never as steady-state bandwidth.

use crate::codec::{decode_prebuild, encode_prebuild};
use crate::fit::{fit_avatar, FitConfig};
use crate::splat::{AvatarState, GaussianAvatar};
use crate::update::{GaussianUpdateConfig, GaussianUpdateDecoder, GaussianUpdateEncoder};
use holo_body::skeleton::Skeleton;
use holo_gpu::Workload;
use holo_runtime::bytes::Bytes;
use semholo::error::{reject_decode, Result, SemHoloError};
use semholo::scene::SceneFrame;
use semholo::semantics::{
    cloud_quality, Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind,
    SemanticPipeline, StageCost,
};
use std::time::Instant;

/// The gaussian-tier pipeline: prebuilt splat avatar + update stream.
pub struct GaussianPipeline {
    /// Offline fitting configuration.
    pub fit: FitConfig,
    /// Update-stream quantization configuration.
    pub update: GaussianUpdateConfig,
    /// Ground-truth reference resolution for quality metrics.
    pub quality_reference_resolution: u32,
    avatar: Option<GaussianAvatar>,
    prebuild_bytes: usize,
    encoder: GaussianUpdateEncoder,
    decoder: GaussianUpdateDecoder,
    skeleton: Skeleton,
}

impl GaussianPipeline {
    /// Build the pipeline.
    pub fn new(fit: FitConfig, update: GaussianUpdateConfig) -> Self {
        Self {
            fit,
            update,
            quality_reference_resolution: 96,
            avatar: None,
            prebuild_bytes: 0,
            encoder: GaussianUpdateEncoder::new(update),
            decoder: GaussianUpdateDecoder::new(),
            skeleton: Skeleton::neutral(),
        }
    }

    /// Size of the one-time prebuild blob (0 before the first encode).
    pub fn prebuild_bytes(&self) -> usize {
        self.prebuild_bytes
    }

    /// The receiver-side avatar, once prebuilt.
    pub fn avatar(&self) -> Option<&GaussianAvatar> {
        self.avatar.as_ref()
    }

    fn ensure_prebuild(&mut self, frame: &SceneFrame) -> Result<()> {
        if self.avatar.is_some() {
            return Ok(());
        }
        let fitted = fit_avatar(frame, &self.fit);
        if fitted.splats.is_empty() {
            return Err(SemHoloError::Extraction("gaussian fit produced no splats".into()));
        }
        let blob = encode_prebuild(&fitted);
        self.prebuild_bytes = blob.len();
        // Keep what the receiver would decode from the shipped blob.
        self.avatar = Some(decode_prebuild(&blob).map_err(reject_decode)?);
        Ok(())
    }
}

impl Default for GaussianPipeline {
    fn default() -> Self {
        Self::new(FitConfig::default(), GaussianUpdateConfig::default())
    }
}

impl SemanticPipeline for GaussianPipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::Gaussian
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        self.ensure_prebuild(frame)?;
        let state = AvatarState::from_pose(frame.params.clone());
        let payload = self.encoder.encode(&state);
        // Extraction is pose conditioning only — the heavy lifting
        // happened once at prebuild time. Modeled as a light tracker.
        Ok(EncodedFrame {
            payload: Bytes::from(payload),
            extract: StageCost {
                cpu_wall: t0.elapsed(),
                gpu: Some(Workload { flops: 2.0e9, bytes: 8.0e6, peak_memory: 64 << 20 }),
            },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        let avatar = self
            .avatar
            .as_ref()
            .ok_or_else(|| SemHoloError::Reconstruction("no prebuilt avatar for update".into()))?;
        let state = self.decoder.decode(payload, &self.update).map_err(reject_decode)?;
        let cloud = avatar.posed_cloud(&self.skeleton, &state);
        // Splat rasterization is linear in splat count — orders of
        // magnitude below the implicit-surface reconstruction the
        // keypoint tier pays every frame.
        let n = avatar.splats.len() as f64;
        Ok(Reconstructed {
            content: Content::Cloud(cloud),
            recon: StageCost {
                cpu_wall: t0.elapsed(),
                gpu: Some(Workload {
                    flops: n * 4.0e3,
                    bytes: n * 96.0,
                    peak_memory: (self.prebuild_bytes as u64 * 4).max(16 << 20),
                }),
            },
        })
    }

    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        let Content::Cloud(cloud) = content else {
            return QualityReport::default();
        };
        let gt = frame.ground_truth_mesh(self.quality_reference_resolution);
        cloud_quality(&gt, cloud, frame.context.config.seed ^ frame.index as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    #[test]
    fn prebuild_is_big_and_updates_are_tiny() {
        let scene = scene();
        let mut p = GaussianPipeline::default();
        let first = p.encode(&scene.frame(0)).unwrap();
        assert!(p.prebuild_bytes() > 5_000, "prebuild {} B", p.prebuild_bytes());
        // Keyframe update is small; deltas are smaller still.
        assert!(first.payload.len() < 4096, "keyframe update {} B", first.payload.len());
        let second = p.encode(&scene.frame(1)).unwrap();
        assert!(second.payload.len() < 1024, "delta update {} B", second.payload.len());
        assert!(second.payload.len() < p.prebuild_bytes() / 20);
    }

    #[test]
    fn roundtrip_reconstructs_a_body_shaped_cloud() {
        let scene = scene();
        let mut p = GaussianPipeline::default();
        let enc = p.encode(&scene.frame(0)).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Cloud(cloud) = &rec.content else { panic!("expected cloud") };
        assert!(cloud.points.len() > 200, "points {}", cloud.points.len());
        let size = cloud.bounds().size();
        assert!(size.y > 1.0 && size.y < 2.5, "body height {size:?}");
        assert!(rec.recon.gpu.is_some());
    }

    #[test]
    fn quality_is_reasonable_for_a_splat_cloud() {
        // A denser rig than the other tests: quality of a splat cloud is
        // capture-resolution-bound, and this is the paper-bench rig.
        let config = SemHoloConfig {
            capture_resolution: (96, 72),
            camera_count: 4,
            ..Default::default()
        };
        let scene = SceneSource::new(&config, 0.5);
        let frame = scene.frame(0);
        let mut p =
            GaussianPipeline { quality_reference_resolution: 64, ..Default::default() };
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let q = p.quality(&frame, &rec.content);
        let chamfer = q.chamfer.unwrap();
        assert!(chamfer < 0.12, "chamfer {chamfer}");
        assert!(q.f_score.unwrap() > 0.25, "f-score {:?}", q.f_score);
    }

    #[test]
    fn decode_without_prebuild_or_with_garbage_fails() {
        let scene = scene();
        let mut p = GaussianPipeline::default();
        assert!(p.decode(&[0x47, 1, 2]).is_err(), "no avatar yet");
        let _ = p.encode(&scene.frame(0)).unwrap();
        assert!(p.decode(&[0xDE; 16]).is_err(), "garbage magic");
    }
}
