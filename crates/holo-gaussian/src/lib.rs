//! Amortized Gaussian-splat avatars — the fourth semantic tier.
//!
//! Mon3tr-style amortization (PAPERS.md, arXiv 2601.07518): pre-build a
//! splat-cloud avatar **once** from `holo-capture` RGB-D fusion, transfer
//! the big cacheable blob out of band (CDN-shaped startup bytes), then
//! stream only a tiny per-frame conditioning signal — skeleton pose plus
//! per-region opacity/scale deltas. Steady-state bandwidth lands between
//! the keypoint tier (which ships pose *and* pays full implicit-surface
//! reconstruction) and the mesh tier (which ships geometry every frame);
//! the prebuild cost amortizes over call duration, and
//! [`amortize::break_even_seconds`] computes exactly when.
//!
//! # Modules
//!
//! - [`splat`] — the splat-cloud representation and rest-space posing.
//! - [`fit`] — deterministic offline fitting from a captured point cloud.
//! - [`codec`] — quantized binary codec for the one-time prebuild blob.
//! - [`update`] — keyframe/delta codec for the per-frame update stream.
//! - [`pipeline`] — a [`semholo::semantics::SemanticPipeline`] adapter.
//! - [`amortize`] — break-even frontier math and its JSON report.

pub mod amortize;
pub mod codec;
pub mod fit;
pub mod pipeline;
pub mod splat;
pub mod update;

pub use amortize::{break_even_seconds, FrontierPoint, FrontierReport, TierCost};
pub use codec::{decode_prebuild, encode_prebuild, MAX_SPLATS, SPLAT_WIRE_BYTES};
pub use fit::{fit_avatar, FitConfig};
pub use pipeline::GaussianPipeline;
pub use splat::{AvatarState, GaussianAvatar, Splat, SH_COEFFS};
pub use update::{GaussianUpdateConfig, GaussianUpdateDecoder, GaussianUpdateEncoder, UPDATE_VEC_LEN};
