//! Splat-cloud avatar representation and rest-space posing.
//!
//! Splats live in **rest space**: each is bound to its nearest skeleton
//! joint (its *region*) and rides that joint's translation when posed.
//! This is the cheapest possible skinning — rigid per-region translation
//! — but it is exactly what a per-frame update stream of pose +
//! per-region deltas can animate, and it keeps posing deterministic and
//! allocation-free per splat.

use holo_body::params::SmplxParams;
use holo_body::skeleton::{Skeleton, JOINT_COUNT};
use holo_math::{Aabb, Quat, Vec3};
use holo_mesh::pointcloud::PointCloud;

/// Spherical-harmonic color coefficients per splat: 3 DC + 9 band-1/2
/// terms (a truncated real SH basis; the prebuild codec stores all 12).
pub const SH_COEFFS: usize = 12;

/// Minimum effective opacity for a splat to contribute geometry.
const OPACITY_CULL: f32 = 0.45;

/// One Gaussian splat in rest space.
#[derive(Debug, Clone)]
pub struct Splat {
    /// Center position, rest space, meters.
    pub position: Vec3,
    /// Per-axis standard deviation, meters.
    pub scale: Vec3,
    /// Orientation of the anisotropic kernel.
    pub rotation: Quat,
    /// Base opacity in [0, 1].
    pub opacity: f32,
    /// SH color coefficients; `sh[0..3]` is the RGB DC term in [0, 1].
    pub sh: [f32; SH_COEFFS],
    /// Nearest-joint binding (index into the skeleton's joints).
    pub region: u8,
}

/// A prebuilt splat-cloud avatar: the one-time, cacheable asset.
#[derive(Debug, Clone)]
pub struct GaussianAvatar {
    /// All splats, rest space, deterministic order.
    pub splats: Vec<Splat>,
    /// Rest-space bounds (the prebuild codec quantizes positions inside).
    pub bounds: Aabb,
    /// Number of valid region indices (≤ [`JOINT_COUNT`]).
    pub region_count: u8,
}

/// Per-frame animation state: what the tiny update stream carries.
#[derive(Debug, Clone)]
pub struct AvatarState {
    /// Skeleton pose driving the avatar.
    pub pose: SmplxParams,
    /// Per-region opacity multiplier (1.0 = as prebuilt).
    pub region_opacity: [f32; JOINT_COUNT],
    /// Per-region scale multiplier (1.0 = as prebuilt).
    pub region_scale: [f32; JOINT_COUNT],
}

impl AvatarState {
    /// Rest state: identity pose, unit multipliers.
    pub fn rest() -> Self {
        Self::from_pose(SmplxParams::default())
    }

    /// State driving the avatar with a pose and unit region multipliers.
    pub fn from_pose(pose: SmplxParams) -> Self {
        Self { pose, region_opacity: [1.0; JOINT_COUNT], region_scale: [1.0; JOINT_COUNT] }
    }
}

impl GaussianAvatar {
    /// Pose the avatar: every splat follows its region joint's
    /// translation from rest to the posed skeleton. Splats whose
    /// effective opacity falls below the cull threshold are dropped
    /// (that is how the update stream fades regions out).
    pub fn posed_cloud(&self, skeleton: &Skeleton, state: &AvatarState) -> PointCloud {
        let rest = skeleton.rest_positions();
        let posed = skeleton.forward_kinematics(&state.pose).positions();
        let mut cloud = PointCloud::new();
        cloud.points.reserve(self.splats.len());
        cloud.colors.reserve(self.splats.len());
        for s in &self.splats {
            let r = (s.region as usize).min(JOINT_COUNT - 1);
            if s.opacity * state.region_opacity[r] < OPACITY_CULL {
                continue;
            }
            cloud.points.push(s.position + (posed[r] - rest[r]));
            cloud.colors.push(Vec3::new(
                s.sh[0].clamp(0.0, 1.0),
                s.sh[1].clamp(0.0, 1.0),
                s.sh[2].clamp(0.0, 1.0),
            ));
        }
        cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_avatar() -> GaussianAvatar {
        let splats = vec![
            Splat {
                position: Vec3::new(0.0, 1.0, 0.0),
                scale: Vec3::new(0.01, 0.01, 0.01),
                rotation: Quat::IDENTITY,
                opacity: 0.9,
                sh: [0.5; SH_COEFFS],
                region: 0,
            },
            Splat {
                position: Vec3::new(0.1, 1.5, 0.0),
                scale: Vec3::new(0.01, 0.01, 0.01),
                rotation: Quat::IDENTITY,
                opacity: 0.9,
                sh: [0.2; SH_COEFFS],
                region: 12,
            },
        ];
        let bounds = Aabb::from_points(&[splats[0].position, splats[1].position]).expanded(0.05);
        GaussianAvatar { splats, bounds, region_count: JOINT_COUNT as u8 }
    }

    #[test]
    fn rest_pose_reproduces_rest_positions() {
        let avatar = tiny_avatar();
        let sk = Skeleton::neutral();
        let cloud = avatar.posed_cloud(&sk, &AvatarState::rest());
        assert_eq!(cloud.points.len(), 2);
        assert!((cloud.points[0] - avatar.splats[0].position).length() < 1e-5);
    }

    #[test]
    fn translated_pose_moves_every_splat() {
        let avatar = tiny_avatar();
        let sk = Skeleton::neutral();
        let mut state = AvatarState::rest();
        state.pose.translation = Vec3::new(0.3, 0.0, 0.0);
        let cloud = avatar.posed_cloud(&sk, &state);
        for (p, s) in cloud.points.iter().zip(&avatar.splats) {
            assert!((p.x - s.position.x - 0.3).abs() < 1e-4, "splat did not follow root");
        }
    }

    #[test]
    fn region_opacity_culls_splats() {
        let avatar = tiny_avatar();
        let sk = Skeleton::neutral();
        let mut state = AvatarState::rest();
        state.region_opacity[0] = 0.1;
        let cloud = avatar.posed_cloud(&sk, &state);
        assert_eq!(cloud.points.len(), 1, "region-0 splat should be culled");
    }
}
