//! The bottleneck link model.
//!
//! A single-server fluid queue: packets serialize at the trace's current
//! rate, wait behind earlier packets (tail-drop beyond the configured
//! queue depth), then experience propagation delay, jitter, and random
//! loss. This is the standard bottleneck abstraction for application-
//! level streaming studies; everything is virtual-time and seeded.

use crate::fault::FaultClock;
use crate::time::SimTime;
use crate::trace::BandwidthTrace;
use holo_math::Pcg32;
use std::time::Duration;

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Uniform jitter added on top of propagation, max.
    pub jitter_max: Duration,
    /// Random packet loss probability.
    pub loss_rate: f32,
    /// Maximum queueing delay before tail drop.
    pub max_queue_delay: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            propagation: Duration::from_millis(20),
            jitter_max: Duration::from_millis(2),
            loss_rate: 0.0,
            max_queue_delay: Duration::from_millis(200),
        }
    }
}

/// The outcome of offering a packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered at the given time.
    At(SimTime),
    /// Dropped: queue overflow.
    QueueDrop,
    /// Dropped: random loss.
    Lost,
}

/// A snapshot of a link's counters (see [`Link::stats`]).
///
/// The counters follow the packet's path through [`Link::transmit`],
/// whose ordering is part of the model's contract:
///
/// 1. **Queue admission.** A packet that would wait longer than the
///    configured `max_queue_delay` is rejected *before* touching the
///    wire: it counts as a `queue_drop`, is **not** admitted, and
///    consumes no serialization time (the sender can react to this
///    backpressure).
/// 2. **Wire occupancy.** An admitted packet counts toward `admitted`
///    / `bytes_admitted` and occupies the link for its serialization
///    time — *even if it is subsequently lost*: channel loss destroys
///    packets that were really sent.
/// 3. **Channel loss.** After admission, the loss process (the
///    config's Bernoulli rate and/or an installed [`FaultClock`])
///    decides the packet's fate. A casualty counts as a `loss_drop`:
///    admitted, paid for on the wire, never delivered.
/// 4. **Delivery.** Survivors count toward `delivered` /
///    `bytes_delivered`.
///
/// Invariants: `admitted == delivered + loss_drops` and every offered
/// packet is exactly one of admitted or queue-dropped. Queue drops and
/// channel losses stay separate because conflating congestion (which
/// the sender could avoid) with noise (which it cannot) hides which
/// one is killing a session; `bytes_admitted - bytes_delivered` is the
/// wire capacity wasted on doomed packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets admitted to the wire (delivered or lost in flight).
    pub admitted: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped at the tail of the queue (congestion; never
    /// admitted, never on the wire).
    pub queue_drops: u64,
    /// Packets lost to channel loss *after* admission (they occupied
    /// the wire for their full serialization time).
    pub loss_drops: u64,
    /// Payload+header bytes admitted to the wire.
    pub bytes_admitted: u64,
    /// Payload+header bytes delivered.
    pub bytes_delivered: u64,
}

impl LinkStats {
    /// Total drops, both causes.
    pub fn dropped(&self) -> u64 {
        self.queue_drops + self.loss_drops
    }

    /// Packets offered to the link (admitted + rejected at the queue).
    pub fn offered(&self) -> u64 {
        self.admitted + self.queue_drops
    }
}

/// A unidirectional bottleneck link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters.
    pub config: LinkConfig,
    /// Capacity trace.
    pub trace: BandwidthTrace,
    busy_until: SimTime,
    rng: Pcg32,
    stats: LinkStats,
    fault: Option<FaultClock>,
}

impl Link {
    /// Build a link.
    pub fn new(config: LinkConfig, trace: BandwidthTrace, seed: u64) -> Self {
        Self {
            config,
            trace,
            busy_until: SimTime::ZERO,
            rng: Pcg32::new(seed),
            stats: LinkStats::default(),
            fault: None,
        }
    }

    /// Install a [`FaultClock`]: its loss process, bandwidth scales,
    /// delay spikes, and outages apply on top of the link's own config
    /// from the next [`transmit`](Self::transmit) on. The clock owns
    /// its own RNG, so the link's jitter/loss draws are unperturbed —
    /// a faulted run and its clean twin stay comparable packet for
    /// packet.
    pub fn set_fault(&mut self, clock: FaultClock) {
        self.fault = Some(clock);
    }

    /// The installed fault clock, if any.
    pub fn fault(&self) -> Option<&FaultClock> {
        self.fault.as_ref()
    }

    /// Roll the installed clock's payload-corruption process for one
    /// delivered frame at `at` (see [`FaultClock::corrupt_roll`]).
    /// `None` when no clock is installed or the frame survives intact.
    pub fn corrupt_roll(&mut self, at: SimTime) -> Option<u64> {
        self.fault.as_mut().and_then(|c| c.corrupt_roll(at))
    }

    /// Capacity actually available at `t` seconds: the trace rate
    /// scaled by any active fault-window bandwidth drop.
    pub fn effective_bps_at(&self, t: f64) -> f64 {
        let scale = self
            .fault
            .as_ref()
            .map_or(1.0, |c| c.bandwidth_scale(SimTime::from_secs_f64(t)));
        self.trace.bps_at(t) * scale
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Current queueing delay if a packet were offered at `now`.
    pub fn queue_delay(&self, now: SimTime) -> Duration {
        self.busy_until.saturating_since(now)
    }

    /// Offer a packet of `wire_bytes` at time `now`.
    ///
    /// Stage order (see [`LinkStats`] for the counter contract): queue
    /// admission first (a rejection is never admitted and consumes no
    /// wire time), then the admitted packet occupies the wire for its
    /// serialization time, then channel loss — the link's Bernoulli
    /// rate and any installed [`FaultClock`] — decides whether the
    /// packet that was really sent also arrives.
    pub fn transmit(&mut self, wire_bytes: usize, now: SimTime) -> Delivery {
        let start = self.busy_until.max(now);
        let queue_delay = start - now;
        if queue_delay > self.config.max_queue_delay {
            self.stats.queue_drops += 1;
            holo_trace::counter("link.queue_drops", 1);
            return Delivery::QueueDrop;
        }
        let scale = self.fault.as_ref().map_or(1.0, |c| c.bandwidth_scale(start));
        let rate = (self.trace.bps_at(start.as_secs_f64()) * scale).max(1.0);
        let serialization = Duration::from_secs_f64(wire_bytes as f64 * 8.0 / rate);
        self.busy_until = start + serialization;
        self.stats.admitted += 1;
        self.stats.bytes_admitted += wire_bytes as u64;
        let channel_loss =
            self.config.loss_rate > 0.0 && self.rng.chance(self.config.loss_rate);
        let injected_loss = match &mut self.fault {
            // The clock rolls even when the packet is already doomed:
            // its chain must advance exactly once per admitted packet
            // for (seed, plan) reproducibility.
            Some(clock) => clock.loss_roll(start),
            None => false,
        };
        if channel_loss || injected_loss {
            self.stats.loss_drops += 1;
            holo_trace::counter("link.loss_drops", 1);
            return Delivery::Lost;
        }
        let jitter = if self.config.jitter_max.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.rng.next_f32() as f64 * self.config.jitter_max.as_secs_f64())
        };
        let extra = self.fault.as_ref().map_or(Duration::ZERO, |c| c.extra_delay(start));
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        if holo_trace::enabled() {
            holo_trace::counter("link.delivered", 1);
            holo_trace::counter("link.bytes_delivered", wire_bytes as u64);
        }
        Delivery::At(self.busy_until + self.config.propagation + jitter + extra)
    }

    /// Achieved goodput over an interval, bps.
    pub fn goodput_bps(&self, duration: Duration) -> f64 {
        self.stats.bytes_delivered as f64 * 8.0 / duration.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(bps: f64) -> Link {
        Link::new(
            LinkConfig { jitter_max: Duration::ZERO, ..Default::default() },
            BandwidthTrace::Constant { bps },
            1,
        )
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_propagation() {
        let mut link = quiet_link(8e6); // 1 MB/s
        let d = link.transmit(1000, SimTime::ZERO);
        // 1000 B at 8 Mbps = 1 ms; + 20 ms propagation.
        match d {
            Delivery::At(t) => {
                assert!((t.as_millis_f64() - 21.0).abs() < 0.1, "latency {}", t.as_millis_f64())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = quiet_link(8e6);
        let a = link.transmit(1000, SimTime::ZERO);
        let b = link.transmit(1000, SimTime::ZERO);
        let (Delivery::At(ta), Delivery::At(tb)) = (a, b) else {
            panic!("drops on empty link");
        };
        assert!((tb.as_millis_f64() - ta.as_millis_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = quiet_link(1e6); // slow: 8 ms per KB
        let mut drops = 0;
        for _ in 0..100 {
            if link.transmit(1000, SimTime::ZERO) == Delivery::QueueDrop {
                drops += 1;
            }
        }
        // 200 ms queue limit / 8 ms per packet = ~25 accepted.
        assert!(drops > 60, "drops {drops}");
        let stats = link.stats();
        assert_eq!(stats.queue_drops as usize, drops);
        assert_eq!(stats.loss_drops, 0, "no random loss configured");
        assert_eq!(stats.dropped() as usize, drops);
        // Queue drops are never admitted: no wire bytes were spent.
        assert_eq!(stats.admitted, stats.delivered);
        assert_eq!(stats.bytes_admitted, stats.bytes_delivered);
        assert_eq!(stats.offered(), 100);
    }

    #[test]
    fn stats_distinguish_drop_causes() {
        // Lossy but uncongested: every drop must be a loss_drop.
        let mut lossy = Link::new(
            LinkConfig { loss_rate: 0.2, max_queue_delay: Duration::from_secs(100), ..Default::default() },
            BandwidthTrace::Constant { bps: 1e9 },
            11,
        );
        for i in 0..500 {
            lossy.transmit(500, SimTime::from_millis(i));
        }
        let s = lossy.stats();
        assert!(s.loss_drops > 0);
        assert_eq!(s.queue_drops, 0);
        assert_eq!(s.delivered + s.dropped(), 500);
        assert_eq!(s.bytes_delivered, s.delivered * 500);
        // Channel losses happen *after* admission: the lost packets
        // were on the wire and their bytes were paid for.
        assert_eq!(s.admitted, s.delivered + s.loss_drops);
        assert_eq!(s.admitted, 500);
        assert_eq!(s.bytes_admitted, 500 * 500);
        assert!(s.bytes_admitted > s.bytes_delivered, "doomed packets still cost wire bytes");
    }

    #[test]
    fn random_loss_rate_approximated() {
        let mut link = Link::new(
            LinkConfig { loss_rate: 0.1, max_queue_delay: Duration::from_secs(100), ..Default::default() },
            BandwidthTrace::Constant { bps: 1e9 },
            7,
        );
        let mut lost = 0;
        for i in 0..5000 {
            if link.transmit(100, SimTime::from_millis(i)) == Delivery::Lost {
                lost += 1;
            }
        }
        let rate = lost as f32 / 5000.0;
        assert!((rate - 0.1).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn trace_rate_changes_serialization() {
        let trace = BandwidthTrace::Steps { steps: vec![(0.0, 8e6), (1.0, 0.8e6)] };
        let mut link = Link::new(
            LinkConfig { jitter_max: Duration::ZERO, ..Default::default() },
            trace,
            1,
        );
        let Delivery::At(fast) = link.transmit(1000, SimTime::ZERO) else { panic!() };
        let mut link2 = link.clone();
        let Delivery::At(slow) = link2.transmit(1000, SimTime::from_secs_f64(1.0)) else { panic!() };
        let fast_ser = fast.as_millis_f64() - 20.0;
        let slow_ser = slow.as_millis_f64() - 1000.0 - 20.0;
        assert!((slow_ser / fast_ser - 10.0).abs() < 0.5, "fast {fast_ser} slow {slow_ser}");
    }

    #[test]
    fn fault_clock_outage_and_recovery() {
        use crate::fault::{FaultClock, FaultEffect, FaultSegment};
        let mut link = quiet_link(8e6);
        link.set_fault(FaultClock::new(
            None,
            vec![FaultSegment {
                from: SimTime::from_millis(100),
                until: SimTime::from_millis(200),
                effect: FaultEffect::LinkDown,
            }],
            5,
        ));
        assert!(matches!(link.transmit(100, SimTime::from_millis(50)), Delivery::At(_)));
        assert_eq!(link.transmit(100, SimTime::from_millis(150)), Delivery::Lost);
        assert!(matches!(link.transmit(100, SimTime::from_millis(250)), Delivery::At(_)));
        let s = link.stats();
        assert_eq!((s.admitted, s.delivered, s.loss_drops), (3, 2, 1));
        assert_eq!(link.fault().unwrap().injected_drops, 1);
    }

    #[test]
    fn fault_clock_scales_bandwidth_and_adds_delay() {
        use crate::fault::{FaultClock, FaultEffect, FaultSegment};
        let mut link = quiet_link(8e6); // 1 ms per KB, 20 ms propagation
        link.set_fault(FaultClock::new(
            None,
            vec![
                FaultSegment {
                    from: SimTime::from_secs_f64(1.0),
                    until: SimTime::from_secs_f64(2.0),
                    effect: FaultEffect::BandwidthScale(0.1),
                },
                FaultSegment {
                    from: SimTime::from_secs_f64(3.0),
                    until: SimTime::from_secs_f64(4.0),
                    effect: FaultEffect::ExtraDelay(Duration::from_millis(40)),
                },
            ],
            5,
        ));
        let Delivery::At(clean) = link.transmit(1000, SimTime::ZERO) else { panic!() };
        assert!((clean.as_millis_f64() - 21.0).abs() < 0.1);
        // Inside the bandwidth drop: serialization is 10x slower.
        let Delivery::At(slow) = link.transmit(1000, SimTime::from_secs_f64(1.5)) else { panic!() };
        assert!((slow.as_millis_f64() - 1500.0 - 30.0).abs() < 0.2, "slow {}", slow.as_millis_f64());
        assert!((link.effective_bps_at(1.5) - 0.8e6).abs() < 1.0);
        assert_eq!(link.effective_bps_at(2.5), 8e6);
        // Inside the delay spike: +40 ms one-way.
        let Delivery::At(spiked) = link.transmit(1000, SimTime::from_secs_f64(3.5)) else { panic!() };
        assert!((spiked.as_millis_f64() - 3500.0 - 61.0).abs() < 0.2, "spiked {}", spiked.as_millis_f64());
    }

    #[test]
    fn installing_an_idle_fault_clock_changes_nothing() {
        use crate::fault::FaultClock;
        let mut plain = Link::new(
            LinkConfig { loss_rate: 0.1, ..Default::default() },
            BandwidthTrace::Constant { bps: 8e6 },
            21,
        );
        let mut faulted = plain.clone();
        faulted.set_fault(FaultClock::idle(99));
        for i in 0..200 {
            let now = SimTime::from_millis(i * 5);
            assert_eq!(plain.transmit(700, now), faulted.transmit(700, now));
        }
        assert_eq!(plain.stats(), faulted.stats());
    }

    #[test]
    fn idle_link_has_no_queue() {
        let mut link = quiet_link(1e6);
        assert_eq!(link.queue_delay(SimTime::ZERO), Duration::ZERO);
        link.transmit(10_000, SimTime::ZERO);
        assert!(link.queue_delay(SimTime::ZERO) > Duration::ZERO);
        // After the queue drains, it's idle again.
        assert_eq!(link.queue_delay(SimTime::from_secs_f64(10.0)), Duration::ZERO);
    }
}
