//! The bottleneck link model.
//!
//! A single-server fluid queue: packets serialize at the trace's current
//! rate, wait behind earlier packets (tail-drop beyond the configured
//! queue depth), then experience propagation delay, jitter, and random
//! loss. This is the standard bottleneck abstraction for application-
//! level streaming studies; everything is virtual-time and seeded.

use crate::time::SimTime;
use crate::trace::BandwidthTrace;
use holo_math::Pcg32;
use std::time::Duration;

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Uniform jitter added on top of propagation, max.
    pub jitter_max: Duration,
    /// Random packet loss probability.
    pub loss_rate: f32,
    /// Maximum queueing delay before tail drop.
    pub max_queue_delay: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            propagation: Duration::from_millis(20),
            jitter_max: Duration::from_millis(2),
            loss_rate: 0.0,
            max_queue_delay: Duration::from_millis(200),
        }
    }
}

/// The outcome of offering a packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered at the given time.
    At(SimTime),
    /// Dropped: queue overflow.
    QueueDrop,
    /// Dropped: random loss.
    Lost,
}

/// A snapshot of a link's counters (see [`Link::stats`]). Queue drops
/// and random losses are counted separately: a [`Delivery::QueueDrop`]
/// is congestion (backpressure the sender could react to), a
/// [`Delivery::Lost`] is channel noise, and conflating them hides
/// which one is killing a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped at the tail of the queue (congestion).
    pub queue_drops: u64,
    /// Packets lost to random channel loss.
    pub loss_drops: u64,
    /// Payload+header bytes delivered.
    pub bytes_delivered: u64,
}

impl LinkStats {
    /// Total drops, both causes.
    pub fn dropped(&self) -> u64 {
        self.queue_drops + self.loss_drops
    }
}

/// A unidirectional bottleneck link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters.
    pub config: LinkConfig,
    /// Capacity trace.
    pub trace: BandwidthTrace,
    busy_until: SimTime,
    rng: Pcg32,
    stats: LinkStats,
}

impl Link {
    /// Build a link.
    pub fn new(config: LinkConfig, trace: BandwidthTrace, seed: u64) -> Self {
        Self {
            config,
            trace,
            busy_until: SimTime::ZERO,
            rng: Pcg32::new(seed),
            stats: LinkStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Current queueing delay if a packet were offered at `now`.
    pub fn queue_delay(&self, now: SimTime) -> Duration {
        self.busy_until.saturating_since(now)
    }

    /// Offer a packet of `wire_bytes` at time `now`.
    pub fn transmit(&mut self, wire_bytes: usize, now: SimTime) -> Delivery {
        let start = self.busy_until.max(now);
        let queue_delay = start - now;
        if queue_delay > self.config.max_queue_delay {
            self.stats.queue_drops += 1;
            holo_trace::counter("link.queue_drops", 1);
            return Delivery::QueueDrop;
        }
        let rate = self.trace.bps_at(start.as_secs_f64()).max(1.0);
        let serialization = Duration::from_secs_f64(wire_bytes as f64 * 8.0 / rate);
        self.busy_until = start + serialization;
        if self.config.loss_rate > 0.0 && self.rng.chance(self.config.loss_rate) {
            self.stats.loss_drops += 1;
            holo_trace::counter("link.loss_drops", 1);
            return Delivery::Lost;
        }
        let jitter = if self.config.jitter_max.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.rng.next_f32() as f64 * self.config.jitter_max.as_secs_f64())
        };
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        if holo_trace::enabled() {
            holo_trace::counter("link.delivered", 1);
            holo_trace::counter("link.bytes_delivered", wire_bytes as u64);
        }
        Delivery::At(self.busy_until + self.config.propagation + jitter)
    }

    /// Achieved goodput over an interval, bps.
    pub fn goodput_bps(&self, duration: Duration) -> f64 {
        self.stats.bytes_delivered as f64 * 8.0 / duration.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(bps: f64) -> Link {
        Link::new(
            LinkConfig { jitter_max: Duration::ZERO, ..Default::default() },
            BandwidthTrace::Constant { bps },
            1,
        )
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_propagation() {
        let mut link = quiet_link(8e6); // 1 MB/s
        let d = link.transmit(1000, SimTime::ZERO);
        // 1000 B at 8 Mbps = 1 ms; + 20 ms propagation.
        match d {
            Delivery::At(t) => {
                assert!((t.as_millis_f64() - 21.0).abs() < 0.1, "latency {}", t.as_millis_f64())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = quiet_link(8e6);
        let a = link.transmit(1000, SimTime::ZERO);
        let b = link.transmit(1000, SimTime::ZERO);
        let (Delivery::At(ta), Delivery::At(tb)) = (a, b) else {
            panic!("drops on empty link");
        };
        assert!((tb.as_millis_f64() - ta.as_millis_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = quiet_link(1e6); // slow: 8 ms per KB
        let mut drops = 0;
        for _ in 0..100 {
            if link.transmit(1000, SimTime::ZERO) == Delivery::QueueDrop {
                drops += 1;
            }
        }
        // 200 ms queue limit / 8 ms per packet = ~25 accepted.
        assert!(drops > 60, "drops {drops}");
        let stats = link.stats();
        assert_eq!(stats.queue_drops as usize, drops);
        assert_eq!(stats.loss_drops, 0, "no random loss configured");
        assert_eq!(stats.dropped() as usize, drops);
    }

    #[test]
    fn stats_distinguish_drop_causes() {
        // Lossy but uncongested: every drop must be a loss_drop.
        let mut lossy = Link::new(
            LinkConfig { loss_rate: 0.2, max_queue_delay: Duration::from_secs(100), ..Default::default() },
            BandwidthTrace::Constant { bps: 1e9 },
            11,
        );
        for i in 0..500 {
            lossy.transmit(500, SimTime::from_millis(i));
        }
        let s = lossy.stats();
        assert!(s.loss_drops > 0);
        assert_eq!(s.queue_drops, 0);
        assert_eq!(s.delivered + s.dropped(), 500);
        assert_eq!(s.bytes_delivered, s.delivered * 500);
    }

    #[test]
    fn random_loss_rate_approximated() {
        let mut link = Link::new(
            LinkConfig { loss_rate: 0.1, max_queue_delay: Duration::from_secs(100), ..Default::default() },
            BandwidthTrace::Constant { bps: 1e9 },
            7,
        );
        let mut lost = 0;
        for i in 0..5000 {
            if link.transmit(100, SimTime::from_millis(i)) == Delivery::Lost {
                lost += 1;
            }
        }
        let rate = lost as f32 / 5000.0;
        assert!((rate - 0.1).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn trace_rate_changes_serialization() {
        let trace = BandwidthTrace::Steps { steps: vec![(0.0, 8e6), (1.0, 0.8e6)] };
        let mut link = Link::new(
            LinkConfig { jitter_max: Duration::ZERO, ..Default::default() },
            trace,
            1,
        );
        let Delivery::At(fast) = link.transmit(1000, SimTime::ZERO) else { panic!() };
        let mut link2 = link.clone();
        let Delivery::At(slow) = link2.transmit(1000, SimTime::from_secs_f64(1.0)) else { panic!() };
        let fast_ser = fast.as_millis_f64() - 20.0;
        let slow_ser = slow.as_millis_f64() - 1000.0 - 20.0;
        assert!((slow_ser / fast_ser - 10.0).abs() < 0.5, "fast {fast_ser} slow {slow_ser}");
    }

    #[test]
    fn idle_link_has_no_queue() {
        let mut link = quiet_link(1e6);
        assert_eq!(link.queue_delay(SimTime::ZERO), Duration::ZERO);
        link.transmit(10_000, SimTime::ZERO);
        assert!(link.queue_delay(SimTime::ZERO) > Duration::ZERO);
        // After the queue drains, it's idle again.
        assert_eq!(link.queue_delay(SimTime::from_secs_f64(10.0)), Duration::ZERO);
    }
}
