//! The versioned, checksummed wire envelope every hop speaks.
//!
//! A [`WireFrame`] wraps one semantic payload (a mesh stream, a pose
//! delta, a caption, …) in a fixed header — magic, version, payload
//! kind, sequence number, length, CRC32 — so a receiver can tell
//! *before decoding* whether the bytes it holds are the bytes that were
//! sent. The paper's semantic payloads are compact and structure-heavy:
//! one flipped bit in a range-coded mesh stream silently reshapes a
//! whole avatar, which is why the envelope checksums every payload and
//! [`Session`]/the SFU treat a failed check as a *detected loss* the
//! resilience layer (retransmit / FEC / ladder) can then repair.
//!
//! The CRC32 is the IEEE 802.3 polynomial, computed in-tree (the
//! workspace is hermetic) with a table-driven implementation. CRC32
//! detects all single-bit and all two-bit errors at these frame sizes,
//! and any burst up to 32 bits — exactly the corruption classes
//! `holo-chaos`'s `PayloadCorrupt` fault injects.
//!
//! [`Session`]: ../../semholo/session/struct.Session.html

use holo_runtime::bytes::Bytes;
use holo_runtime::ser::{ByteReader, DecodeError};

/// Envelope magic: `"HOLO"` little-endian.
pub const WIRE_MAGIC: u32 = 0x4F4C_4F48;

/// Current envelope version.
pub const WIRE_VERSION: u8 = 1;

/// Fixed envelope header size: magic(4) + version(1) + kind(1) +
/// seq(8) + len(4) + crc(4).
pub const WIRE_HEADER_BYTES: usize = 22;

/// Largest payload the envelope will carry (64 MiB). A length field
/// beyond this is rejected before any allocation.
pub const MAX_WIRE_PAYLOAD: usize = 64 << 20;

/// What kind of semantic payload an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// Compressed/raw mesh geometry.
    Mesh = 0,
    /// Keypoint / pose-delta payloads.
    Keypoints = 1,
    /// Image-pipeline payloads (textures, NeRF latents).
    Image = 2,
    /// Text-semantics payloads (captions, token streams).
    Text = 3,
    /// Control / unclassified payloads.
    Control = 4,
    /// Gaussian-avatar per-frame update payloads (pose + region deltas
    /// conditioning a prebuilt splat avatar).
    GaussianUpdate = 5,
}

impl PayloadKind {
    /// Parse the wire tag byte.
    pub fn from_byte(b: u8) -> Result<Self, DecodeError> {
        match b {
            0 => Ok(PayloadKind::Mesh),
            1 => Ok(PayloadKind::Keypoints),
            2 => Ok(PayloadKind::Image),
            3 => Ok(PayloadKind::Text),
            4 => Ok(PayloadKind::Control),
            5 => Ok(PayloadKind::GaussianUpdate),
            other => {
                Err(DecodeError::corrupt("wire kind", format!("unknown payload kind {other}")))
            }
        }
    }

    /// Stable lowercase label (report keys, counters).
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::Mesh => "mesh",
            PayloadKind::Keypoints => "keypoints",
            PayloadKind::Image => "image",
            PayloadKind::Text => "text",
            PayloadKind::Control => "control",
            PayloadKind::GaussianUpdate => "gaussian-update",
        }
    }
}

/// IEEE CRC32 (reflected polynomial `0xEDB88320`), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc
}

/// CRC32 over the concatenation of `parts` (no intermediate buffer).
pub fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        crc = crc32_update(crc, part);
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// One framed payload: the unit `Session` and the SFU put on every hop.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// What the payload is.
    pub kind: PayloadKind,
    /// Sender-assigned sequence number.
    pub seq: u64,
    /// The semantic payload.
    pub payload: Bytes,
}

impl WireFrame {
    /// Frame a payload.
    pub fn new(kind: PayloadKind, seq: u64, payload: Bytes) -> Self {
        Self { kind, seq, payload }
    }

    /// Total bytes on the wire for a payload of `payload_bytes`.
    pub fn wire_bytes(payload_bytes: usize) -> usize {
        WIRE_HEADER_BYTES + payload_bytes
    }

    /// Serialize header + payload. The CRC covers everything after the
    /// magic — version, kind, seq, length, payload — so a flipped bit
    /// anywhere in the frame fails the check (a kind tag silently
    /// morphing into another valid tag is exactly the failure mode an
    /// uncovered header would allow).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let crc = crc32_concat(&[&out[4..WIRE_HEADER_BYTES - 4], self.payload.as_ref()]);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(self.payload.as_ref());
        out
    }

    /// Parse and verify an envelope. Any truncation, unknown version or
    /// kind, length mismatch, or checksum failure is a typed error —
    /// never a panic, never an allocation beyond the input's own size.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(data);
        r.expect_magic(WIRE_MAGIC)?;
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(DecodeError::corrupt(
                "wire version",
                format!("version {version} not supported (current {WIRE_VERSION})"),
            ));
        }
        let kind = PayloadKind::from_byte(r.u8()?)?;
        let seq = r.u64_le()?;
        let len = r.u32_le()? as usize;
        if len > MAX_WIRE_PAYLOAD {
            return Err(DecodeError::LimitExceeded {
                what: "wire payload",
                requested: len as u64,
                limit: MAX_WIRE_PAYLOAD as u64,
            });
        }
        let declared_crc = r.u32_le()?;
        let payload = r.take(len)?;
        if !r.is_empty() {
            return Err(DecodeError::corrupt(
                "wire frame",
                format!("{} trailing bytes after payload", r.remaining()),
            ));
        }
        let actual_crc = crc32_concat(&[&data[4..WIRE_HEADER_BYTES - 4], payload]);
        if actual_crc != declared_crc {
            return Err(DecodeError::BadChecksum { expected: declared_crc, found: actual_crc });
        }
        Ok(Self { kind, seq, payload: Bytes::copy_from_slice(payload) })
    }
}

/// Semantic importance of one frame, as the unequal-protection
/// scheduler (`holo-uep`) sees it. Lower discriminant = more
/// important: the class decides how much of the fixed redundancy
/// budget (FEC parity, retransmission slots) a frame may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImportanceClass {
    /// Keyframes and chain-resetting payloads: losing one poisons a
    /// whole GOP.
    Critical = 0,
    /// Early deltas (most of the GOP still depends on them) and pose
    /// channels.
    High = 1,
    /// Mid-GOP deltas: a loss poisons a bounded tail.
    Medium = 2,
    /// Deep deltas nothing depends on: stale the moment their render
    /// deadline passes.
    Low = 3,
}

impl ImportanceClass {
    /// Parse the wire tag byte.
    pub fn from_byte(b: u8) -> Result<Self, DecodeError> {
        match b {
            0 => Ok(ImportanceClass::Critical),
            1 => Ok(ImportanceClass::High),
            2 => Ok(ImportanceClass::Medium),
            3 => Ok(ImportanceClass::Low),
            other => Err(DecodeError::corrupt(
                "uep class",
                format!("unknown importance class {other}"),
            )),
        }
    }

    /// Stable lowercase label (report keys, counters).
    pub fn name(self) -> &'static str {
        match self {
            ImportanceClass::Critical => "critical",
            ImportanceClass::High => "high",
            ImportanceClass::Medium => "medium",
            ImportanceClass::Low => "low",
        }
    }

    /// All classes, most important first.
    pub const ALL: [ImportanceClass; 4] = [
        ImportanceClass::Critical,
        ImportanceClass::High,
        ImportanceClass::Medium,
        ImportanceClass::Low,
    ];
}

/// UEP header magic: `"UEP1"` little-endian.
pub const UEP_MAGIC: u32 = 0x3150_4555;

/// Fixed UEP header size: magic(4) + class(1) + flags(1) + k(1) +
/// r(1) + group(4) + index(1) + deadline_ms(2) + crc(4).
pub const UEP_HEADER_BYTES: usize = 19;

/// Flag bit: this frame is FEC parity, not data.
const UEP_FLAG_PARITY: u8 = 0b01;
/// Flag bit: retransmissions of this frame may be abandoned once its
/// render deadline (plus its descendants') has passed.
const UEP_FLAG_ABANDONABLE: u8 = 0b10;

/// The wire-visible class/stripe header the unequal-protection
/// scheduler prepends to every protected frame. It tells any hop —
/// without decoding the payload — which importance class the frame
/// belongs to, which per-class FEC group and stripe slot it occupies,
/// and whether the sender considers it abandonable past its deadline.
///
/// Strict codec in the `WireFrame` mould: its own magic, every field
/// covered by a CRC32 (so a single flipped bit anywhere is detected),
/// typed errors for truncation/corruption, trailing bytes rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UepHeader {
    /// Importance class of the frame.
    pub class: ImportanceClass,
    /// Whether this frame is FEC parity for its group.
    pub parity: bool,
    /// Whether retransmissions may be abandoned past the deadline.
    pub abandonable: bool,
    /// Data frames per FEC group of this class (`>= 1`).
    pub k: u8,
    /// Parity frames per FEC group (`<= k`; 0 = unprotected class).
    pub r: u8,
    /// FEC group number within the class's stream.
    pub group: u32,
    /// Position within the group: `< k` for data, `< max(r, 1)` for
    /// parity.
    pub index: u8,
    /// Render deadline, ms after capture (0 = no deadline).
    pub deadline_ms: u16,
}

impl UepHeader {
    fn flags(&self) -> u8 {
        (if self.parity { UEP_FLAG_PARITY } else { 0 })
            | (if self.abandonable { UEP_FLAG_ABANDONABLE } else { 0 })
    }

    /// Serialize the 19-byte header. The CRC covers everything after
    /// the magic, so no field can silently morph into another valid
    /// value.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(UEP_HEADER_BYTES);
        out.extend_from_slice(&UEP_MAGIC.to_le_bytes());
        out.push(self.class as u8);
        out.push(self.flags());
        out.push(self.k);
        out.push(self.r);
        out.extend_from_slice(&self.group.to_le_bytes());
        out.push(self.index);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and verify a header. Checksum first, semantics second:
    /// a corrupted-but-plausible field never reaches the range checks.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut rd = ByteReader::new(data);
        rd.expect_magic(UEP_MAGIC)?;
        let class_byte = rd.u8()?;
        let flags = rd.u8()?;
        let k = rd.u8()?;
        let r = rd.u8()?;
        let group = rd.u32_le()?;
        let index = rd.u8()?;
        let deadline_ms = rd.u16_le()?;
        let declared_crc = rd.u32_le()?;
        if !rd.is_empty() {
            return Err(DecodeError::corrupt(
                "uep header",
                format!("{} trailing bytes after header", rd.remaining()),
            ));
        }
        let actual_crc = crc32(&data[4..UEP_HEADER_BYTES - 4]);
        if actual_crc != declared_crc {
            return Err(DecodeError::BadChecksum { expected: declared_crc, found: actual_crc });
        }
        let class = ImportanceClass::from_byte(class_byte)?;
        if flags & !(UEP_FLAG_PARITY | UEP_FLAG_ABANDONABLE) != 0 {
            return Err(DecodeError::corrupt(
                "uep flags",
                format!("unknown flag bits 0x{flags:02x}"),
            ));
        }
        let parity = flags & UEP_FLAG_PARITY != 0;
        let abandonable = flags & UEP_FLAG_ABANDONABLE != 0;
        if k == 0 {
            return Err(DecodeError::corrupt("uep fec", "k must be >= 1".to_string()));
        }
        if r > k {
            return Err(DecodeError::corrupt(
                "uep fec",
                format!("parity count r={r} exceeds group size k={k}"),
            ));
        }
        if parity && r == 0 {
            return Err(DecodeError::corrupt(
                "uep fec",
                "parity frame in an unprotected (r=0) class".to_string(),
            ));
        }
        let slot_limit = if parity { r.max(1) } else { k };
        if index >= slot_limit {
            return Err(DecodeError::corrupt(
                "uep stripe",
                format!("index {index} out of range for {} slot limit {slot_limit}",
                    if parity { "parity" } else { "data" }),
            ));
        }
        Ok(Self { class, parity, abandonable, k, r, group, index, deadline_ms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let frame = WireFrame::new(
            PayloadKind::Keypoints,
            42,
            Bytes::copy_from_slice(b"pose payload bytes"),
        );
        let wire = frame.encode();
        assert_eq!(wire.len(), WireFrame::wire_bytes(frame.payload.len()));
        let back = WireFrame::decode(&wire).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = WireFrame::new(PayloadKind::Control, 0, Bytes::new());
        let back = WireFrame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame =
            WireFrame::new(PayloadKind::Mesh, 7, Bytes::copy_from_slice(&[0xAB; 64]));
        let wire = frame.encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut corrupted = wire.clone();
                corrupted[byte] ^= 1 << bit;
                let got = WireFrame::decode(&corrupted);
                assert!(
                    got.is_err(),
                    "flip at byte {byte} bit {bit} went undetected: {got:?}"
                );
            }
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let wire =
            WireFrame::new(PayloadKind::Text, 1, Bytes::copy_from_slice(b"caption")).encode();
        for cut in 0..wire.len() {
            let err = WireFrame::decode(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire =
            WireFrame::new(PayloadKind::Image, 3, Bytes::copy_from_slice(&[1, 2, 3])).encode();
        // Inflate the length field (offset 14) to beyond the cap.
        wire[14..18].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = WireFrame::decode(&wire).unwrap_err();
        assert!(matches!(err, DecodeError::LimitExceeded { .. }), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut wire =
            WireFrame::new(PayloadKind::Mesh, 9, Bytes::copy_from_slice(&[5; 10])).encode();
        wire.push(0);
        let err = WireFrame::decode(&wire).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt { .. }), "{err:?}");
    }

    fn sample_uep() -> UepHeader {
        UepHeader {
            class: ImportanceClass::High,
            parity: false,
            abandonable: false,
            k: 3,
            r: 1,
            group: 12,
            index: 2,
            deadline_ms: 150,
        }
    }

    #[test]
    fn uep_header_roundtrips() {
        let cases = [
            sample_uep(),
            UepHeader {
                class: ImportanceClass::Critical,
                parity: true,
                abandonable: false,
                k: 1,
                r: 1,
                group: 0,
                index: 0,
                deadline_ms: 150,
            },
            UepHeader {
                class: ImportanceClass::Low,
                parity: false,
                abandonable: true,
                k: 10,
                r: 0,
                group: u32::MAX,
                index: 9,
                deadline_ms: 0,
            },
        ];
        for h in cases {
            let wire = h.encode();
            assert_eq!(wire.len(), UEP_HEADER_BYTES);
            assert_eq!(UepHeader::decode(&wire).unwrap(), h);
        }
    }

    #[test]
    fn uep_every_single_bit_flip_is_detected() {
        let wire = sample_uep().encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut corrupted = wire.clone();
                corrupted[byte] ^= 1 << bit;
                let got = UepHeader::decode(&corrupted);
                assert!(
                    got.is_err(),
                    "flip at byte {byte} bit {bit} went undetected: {got:?}"
                );
            }
        }
    }

    #[test]
    fn uep_truncations_are_typed_errors() {
        let wire = sample_uep().encode();
        for cut in 0..wire.len() {
            let err = UepHeader::decode(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn uep_trailing_bytes_are_rejected() {
        let mut wire = sample_uep().encode();
        wire.push(0);
        let err = UepHeader::decode(&wire).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn uep_semantic_garbage_is_rejected_after_the_checksum() {
        // Re-CRC'd headers with in-range bytes but out-of-range
        // semantics: the decoder must reject each with a typed error.
        let reseal = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut wire = sample_uep().encode();
            mutate(&mut wire);
            let crc = crc32(&wire[4..UEP_HEADER_BYTES - 4]);
            wire[UEP_HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
            UepHeader::decode(&wire).unwrap_err()
        };
        // Unknown class.
        assert!(matches!(reseal(&|w| w[4] = 9), DecodeError::Corrupt { .. }));
        // Unknown flag bits.
        assert!(matches!(reseal(&|w| w[5] = 0x80), DecodeError::Corrupt { .. }));
        // k = 0.
        assert!(matches!(reseal(&|w| w[6] = 0), DecodeError::Corrupt { .. }));
        // r > k.
        assert!(matches!(reseal(&|w| w[7] = 200), DecodeError::Corrupt { .. }));
        // Data index out of range (k=3 -> index must be < 3).
        assert!(matches!(reseal(&|w| w[12] = 3), DecodeError::Corrupt { .. }));
        // Parity frame in an unprotected class (flags=parity, r=0).
        assert!(matches!(
            reseal(&|w| {
                w[5] = 0b01;
                w[7] = 0;
            }),
            DecodeError::Corrupt { .. }
        ));
    }

    #[test]
    fn importance_classes_roundtrip_and_order() {
        for class in ImportanceClass::ALL {
            assert_eq!(ImportanceClass::from_byte(class as u8).unwrap(), class);
            assert!(!class.name().is_empty());
        }
        assert!(ImportanceClass::from_byte(4).is_err());
        // Lower discriminant = more important; Ord follows the wire tag.
        assert!(ImportanceClass::Critical < ImportanceClass::High);
        assert!(ImportanceClass::High < ImportanceClass::Medium);
        assert!(ImportanceClass::Medium < ImportanceClass::Low);
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in [
            PayloadKind::Mesh,
            PayloadKind::Keypoints,
            PayloadKind::Image,
            PayloadKind::Text,
            PayloadKind::Control,
            PayloadKind::GaussianUpdate,
        ] {
            assert_eq!(PayloadKind::from_byte(kind as u8).unwrap(), kind);
            assert!(!kind.name().is_empty());
        }
        assert!(PayloadKind::from_byte(200).is_err());
    }
}
