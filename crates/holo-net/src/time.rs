//! Virtual simulation time.

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// As seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As milliseconds (f64).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating difference.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_micros() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_micros() as u64;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(other.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(5).0, 5000);
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000);
        assert!((SimTime(2_500_000).as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((SimTime(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        // Saturating: earlier minus later is zero.
        assert_eq!(SimTime::from_millis(1) - SimTime::from_millis(5), Duration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime(0));
    }
}
