//! Bandwidth prediction.
//!
//! Rate adaptation (§3.2) needs a forecast of available bandwidth. Two
//! standard estimators are provided: exponentially-weighted moving
//! average and the harmonic mean of recent samples (robust to outliers;
//! the choice of MPC-style ABR systems).

use std::collections::VecDeque;

/// A bandwidth predictor fed with throughput samples (bps).
pub trait BandwidthPredictor {
    /// Record an observed throughput sample.
    fn observe(&mut self, bps: f64);
    /// Predict near-future available bandwidth, bps.
    fn predict(&self) -> f64;
    /// Reset state.
    fn reset(&mut self);
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    /// Smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    value: Option<f64>,
}

impl EwmaPredictor {
    /// Create with a smoothing factor.
    pub fn new(alpha: f64) -> Self {
        Self { alpha: alpha.clamp(1e-3, 1.0), value: None }
    }
}

impl BandwidthPredictor for EwmaPredictor {
    fn observe(&mut self, bps: f64) {
        // A NaN/inf sample would poison the average forever (every
        // later EWMA term inherits it); a negative one is meaningless.
        // Drop them instead — the zero-sample case is already the
        // well-defined "no prediction yet" state.
        if !bps.is_finite() || bps < 0.0 {
            return;
        }
        self.value = Some(match self.value {
            None => bps,
            Some(v) => self.alpha * bps + (1.0 - self.alpha) * v,
        });
    }

    fn predict(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// Harmonic mean of the last N samples.
#[derive(Debug, Clone)]
pub struct HarmonicMeanPredictor {
    /// Window length.
    pub window: usize,
    samples: VecDeque<f64>,
}

impl HarmonicMeanPredictor {
    /// Create with a window length.
    pub fn new(window: usize) -> Self {
        Self { window: window.max(1), samples: VecDeque::new() }
    }
}

impl BandwidthPredictor for HarmonicMeanPredictor {
    fn observe(&mut self, bps: f64) {
        if bps.is_finite() && bps > 0.0 {
            self.samples.push_back(bps);
            while self.samples.len() > self.window {
                self.samples.pop_front();
            }
        }
    }

    fn predict(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let inv_sum: f64 = self.samples.iter().map(|s| 1.0 / s).sum();
        self.samples.len() as f64 / inv_sum
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BandwidthTrace;

    #[test]
    fn ewma_converges_to_constant() {
        let mut p = EwmaPredictor::new(0.3);
        for _ in 0..50 {
            p.observe(10e6);
        }
        assert!((p.predict() - 10e6).abs() < 1.0);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut p = EwmaPredictor::new(0.5);
        for _ in 0..20 {
            p.observe(10e6);
        }
        for _ in 0..10 {
            p.observe(2e6);
        }
        let v = p.predict();
        assert!((v - 2e6).abs() / 2e6 < 0.05, "ewma after step {v}");
    }

    #[test]
    fn harmonic_mean_penalizes_dips() {
        let mut h = HarmonicMeanPredictor::new(5);
        let mut e = EwmaPredictor::new(1.0 / 5.0);
        for s in [10e6, 10e6, 1e6, 10e6, 10e6] {
            h.observe(s);
            e.observe(s);
        }
        // Harmonic mean of [10,10,1,10,10] Mbps = 5/(4*0.1+1) = 3.57 Mbps,
        // well below the arithmetic-ish EWMA.
        assert!(h.predict() < 4.0e6, "harmonic {}", h.predict());
        assert!(h.predict() < e.predict());
    }

    #[test]
    fn harmonic_window_slides() {
        let mut h = HarmonicMeanPredictor::new(3);
        for s in [1e6, 1e6, 1e6, 9e6, 9e6, 9e6] {
            h.observe(s);
        }
        assert!((h.predict() - 9e6).abs() < 1.0, "window should forget old dips");
    }

    #[test]
    fn empty_predictors_return_zero() {
        assert_eq!(EwmaPredictor::new(0.2).predict(), 0.0);
        assert_eq!(HarmonicMeanPredictor::new(4).predict(), 0.0);
    }

    #[test]
    fn prediction_error_on_broadband_trace_small() {
        let trace = BandwidthTrace::us_broadband(2);
        let mut p = HarmonicMeanPredictor::new(8);
        let mut errors = Vec::new();
        for i in 0..240 {
            let t = i as f64 * 0.5;
            let actual = trace.bps_at(t);
            if i > 8 {
                errors.push((p.predict() - actual).abs() / actual);
            }
            p.observe(actual);
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean_err < 0.15, "broadband prediction error {mean_err}");
    }

    #[test]
    fn non_finite_and_negative_samples_are_ignored() {
        let mut e = EwmaPredictor::new(0.3);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        e.observe(-5e6);
        assert_eq!(e.predict(), 0.0, "garbage first window must not poison the EWMA");
        e.observe(10e6);
        e.observe(f64::NAN);
        assert!((e.predict() - 10e6).abs() < 1.0, "NaN after real samples must be a no-op");
        assert!(e.predict().is_finite());

        let mut h = HarmonicMeanPredictor::new(4);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.predict(), 0.0);
        h.observe(8e6);
        assert!((h.predict() - 8e6).abs() < 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut p = EwmaPredictor::new(0.3);
        p.observe(5e6);
        p.reset();
        assert_eq!(p.predict(), 0.0);
    }
}
