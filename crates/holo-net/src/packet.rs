//! Packets.

use crate::time::SimTime;
use holo_runtime::bytes::Bytes;

/// A packet in flight. Payload is reference-counted ([`Bytes`]) so
/// fragmentation never copies frame data.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Global sequence number.
    pub seq: u64,
    /// Frame this packet belongs to.
    pub frame_id: u64,
    /// Fragment index within the frame.
    pub fragment: u32,
    /// Total fragments in the frame.
    pub fragment_count: u32,
    /// Payload bytes (fragment of the frame body).
    pub payload: Bytes,
    /// Time the packet entered the link.
    pub sent_at: SimTime,
}

impl Packet {
    /// On-wire size: payload plus a fixed header estimate
    /// (IP + UDP + our framing = 40 bytes).
    pub const HEADER_BYTES: usize = 40;

    /// Total wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.payload.len() + Self::HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let p = Packet {
            seq: 0,
            frame_id: 0,
            fragment: 0,
            fragment_count: 1,
            payload: Bytes::from(vec![0u8; 1000]),
            sent_at: SimTime::ZERO,
        };
        assert_eq!(p.wire_size(), 1040);
    }

    #[test]
    fn payload_is_cheap_to_clone() {
        let data = Bytes::from(vec![7u8; 1 << 20]);
        let p = Packet {
            seq: 1,
            frame_id: 2,
            fragment: 0,
            fragment_count: 1,
            payload: data.slice(0..1200),
            sent_at: SimTime::ZERO,
        };
        let q = p.clone();
        assert_eq!(q.payload.len(), 1200);
        assert_eq!(q.payload[0], 7);
    }
}
