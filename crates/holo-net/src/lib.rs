//! Deterministic network substrate for the SemHolo reproduction.
//!
//! Every bandwidth/latency number in the paper's argument — the 100 Mbps
//! that ViVo needs, the 25 Mbps U.S. broadband baseline, the < 100 ms
//! end-to-end budget — lives here. Following the event-driven poll model
//! of the networking guides (smoltcp-style: explicit virtual time, no
//! hidden threads), the simulator is fully deterministic from a seed, so
//! every experiment that involves "the Internet" replays exactly.
//!
//! - [`time`] — virtual clock ([`SimTime`]), microsecond resolution.
//! - [`packet`] — packets carrying [`holo_runtime::bytes::Bytes`] payloads.
//! - [`link`] — a bottleneck link: serialization at the (time-varying)
//!   trace rate, propagation delay, jitter, tail-drop queue, random loss.
//! - [`trace`] — bandwidth traces: constant, stepped, broadband (25 Mbps
//!   class), and LTE-like Markov traces.
//! - [`transport`] — frame framing/fragmentation over a link, reassembly,
//!   per-frame latency accounting, selective retransmission.
//! - [`predict`] — bandwidth predictors (EWMA, harmonic mean) used by
//!   rate adaptation (§3.2).
//! - [`abr`] — the rate-adaptation ladder controller that picks an image
//!   resolution per predicted bandwidth (§3.2).
//! - [`mpc`] — a model-predictive controller in the Pensieve/RobustMPC
//!   family the paper cites: plans rung choices over a horizon against a
//!   frame-queue model.
//! - [`fault`] — deterministic fault injection: seeded Gilbert–Elliott
//!   burst loss, bandwidth drops, link flaps, delay spikes, and payload
//!   corruption compiled into per-link [`FaultClock`]s consumed inside
//!   [`Link::transmit`] (the substrate `holo-chaos` builds scenarios on).
//! - [`wire`] — the versioned, CRC32-checksummed [`WireFrame`] envelope
//!   `Session` and the SFU put on every hop, so corrupted payloads are
//!   *detected and dropped* instead of poisoning the render path.
//!
//! [`Link::transmit`]: link::Link::transmit

pub mod abr;
pub mod fault;
pub mod link;
pub mod mpc;
pub mod packet;
pub mod predict;
pub mod time;
pub mod trace;
pub mod transport;
pub mod wire;

pub use abr::{AbrController, Ladder, LadderRung};
pub use fault::{FaultClock, FaultEffect, FaultSegment, LossModel};
pub use mpc::{MpcController, MpcObjective};
pub use link::{Link, LinkConfig, LinkStats};
pub use packet::Packet;
pub use predict::{BandwidthPredictor, EwmaPredictor, HarmonicMeanPredictor};
pub use time::SimTime;
pub use trace::BandwidthTrace;
pub use transport::{FrameReceiver, FrameSender, FrameTransport};
pub use wire::{crc32, PayloadKind, WireFrame, MAX_WIRE_PAYLOAD, WIRE_HEADER_BYTES};
