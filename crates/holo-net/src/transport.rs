//! Frame transport: fragmentation, reassembly, latency accounting.
//!
//! A holographic frame (pose payload, compressed mesh, image set, token
//! stream) is fragmented into MTU-sized packets, offered to the link, and
//! reassembled at the receiver. Frame completion time is the arrival of
//! the last fragment; loss handling is configurable (a frame with missing
//! fragments is either discarded — live mode — or retransmitted once).

use crate::link::{Delivery, Link};
use crate::packet::Packet;
use crate::time::SimTime;
use holo_runtime::bytes::Bytes;
use std::time::Duration;

/// Payload bytes per packet (1500 MTU minus headers).
pub const MTU_PAYLOAD: usize = 1460;

/// Loss-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossPolicy {
    /// Live streaming: incomplete frames are dropped.
    DropFrame,
    /// One retransmission round for lost fragments (adds an RTT).
    RetransmitOnce,
}

/// Result of sending one frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameResult {
    /// Frame id.
    pub frame_id: u64,
    /// Whether the frame arrived completely.
    pub complete: bool,
    /// Time the last fragment arrived (when complete).
    pub completed_at: Option<SimTime>,
    /// Frame latency from send start (when complete).
    pub latency: Option<Duration>,
    /// Fragments sent (including retransmissions).
    pub packets_sent: u32,
    /// Wire bytes sent (including headers and retransmissions).
    pub wire_bytes: u64,
}

/// Sender side: fragments frames onto a link.
#[derive(Debug)]
pub struct FrameSender {
    next_seq: u64,
    next_frame: u64,
    /// Loss policy.
    pub policy: LossPolicy,
}

/// Receiver-side statistics (reassembly bookkeeping happens inline in
/// [`FrameTransport::send_frame`] since the simulation is synchronous).
#[derive(Debug, Default, Clone)]
pub struct FrameReceiver {
    /// Completed frame count.
    pub frames_complete: u64,
    /// Dropped (incomplete) frame count.
    pub frames_dropped: u64,
}

/// A frame transport bound to a link.
#[derive(Debug)]
pub struct FrameTransport {
    /// The sender state.
    pub sender: FrameSender,
    /// The receiver state.
    pub receiver: FrameReceiver,
    /// The underlying link.
    pub link: Link,
}

impl FrameTransport {
    /// Bind a transport to a link.
    pub fn new(link: Link, policy: LossPolicy) -> Self {
        Self {
            sender: FrameSender { next_seq: 0, next_frame: 0, policy },
            receiver: FrameReceiver::default(),
            link,
        }
    }

    /// Send one frame of `payload` at time `now`; returns the delivery
    /// outcome. The synchronous simulation resolves the entire frame's
    /// fate immediately (virtual time still advances correctly because the
    /// link tracks its own busy horizon).
    pub fn send_frame(&mut self, payload: Bytes, now: SimTime) -> FrameResult {
        self.send_frame_sized(payload.len(), now)
    }

    /// Size-only variant of [`send_frame`](Self::send_frame): the link
    /// model only consumes wire sizes, so forwarding paths that fan one
    /// frame out to many receivers (the SFU) can account a frame without
    /// materializing a payload buffer per receiver. Byte-for-byte
    /// equivalent to `send_frame` on a payload of `payload_len` bytes.
    pub fn send_frame_sized(&mut self, payload_len: usize, now: SimTime) -> FrameResult {
        let frame_id = self.sender.next_frame;
        self.sender.next_frame += 1;
        holo_trace::counter("transport.frames_sent", 1);
        let fragment_count = payload_len.div_ceil(MTU_PAYLOAD).max(1) as u32;
        let mut result = FrameResult {
            frame_id,
            complete: false,
            completed_at: None,
            latency: None,
            packets_sent: 0,
            wire_bytes: 0,
        };
        let mut lost_fragments: Vec<u32> = Vec::new();
        let mut last_arrival = SimTime::ZERO;

        for frag in 0..fragment_count {
            let lo = frag as usize * MTU_PAYLOAD;
            let hi = (lo + MTU_PAYLOAD).min(payload_len);
            let wire_size = hi - lo + Packet::HEADER_BYTES;
            self.sender.next_seq += 1;
            result.packets_sent += 1;
            result.wire_bytes += wire_size as u64;
            match self.link.transmit(wire_size, now) {
                Delivery::At(t) => last_arrival = last_arrival.max(t),
                Delivery::Lost | Delivery::QueueDrop => lost_fragments.push(frag),
            }
        }

        if !lost_fragments.is_empty() && self.sender.policy == LossPolicy::RetransmitOnce {
            // NACK arrives one propagation later; retransmit from there.
            let nack_at = last_arrival.max(now) + self.link.config.propagation;
            let mut still_lost = false;
            for frag in lost_fragments.drain(..) {
                let lo = frag as usize * MTU_PAYLOAD;
                let hi = (lo + MTU_PAYLOAD).min(payload_len);
                let size = hi - lo + Packet::HEADER_BYTES;
                result.packets_sent += 1;
                result.wire_bytes += size as u64;
                holo_trace::counter("transport.retx_fragments", 1);
                match self.link.transmit(size, nack_at) {
                    Delivery::At(t) => last_arrival = last_arrival.max(t),
                    _ => still_lost = true,
                }
            }
            if still_lost {
                self.receiver.frames_dropped += 1;
                holo_trace::counter("transport.frames_dropped", 1);
                return result;
            }
        } else if !lost_fragments.is_empty() {
            self.receiver.frames_dropped += 1;
            holo_trace::counter("transport.frames_dropped", 1);
            return result;
        }

        result.complete = true;
        result.completed_at = Some(last_arrival);
        result.latency = Some(last_arrival - now);
        self.receiver.frames_complete += 1;
        if holo_trace::enabled() {
            holo_trace::counter("transport.frames_complete", 1);
            holo_trace::counter("transport.wire_bytes", result.wire_bytes);
            holo_trace::histogram(
                "transport.frame_latency_ms",
                (last_arrival - now).as_secs_f64() * 1e3,
            );
        }
        result
    }

    /// Bandwidth needed to ship `frame_bytes` per frame at `fps`,
    /// including per-packet header overhead, in bps — the Table 2 metric.
    pub fn required_bps(frame_bytes: usize, fps: f64) -> f64 {
        let packets = frame_bytes.div_ceil(MTU_PAYLOAD).max(1);
        let wire = frame_bytes + packets * Packet::HEADER_BYTES;
        wire as f64 * 8.0 * fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::trace::BandwidthTrace;

    fn transport(bps: f64, loss: f32, policy: LossPolicy) -> FrameTransport {
        let link = Link::new(
            LinkConfig {
                jitter_max: Duration::ZERO,
                loss_rate: loss,
                max_queue_delay: Duration::from_secs(10),
                ..Default::default()
            },
            BandwidthTrace::Constant { bps },
            3,
        );
        FrameTransport::new(link, policy)
    }

    #[test]
    fn small_frame_single_packet() {
        let mut t = transport(10e6, 0.0, LossPolicy::DropFrame);
        let r = t.send_frame(Bytes::from(vec![1u8; 500]), SimTime::ZERO);
        assert!(r.complete);
        assert_eq!(r.packets_sent, 1);
        let lat = r.latency.unwrap().as_secs_f64() * 1000.0;
        // 540 B at 10 Mbps = 0.43 ms + 20 ms propagation.
        assert!((lat - 20.43).abs() < 0.2, "latency {lat} ms");
    }

    #[test]
    fn large_frame_fragments() {
        let mut t = transport(100e6, 0.0, LossPolicy::DropFrame);
        let size = 400_000; // a raw mesh frame
        let r = t.send_frame(Bytes::from(vec![0u8; size]), SimTime::ZERO);
        assert!(r.complete);
        assert_eq!(r.packets_sent as usize, size.div_ceil(MTU_PAYLOAD));
        // Serialization dominates: ~32.5 ms at 100 Mbps + 20 ms.
        let lat = r.latency.unwrap().as_secs_f64() * 1000.0;
        assert!((lat - 52.7).abs() < 3.0, "latency {lat} ms");
    }

    #[test]
    fn frame_latency_grows_when_link_saturated() {
        let mut t = transport(10e6, 0.0, LossPolicy::DropFrame);
        // 30 FPS of 100 KB frames = 24 Mbps on a 10 Mbps link.
        let mut latencies = Vec::new();
        for i in 0..20 {
            let now = SimTime::from_secs_f64(i as f64 / 30.0);
            let r = t.send_frame(Bytes::from(vec![0u8; 100_000]), now);
            if let Some(l) = r.latency {
                latencies.push(l.as_secs_f64());
            }
        }
        // Later frames should be slower (queue build-up) until drops kick in.
        assert!(latencies.len() >= 2);
        assert!(latencies.last().unwrap() > latencies.first().unwrap());
    }

    #[test]
    fn loss_drops_frames_in_live_mode() {
        let mut t = transport(1e9, 0.05, LossPolicy::DropFrame);
        let mut complete = 0;
        for i in 0..200 {
            let r = t.send_frame(Bytes::from(vec![0u8; 20_000]), SimTime::from_millis(i * 10));
            if r.complete {
                complete += 1;
            }
        }
        // 14 packets/frame at 5% loss: ~49% of frames survive.
        assert!(complete > 40 && complete < 160, "complete {complete}");
        assert!(t.receiver.frames_dropped > 0);
    }

    #[test]
    fn retransmission_recovers_most_frames() {
        let mut t = transport(1e9, 0.05, LossPolicy::RetransmitOnce);
        let mut complete = 0;
        for i in 0..200 {
            let r = t.send_frame(Bytes::from(vec![0u8; 20_000]), SimTime::from_millis(i * 10));
            if r.complete {
                complete += 1;
            }
        }
        assert!(complete > 180, "complete with retx {complete}");
    }

    #[test]
    fn retransmission_adds_rtt() {
        // Deterministic: a link that loses the first packet offered.
        let mut t = transport(1e9, 0.3, LossPolicy::RetransmitOnce);
        let mut max_lat = Duration::ZERO;
        let mut min_lat = Duration::from_secs(100);
        for i in 0..100 {
            let r = t.send_frame(Bytes::from(vec![0u8; 10_000]), SimTime::from_millis(i * 20));
            if let Some(l) = r.latency {
                max_lat = max_lat.max(l);
                min_lat = min_lat.min(l);
            }
        }
        // Frames needing retransmission pay roughly an extra RTT.
        assert!(max_lat > min_lat + Duration::from_millis(30), "min {min_lat:?} max {max_lat:?}");
    }

    #[test]
    fn required_bps_matches_table2_arithmetic() {
        // 1956-byte pose at 30 FPS: ~0.48 Mbps with headers (the paper
        // reports 0.46 counting payload only).
        let bps = FrameTransport::required_bps(1956, 30.0);
        assert!((bps - 489_600.0).abs() < 1000.0, "pose bps {bps}");
        // Payload-only check: 1956 * 8 * 30 = 469,440 ~ 0.46 Mbps.
        assert!((1956.0f64 * 8.0 * 30.0 / 1e6 - 0.469).abs() < 0.01);
    }

    #[test]
    fn sized_send_matches_payload_send() {
        // The SFU fan-out path sends sizes, not buffers; both paths must
        // drive the link (and its RNG) identically.
        let mut a = transport(20e6, 0.03, LossPolicy::RetransmitOnce);
        let mut b = transport(20e6, 0.03, LossPolicy::RetransmitOnce);
        for i in 0..50u64 {
            let now = SimTime::from_millis(i * 7);
            let len = (i as usize * 337) % 9000;
            let ra = a.send_frame(Bytes::from(vec![1u8; len]), now);
            let rb = b.send_frame_sized(len, now);
            assert_eq!(ra.complete, rb.complete);
            assert_eq!(ra.completed_at, rb.completed_at);
            assert_eq!(ra.packets_sent, rb.packets_sent);
            assert_eq!(ra.wire_bytes, rb.wire_bytes);
        }
    }

    #[test]
    fn empty_frame() {
        let mut t = transport(10e6, 0.0, LossPolicy::DropFrame);
        let r = t.send_frame(Bytes::new(), SimTime::ZERO);
        assert!(r.complete);
        assert_eq!(r.packets_sent, 1);
    }
}
