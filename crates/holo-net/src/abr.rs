//! Rate adaptation: the resolution ladder controller of §3.2.
//!
//! Image-based semantics streams multiple camera views whose resolution
//! (and therefore bitrate, and therefore NeRF sub-network width) must
//! track available bandwidth. The controller picks the highest ladder
//! rung whose bitrate fits the predicted bandwidth with a safety margin,
//! with upward hysteresis to avoid oscillation.


/// One quality level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// Image side length, pixels (square views).
    pub resolution: u32,
    /// Total bitrate at this rung (all camera views), bps.
    pub bitrate_bps: f64,
    /// NeRF sub-network width serving this resolution (§3.2's slimmable
    /// network coupling).
    pub network_width: u32,
}

/// Why a [`Ladder`] failed [`Ladder::validate`]: the typed taxonomy
/// (same shape as `holo_runtime::ser::DecodeError` — variants, a
/// stable [`kind`](LadderError::kind), `Display`, `std::error::Error`)
/// that replaced the stringly `Result<(), String>` the controller used
/// to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderError {
    /// The ladder has no rungs at all.
    Empty,
    /// A rung's bitrate does not strictly exceed its predecessor's.
    BitratesNotAscending,
    /// A rung's resolution does not strictly exceed its predecessor's.
    ResolutionsNotAscending,
    /// A rung's slimmable-network width does not strictly exceed its
    /// predecessor's.
    WidthsNotAscending,
}

impl LadderError {
    /// Stable lowercase tag (report keys, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            LadderError::Empty => "empty",
            LadderError::BitratesNotAscending => "bitrates_not_ascending",
            LadderError::ResolutionsNotAscending => "resolutions_not_ascending",
            LadderError::WidthsNotAscending => "widths_not_ascending",
        }
    }
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderError::Empty => write!(f, "ladder has no rungs"),
            LadderError::BitratesNotAscending => write!(f, "ladder bitrates must ascend"),
            LadderError::ResolutionsNotAscending => write!(f, "ladder resolutions must ascend"),
            LadderError::WidthsNotAscending => write!(f, "ladder network widths must ascend"),
        }
    }
}

impl std::error::Error for LadderError {}

/// An ordered set of quality levels (ascending bitrate).
#[derive(Debug, Clone)]
pub struct Ladder {
    /// Rungs sorted by ascending bitrate.
    pub rungs: Vec<LadderRung>,
}

impl Ladder {
    /// The default 4-rung ladder used by the image pipeline: resolutions
    /// with bitrates scaling roughly with pixel count.
    pub fn standard() -> Self {
        Self {
            rungs: vec![
                LadderRung { resolution: 128, bitrate_bps: 2.0e6, network_width: 16 },
                LadderRung { resolution: 256, bitrate_bps: 6.0e6, network_width: 32 },
                LadderRung { resolution: 512, bitrate_bps: 18.0e6, network_width: 64 },
                LadderRung { resolution: 1024, bitrate_bps: 55.0e6, network_width: 128 },
            ],
        }
    }

    /// Validate monotonicity: bitrate, resolution, and the coupled
    /// slimmable-network width must all strictly ascend, or the
    /// controller's "highest rung that fits" search is meaningless (a
    /// higher-bitrate rung could deliver a *lower* resolution).
    pub fn validate(&self) -> Result<(), LadderError> {
        if self.rungs.is_empty() {
            return Err(LadderError::Empty);
        }
        for w in self.rungs.windows(2) {
            if w[1].bitrate_bps <= w[0].bitrate_bps {
                return Err(LadderError::BitratesNotAscending);
            }
            if w[1].resolution <= w[0].resolution {
                return Err(LadderError::ResolutionsNotAscending);
            }
            if w[1].network_width <= w[0].network_width {
                return Err(LadderError::WidthsNotAscending);
            }
        }
        Ok(())
    }

    /// The top (highest-bitrate) rung.
    pub fn top(&self) -> LadderRung {
        *self.rungs.last().expect("validated ladders are non-empty")
    }
}

/// Hysteretic ladder controller.
#[derive(Debug, Clone)]
pub struct AbrController {
    /// The ladder.
    pub ladder: Ladder,
    /// Fraction of predicted bandwidth considered usable (< 1).
    pub safety: f64,
    /// Consecutive decisions required before switching up.
    pub up_hysteresis: u32,
    current: usize,
    up_pending: u32,
}

impl AbrController {
    /// Start at the lowest rung. Rejects ladders that fail
    /// [`Ladder::validate`] — a controller over a non-monotone ladder
    /// would silently make nonsensical up/down decisions.
    pub fn new(ladder: Ladder, safety: f64) -> Result<Self, LadderError> {
        ladder.validate()?;
        Ok(Self { ladder, safety: safety.clamp(0.1, 1.0), up_hysteresis: 3, current: 0, up_pending: 0 })
    }

    /// Current rung.
    pub fn current(&self) -> LadderRung {
        self.ladder.rungs[self.current]
    }

    /// Feed a bandwidth prediction; returns the (possibly new) rung.
    pub fn decide(&mut self, predicted_bps: f64) -> LadderRung {
        let usable = predicted_bps * self.safety;
        // The highest rung that fits.
        let target = self
            .ladder
            .rungs
            .iter()
            .rposition(|r| r.bitrate_bps <= usable)
            .unwrap_or(0);
        if target > self.current {
            // Hysteresis on the way up.
            self.up_pending += 1;
            if self.up_pending >= self.up_hysteresis {
                self.current += 1; // one rung at a time
                self.up_pending = 0;
            }
        } else {
            self.up_pending = 0;
            if target < self.current {
                // Immediate downgrade (congestion response).
                self.current = target;
            }
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BandwidthTrace;

    #[test]
    fn standard_ladder_valid() {
        assert!(Ladder::standard().validate().is_ok());
        let bad = Ladder { rungs: vec![] };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_requires_all_axes_strictly_ascending() {
        let mut rungs = Ladder::standard().rungs;
        rungs[1].resolution = rungs[0].resolution; // bitrate still ascends
        let bad_res = Ladder { rungs: rungs.clone() };
        assert_eq!(bad_res.validate().unwrap_err(), LadderError::ResolutionsNotAscending);

        let mut rungs = Ladder::standard().rungs;
        rungs[2].network_width = 8; // below rung 1's width
        let bad_width = Ladder { rungs };
        let err = bad_width.validate().unwrap_err();
        assert_eq!(err, LadderError::WidthsNotAscending);
        // Display keeps the historical message; kind() is the stable tag.
        assert!(err.to_string().contains("width"));
        assert_eq!(err.kind(), "widths_not_ascending");
        assert_eq!(Ladder { rungs: vec![] }.validate().unwrap_err().kind(), "empty");
    }

    #[test]
    fn controller_rejects_invalid_ladder() {
        let mut rungs = Ladder::standard().rungs;
        rungs.swap(0, 1);
        assert!(AbrController::new(Ladder { rungs }, 0.8).is_err());
        assert!(AbrController::new(Ladder { rungs: vec![] }, 0.8).is_err());
        assert!(AbrController::new(Ladder::standard(), 0.8).is_ok());
    }

    #[test]
    fn starts_low_and_climbs_with_hysteresis() {
        let mut c = AbrController::new(Ladder::standard(), 0.8).unwrap();
        assert_eq!(c.current().resolution, 128);
        // Plenty of bandwidth: climbs one rung per hysteresis window.
        let mut history = Vec::new();
        for _ in 0..12 {
            history.push(c.decide(100e6).resolution);
        }
        assert_eq!(*history.last().unwrap(), 1024);
        // Must pass through intermediate rungs, not jump.
        assert!(history.contains(&256) && history.contains(&512), "{history:?}");
    }

    #[test]
    fn downgrades_immediately_on_congestion() {
        let mut c = AbrController::new(Ladder::standard(), 0.8).unwrap();
        for _ in 0..20 {
            c.decide(100e6);
        }
        assert_eq!(c.current().resolution, 1024);
        let r = c.decide(5e6);
        assert_eq!(r.resolution, 128, "must drop straight down");
    }

    #[test]
    fn never_exceeds_safe_bandwidth() {
        let trace = BandwidthTrace::lte(4);
        let mut c = AbrController::new(Ladder::standard(), 0.8).unwrap();
        for i in 0..300 {
            let bw = trace.bps_at(i as f64 * 0.2);
            let rung = c.decide(bw);
            assert!(
                rung.bitrate_bps <= bw * 0.8 + 1.0 || rung.resolution == 128,
                "rung {} over budget {}",
                rung.bitrate_bps,
                bw
            );
        }
    }

    #[test]
    fn width_couples_to_resolution() {
        let ladder = Ladder::standard();
        for w in ladder.rungs.windows(2) {
            assert!(w[1].network_width > w[0].network_width);
        }
    }

    #[test]
    fn zero_bandwidth_stays_at_floor() {
        let mut c = AbrController::new(Ladder::standard(), 0.8).unwrap();
        assert_eq!(c.decide(0.0).resolution, 128);
    }
}
