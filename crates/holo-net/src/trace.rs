//! Bandwidth traces.
//!
//! The link's capacity at any instant comes from a trace. Besides
//! constant and stepped traces for controlled experiments, two synthetic
//! but statistically grounded families are provided: a cable/fiber
//! "broadband" trace centered on the 25 Mbps U.S. standard the paper
//! cites, and an LTE-like Markov trace with coarse state switches plus
//! fast fading, the volatile regime rate adaptation must survive.

use holo_math::Pcg32;

/// A time-varying capacity, bits per second.
#[derive(Debug, Clone)]
pub enum BandwidthTrace {
    /// Fixed capacity.
    Constant {
        /// Capacity, bps.
        bps: f64,
    },
    /// Piecewise-constant steps: `(start_time_s, bps)` sorted by time.
    Steps {
        /// Step table.
        steps: Vec<(f64, f64)>,
    },
    /// Broadband: slow sinusoidal drift + small noise around a mean.
    Broadband {
        /// Mean capacity, bps.
        mean_bps: f64,
        /// Relative drift amplitude (0.1 = +-10%).
        drift: f64,
        /// Seed for the noise component.
        seed: u64,
    },
    /// LTE-like: Markov chain over capacity states with fast fading.
    Lte {
        /// Capacity states, bps.
        states: Vec<f64>,
        /// Mean state dwell time, seconds.
        dwell_s: f64,
        /// Seed.
        seed: u64,
    },
}

impl BandwidthTrace {
    /// The paper's 25 Mbps U.S. broadband baseline.
    pub fn us_broadband(seed: u64) -> Self {
        BandwidthTrace::Broadband { mean_bps: 25e6, drift: 0.15, seed }
    }

    /// A typical LTE profile (5-60 Mbps states).
    pub fn lte(seed: u64) -> Self {
        BandwidthTrace::Lte {
            states: vec![5e6, 12e6, 25e6, 40e6, 60e6],
            dwell_s: 3.0,
            seed,
        }
    }

    /// Capacity in bps at time `t` seconds. Deterministic in `t`.
    pub fn bps_at(&self, t: f64) -> f64 {
        match self {
            BandwidthTrace::Constant { bps } => *bps,
            BandwidthTrace::Steps { steps } => {
                let mut current = steps.first().map_or(0.0, |s| s.1);
                for &(start, bps) in steps {
                    if t >= start {
                        current = bps;
                    } else {
                        break;
                    }
                }
                current
            }
            BandwidthTrace::Broadband { mean_bps, drift, seed } => {
                // Slow drift + deterministic per-second noise.
                let slow = (t * 0.05 * std::f64::consts::TAU + *seed as f64).sin();
                let sec = t.floor() as u64;
                let mut rng = Pcg32::with_stream(*seed ^ sec, 77);
                let noise = (rng.next_f32() as f64 - 0.5) * 0.1;
                (mean_bps * (1.0 + drift * slow + noise)).max(mean_bps * 0.2)
            }
            BandwidthTrace::Lte { states, dwell_s, seed } => {
                if states.is_empty() {
                    return 0.0;
                }
                // State changes at epoch boundaries (mean dwell), chosen
                // deterministically per epoch.
                let epoch = (t / dwell_s.max(0.1)) as u64;
                let mut rng = Pcg32::with_stream(seed.wrapping_add(epoch), 33);
                let state = states[rng.index(states.len())];
                // Fast fading within the epoch (100 ms granularity).
                let slot = (t * 10.0) as u64;
                let mut fade_rng = Pcg32::with_stream(seed ^ slot, 44);
                let fade = 0.75 + 0.5 * fade_rng.next_f32() as f64;
                state * fade
            }
        }
    }

    /// Mean capacity over `[0, duration]` sampled at `dt` (for reporting).
    pub fn mean_bps(&self, duration: f64, dt: f64) -> f64 {
        let n = (duration / dt).max(1.0) as usize;
        (0..n).map(|i| self.bps_at(i as f64 * dt)).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let t = BandwidthTrace::Constant { bps: 10e6 };
        assert_eq!(t.bps_at(0.0), 10e6);
        assert_eq!(t.bps_at(100.0), 10e6);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let t = BandwidthTrace::Steps { steps: vec![(0.0, 10e6), (5.0, 2e6), (10.0, 20e6)] };
        assert_eq!(t.bps_at(1.0), 10e6);
        assert_eq!(t.bps_at(5.0), 2e6);
        assert_eq!(t.bps_at(9.9), 2e6);
        assert_eq!(t.bps_at(15.0), 20e6);
    }

    #[test]
    fn broadband_stays_near_mean() {
        let t = BandwidthTrace::us_broadband(3);
        let mean = t.mean_bps(120.0, 0.5);
        assert!((mean - 25e6).abs() / 25e6 < 0.15, "mean {mean}");
        for i in 0..200 {
            let b = t.bps_at(i as f64 * 0.6);
            assert!(b > 5e6 && b < 40e6, "broadband excursion {b}");
        }
    }

    #[test]
    fn lte_visits_multiple_states() {
        let t = BandwidthTrace::lte(5);
        let mut values: Vec<f64> = (0..300).map(|i| t.bps_at(i as f64 * 0.4)).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let spread = values[values.len() - 1] / values[0];
        assert!(spread > 3.0, "LTE trace spread {spread}");
    }

    #[test]
    fn deterministic() {
        let t = BandwidthTrace::lte(9);
        assert_eq!(t.bps_at(12.34), t.bps_at(12.34));
        let b = BandwidthTrace::us_broadband(9);
        assert_eq!(b.bps_at(7.7), b.bps_at(7.7));
    }
}
