//! Deterministic fault injection: the per-link `FaultClock`.
//!
//! The plain link model knows one impairment: independent Bernoulli
//! packet loss. Real access networks fail in correlated ways — loss
//! arrives in bursts (a fade, a microwave blip), capacity collapses for
//! seconds (a congested cell), links flap outright, and one-way delay
//! spikes under bufferbloat. A [`FaultClock`] is a compiled, seeded
//! schedule of exactly those impairments, installed on a [`Link`] via
//! [`Link::set_fault`] and consumed inside [`Link::transmit`]: every
//! drop, slowdown, and delay it injects replays bit-identically from
//! `(seed, schedule)`.
//!
//! The burst-loss process is the classic two-state Gilbert–Elliott
//! chain: a *good* state with near-zero loss and a *bad* state where
//! most packets die, with per-packet transition probabilities. Its
//! stationary loss rate is `p_bad · loss_bad + p_good · loss_good`
//! where `p_bad = p_enter_bad / (p_enter_bad + p_exit_bad)`, and the
//! mean burst length is `1 / p_exit_bad` packets — the two knobs fault
//! plans are written in.
//!
//! [`Link`]: crate::link::Link
//! [`Link::transmit`]: crate::link::Link::transmit
//! [`Link::set_fault`]: crate::link::Link::set_fault

use crate::time::SimTime;
use holo_math::Pcg32;
use std::time::Duration;

/// A packet-loss process.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// Independent per-packet loss — what `LinkConfig::loss_rate`
    /// already models, available here so a fault plan can own the whole
    /// loss story of a link.
    Bernoulli {
        /// Per-packet loss probability.
        rate: f32,
    },
    /// Two-state Gilbert–Elliott burst loss.
    GilbertElliott {
        /// Per-packet probability of entering the bad state.
        p_enter_bad: f32,
        /// Per-packet probability of leaving the bad state (mean burst
        /// length is its reciprocal).
        p_exit_bad: f32,
        /// Loss probability while in the good state.
        loss_good: f32,
        /// Loss probability while in the bad state.
        loss_bad: f32,
    },
}

impl LossModel {
    /// A Gilbert–Elliott chain tuned to ~5% mean loss arriving in
    /// bursts of ~2–3 packets: 10% of packets are spent in the bad
    /// state (`0.05 / (0.05 + 0.45)`) where half of them die, plus a
    /// 0.5% background rate in the good state.
    pub fn burst5() -> Self {
        LossModel::GilbertElliott {
            p_enter_bad: 0.05,
            p_exit_bad: 0.45,
            loss_good: 0.005,
            loss_bad: 0.5,
        }
    }

    /// Mean (stationary) loss rate of the process.
    pub fn mean_loss_rate(&self) -> f64 {
        match self {
            LossModel::Bernoulli { rate } => *rate as f64,
            LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad } => {
                let denom = (*p_enter_bad as f64 + *p_exit_bad as f64).max(f64::MIN_POSITIVE);
                let p_bad = *p_enter_bad as f64 / denom;
                p_bad * *loss_bad as f64 + (1.0 - p_bad) * *loss_good as f64
            }
        }
    }
}

/// What a fault window does to the link while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEffect {
    /// Multiply the trace capacity by this factor (`0.1` is a 90%
    /// bandwidth drop). Concurrent scales multiply.
    BandwidthScale(f64),
    /// Add one-way delay to every delivery (a bufferbloat / reroute
    /// spike). Concurrent spikes add.
    ExtraDelay(Duration),
    /// Hard outage: every packet offered in the window is lost after
    /// admission (the flap is invisible to the sender until packets
    /// die).
    LinkDown,
    /// Per-frame payload corruption probability: delivered frames have
    /// their bytes flipped in flight with this chance. Corruption is
    /// rolled by the layers that carry real payload bytes (`Session`,
    /// the SFU, the chaos stream harness) via
    /// [`FaultClock::corrupt_roll`] — the link itself delivers the
    /// frame on time, it just delivers *wrong bytes*, which only a
    /// checksummed envelope can tell apart from good ones. Concurrent
    /// windows combine as independent corruption chances.
    PayloadCorrupt(f32),
}

/// A half-open time window `[from, until)` with an effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSegment {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The impairment applied inside the window.
    pub effect: FaultEffect,
}

impl FaultSegment {
    /// Whether the window covers `at`.
    pub fn active_at(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

/// A compiled, per-link fault schedule. Owns its own RNG (independent
/// of the link's jitter RNG) so installing or removing a clock never
/// perturbs the impairments the link already modeled.
#[derive(Debug, Clone)]
pub struct FaultClock {
    loss: Option<LossModel>,
    segments: Vec<FaultSegment>,
    rng: Pcg32,
    /// Separate RNG stream for payload corruption, so adding a
    /// `PayloadCorrupt` window to a plan never perturbs the loss
    /// process — a corrupted run and its clean twin stay comparable
    /// packet for packet.
    corrupt_rng: Pcg32,
    in_bad: bool,
    /// Packets this clock decided to drop (outages + loss process).
    pub injected_drops: u64,
    /// Frames this clock decided to corrupt in flight.
    pub injected_corruptions: u64,
}

impl FaultClock {
    /// Compile a schedule. `seed` drives the loss process; two clocks
    /// built from the same `(loss, segments, seed)` replay identically.
    pub fn new(loss: Option<LossModel>, segments: Vec<FaultSegment>, seed: u64) -> Self {
        Self {
            loss,
            segments,
            rng: Pcg32::with_stream(seed, 0xFA17),
            corrupt_rng: Pcg32::with_stream(seed, 0xC0DE),
            in_bad: false,
            injected_drops: 0,
            injected_corruptions: 0,
        }
    }

    /// A clock with no impairments at all (useful as a matrix baseline).
    pub fn idle(seed: u64) -> Self {
        Self::new(None, Vec::new(), seed)
    }

    /// The configured loss process, if any.
    pub fn loss_model(&self) -> Option<&LossModel> {
        self.loss.as_ref()
    }

    /// The schedule's segments.
    pub fn segments(&self) -> &[FaultSegment] {
        &self.segments
    }

    /// Product of all bandwidth scales active at `at` (1.0 when none).
    pub fn bandwidth_scale(&self, at: SimTime) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.active_at(at))
            .fold(1.0, |acc, s| match s.effect {
                FaultEffect::BandwidthScale(f) => acc * f.max(0.0),
                _ => acc,
            })
    }

    /// Sum of all delay spikes active at `at`.
    pub fn extra_delay(&self, at: SimTime) -> Duration {
        self.segments
            .iter()
            .filter(|s| s.active_at(at))
            .fold(Duration::ZERO, |acc, s| match s.effect {
                FaultEffect::ExtraDelay(d) => acc + d,
                _ => acc,
            })
    }

    /// Whether a hard outage covers `at`.
    pub fn is_down(&self, at: SimTime) -> bool {
        self.segments
            .iter()
            .any(|s| s.active_at(at) && s.effect == FaultEffect::LinkDown)
    }

    /// Advance the loss process one packet and decide this packet's
    /// fate at `at`. Every admitted packet must roll exactly once so
    /// the chain (and therefore the whole scenario) is reproducible.
    pub fn loss_roll(&mut self, at: SimTime) -> bool {
        if self.is_down(at) {
            self.injected_drops += 1;
            return true;
        }
        let lost = match &self.loss {
            None => false,
            Some(LossModel::Bernoulli { rate }) => *rate > 0.0 && self.rng.chance(*rate),
            Some(LossModel::GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad }) => {
                // Transition first, then roll in the new state: bursts
                // start killing from their first packet.
                if self.in_bad {
                    if self.rng.chance(*p_exit_bad) {
                        self.in_bad = false;
                    }
                } else if self.rng.chance(*p_enter_bad) {
                    self.in_bad = true;
                }
                let p = if self.in_bad { *loss_bad } else { *loss_good };
                p > 0.0 && self.rng.chance(p)
            }
        };
        if lost {
            self.injected_drops += 1;
        }
        lost
    }

    /// Combined corruption probability of all `PayloadCorrupt` windows
    /// active at `at` (independent chances compose).
    pub fn corrupt_rate(&self, at: SimTime) -> f32 {
        let survive = self
            .segments
            .iter()
            .filter(|s| s.active_at(at))
            .fold(1.0f32, |acc, s| match s.effect {
                FaultEffect::PayloadCorrupt(p) => acc * (1.0 - p.clamp(0.0, 1.0)),
                _ => acc,
            });
        1.0 - survive
    }

    /// Roll the corruption process for one delivered frame at `at`.
    /// Returns `Some(entropy)` when the frame's bytes are to be
    /// corrupted — the entropy picks which bit(s) to flip, so the
    /// damage itself replays deterministically. Draws from the corrupt
    /// RNG only inside an active window, so plans without
    /// `PayloadCorrupt` segments replay byte-identically to builds
    /// that predate the fault kind.
    pub fn corrupt_roll(&mut self, at: SimTime) -> Option<u64> {
        let rate = self.corrupt_rate(at);
        if rate <= 0.0 {
            return None;
        }
        if self.corrupt_rng.chance(rate) {
            self.injected_corruptions += 1;
            Some(self.corrupt_rng.next_u64())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn gilbert_elliott_hits_its_stationary_rate() {
        let model = LossModel::burst5();
        let expected = model.mean_loss_rate();
        let mut clock = FaultClock::new(Some(model), Vec::new(), 9);
        let n = 100_000;
        let lost = (0..n).filter(|_| clock.loss_roll(SimTime::ZERO)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - expected).abs() < 0.01, "rate {rate} vs expected {expected}");
        assert_eq!(clock.injected_drops as usize, lost);
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty() {
        // Compare run-length structure against Bernoulli at the same
        // mean rate: GE losses must clump into longer runs.
        let bursty = LossModel::GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.25,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let mean = bursty.mean_loss_rate() as f32;
        let run_stats = |mut clock: FaultClock| {
            let mut runs = Vec::new();
            let mut current = 0u32;
            for _ in 0..200_000 {
                if clock.loss_roll(SimTime::ZERO) {
                    current += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
            runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len().max(1) as f64
        };
        let ge = run_stats(FaultClock::new(Some(bursty), Vec::new(), 3));
        let bern =
            run_stats(FaultClock::new(Some(LossModel::Bernoulli { rate: mean }), Vec::new(), 3));
        assert!(ge > bern * 1.5, "GE mean run {ge:.2} vs Bernoulli {bern:.2}");
    }

    #[test]
    fn segments_compose() {
        let clock = FaultClock::new(
            None,
            vec![
                FaultSegment {
                    from: ms(100),
                    until: ms(200),
                    effect: FaultEffect::BandwidthScale(0.5),
                },
                FaultSegment {
                    from: ms(150),
                    until: ms(250),
                    effect: FaultEffect::BandwidthScale(0.2),
                },
                FaultSegment {
                    from: ms(150),
                    until: ms(160),
                    effect: FaultEffect::ExtraDelay(Duration::from_millis(30)),
                },
            ],
            1,
        );
        assert_eq!(clock.bandwidth_scale(ms(50)), 1.0);
        assert_eq!(clock.bandwidth_scale(ms(120)), 0.5);
        assert!((clock.bandwidth_scale(ms(155)) - 0.1).abs() < 1e-12, "scales multiply");
        assert_eq!(clock.bandwidth_scale(ms(220)), 0.2);
        assert_eq!(clock.extra_delay(ms(120)), Duration::ZERO);
        assert_eq!(clock.extra_delay(ms(155)), Duration::from_millis(30));
        // Window end is exclusive.
        assert_eq!(clock.bandwidth_scale(ms(250)), 1.0);
    }

    #[test]
    fn outage_kills_everything_in_window() {
        let mut clock = FaultClock::new(
            None,
            vec![FaultSegment { from: ms(10), until: ms(20), effect: FaultEffect::LinkDown }],
            1,
        );
        assert!(!clock.loss_roll(ms(5)));
        assert!(clock.loss_roll(ms(10)));
        assert!(clock.loss_roll(ms(19)));
        assert!(!clock.loss_roll(ms(20)));
        assert_eq!(clock.injected_drops, 2);
    }

    #[test]
    fn corrupt_roll_fires_only_inside_windows() {
        let mut clock = FaultClock::new(
            None,
            vec![FaultSegment {
                from: ms(100),
                until: ms(200),
                effect: FaultEffect::PayloadCorrupt(1.0),
            }],
            3,
        );
        assert_eq!(clock.corrupt_roll(ms(50)), None);
        assert!(clock.corrupt_roll(ms(150)).is_some());
        assert_eq!(clock.corrupt_roll(ms(200)), None, "window end is exclusive");
        assert_eq!(clock.injected_corruptions, 1);
        assert_eq!(clock.corrupt_rate(ms(150)), 1.0);
        assert_eq!(clock.corrupt_rate(ms(250)), 0.0);
    }

    #[test]
    fn corruption_does_not_perturb_the_loss_process() {
        // Same seed, with and without a corrupt window: the loss rolls
        // must match draw for draw even when corruption is rolled
        // in between (separate RNG streams).
        let mut plain = FaultClock::new(Some(LossModel::burst5()), Vec::new(), 42);
        let mut corrupting = FaultClock::new(
            Some(LossModel::burst5()),
            vec![FaultSegment {
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(1e9),
                effect: FaultEffect::PayloadCorrupt(0.5),
            }],
            42,
        );
        for i in 0..5000 {
            let at = SimTime::from_micros(i);
            assert_eq!(plain.loss_roll(at), corrupting.loss_roll(at));
            let _ = corrupting.corrupt_roll(at);
        }
        assert!(corrupting.injected_corruptions > 1000);
    }

    #[test]
    fn corrupt_rate_hits_its_mean() {
        let mut clock = FaultClock::new(
            None,
            vec![FaultSegment {
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(1e9),
                effect: FaultEffect::PayloadCorrupt(0.1),
            }],
            9,
        );
        let n = 50_000;
        let hits = (0..n).filter(|_| clock.corrupt_roll(SimTime::ZERO).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "corrupt rate {rate}");
    }

    #[test]
    fn same_seed_replays_identically() {
        let make = || FaultClock::new(Some(LossModel::burst5()), Vec::new(), 42);
        let mut a = make();
        let mut b = make();
        for i in 0..5000 {
            let at = SimTime::from_micros(i);
            assert_eq!(a.loss_roll(at), b.loss_roll(at));
        }
    }
}
