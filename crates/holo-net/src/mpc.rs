//! Model-predictive rate adaptation (the Pensieve/MPC family the paper
//! cites for rate adaption, [43, 61]).
//!
//! The ladder controller in [`crate::abr`] is reactive; an MPC controller
//! plans: over a short horizon it enumerates rung sequences, simulates
//! the receive buffer against predicted bandwidth, and picks the first
//! rung of the sequence maximizing a QoE objective (quality - rebuffer
//! penalty - switching penalty). For live holographic streams the
//! "buffer" is the frame queue ahead of the renderer: draining it means
//! a frozen hologram.

use crate::abr::{Ladder, LadderRung};

/// QoE objective weights for the planner.
#[derive(Debug, Clone, Copy)]
pub struct MpcObjective {
    /// Reward per unit log-bitrate (diminishing returns on quality).
    pub quality: f64,
    /// Penalty per second of predicted rebuffering. Live holograms
    /// freeze when the frame queue drains, so this dominates the
    /// objective (RobustMPC uses a similar ratio).
    pub rebuffer: f64,
    /// Penalty per rung switch (visual consistency).
    pub switch: f64,
}

impl Default for MpcObjective {
    fn default() -> Self {
        Self { quality: 1.0, rebuffer: 50.0, switch: 0.5 }
    }
}

/// Horizon-limited model-predictive ladder controller.
#[derive(Debug, Clone)]
pub struct MpcController {
    /// The quality ladder.
    pub ladder: Ladder,
    /// Planning horizon in frames.
    pub horizon: usize,
    /// Objective weights.
    pub objective: MpcObjective,
    /// Target buffer level, seconds.
    pub target_buffer_s: f64,
    current: usize,
}

impl MpcController {
    /// Start at the lowest rung.
    pub fn new(ladder: Ladder, horizon: usize) -> Self {
        Self {
            ladder,
            horizon: horizon.clamp(1, 8),
            objective: MpcObjective::default(),
            target_buffer_s: 0.25,
            current: 0,
        }
    }

    /// Current rung.
    pub fn current(&self) -> LadderRung {
        self.ladder.rungs[self.current]
    }

    /// Plan against `predicted_bps` with `buffer_s` seconds of frames
    /// queued; returns the rung to use for the next frame.
    ///
    /// Exhaustive enumeration is exponential in the horizon, so planning
    /// follows the standard robust-MPC simplification: each candidate
    /// *constant* rung sequence is simulated (quality switches within the
    /// horizon rarely pay off against the switch penalty), plus the
    /// one-step neighbors of the current rung.
    pub fn decide(&mut self, predicted_bps: f64, buffer_s: f64, frame_interval_s: f64) -> LadderRung {
        let mut best_score = f64::NEG_INFINITY;
        let mut best = self.current;
        let candidates: Vec<usize> = (0..self.ladder.rungs.len()).collect();
        for &cand in &candidates {
            let score = self.simulate(cand, predicted_bps, buffer_s, frame_interval_s);
            if score > best_score {
                best_score = score;
                best = cand;
            }
        }
        // Rung changes move one step at a time (hybrid of MPC choice and
        // switching smoothness).
        self.current = match best.cmp(&self.current) {
            std::cmp::Ordering::Greater => self.current + 1,
            std::cmp::Ordering::Less => self.current - 1,
            std::cmp::Ordering::Equal => self.current,
        };
        self.current()
    }

    /// Simulate holding `rung` for the horizon; return the objective.
    fn simulate(&self, rung: usize, predicted_bps: f64, buffer_s: f64, frame_interval_s: f64) -> f64 {
        let r = &self.ladder.rungs[rung];
        let mut buffer = buffer_s;
        let mut rebuffer = 0.0;
        for _ in 0..self.horizon {
            // Time to deliver one frame of this rung at the predicted rate.
            let frame_bits = r.bitrate_bps * frame_interval_s;
            let delivery_s = frame_bits / predicted_bps.max(1.0);
            // The buffer drains in real time while the frame downloads.
            buffer -= delivery_s;
            if buffer < 0.0 {
                rebuffer += -buffer;
                buffer = 0.0;
            }
            buffer += frame_interval_s;
        }
        let quality = (r.bitrate_bps / self.ladder.rungs[0].bitrate_bps).ln();
        let switches = (rung as i64 - self.current as i64).unsigned_abs() as f64;
        self.objective.quality * quality
            - self.objective.rebuffer * rebuffer
            - self.objective.switch * switches
            // Mild preference for buffers near the target (live latency).
            - 0.1 * (buffer - self.target_buffer_s).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{BandwidthPredictor, HarmonicMeanPredictor};
    use crate::trace::BandwidthTrace;

    fn controller() -> MpcController {
        MpcController::new(Ladder::standard(), 5)
    }

    #[test]
    fn plenty_of_bandwidth_climbs_to_top() {
        let mut c = controller();
        for _ in 0..10 {
            c.decide(200e6, 0.3, 1.0 / 30.0);
        }
        assert_eq!(c.current().resolution, 1024);
    }

    #[test]
    fn starved_link_stays_at_bottom() {
        let mut c = controller();
        for _ in 0..10 {
            c.decide(1e6, 0.3, 1.0 / 30.0);
        }
        assert_eq!(c.current().resolution, 128);
    }

    #[test]
    fn low_buffer_is_conservative() {
        // Same predicted bandwidth, different buffers: the near-empty
        // buffer must pick a lower (or equal) rung.
        let mut rich = controller();
        let mut poor = controller();
        for _ in 0..8 {
            rich.decide(20e6, 0.5, 1.0 / 30.0);
            poor.decide(20e6, 0.01, 1.0 / 30.0);
        }
        assert!(
            poor.current().bitrate_bps <= rich.current().bitrate_bps,
            "poor buffer {:?} vs rich {:?}",
            poor.current(),
            rich.current()
        );
    }

    #[test]
    fn tracks_an_lte_trace_without_rebuffering_much() {
        let trace = BandwidthTrace::lte(17);
        let mut c = controller();
        let mut predictor = HarmonicMeanPredictor::new(8);
        let dt = 1.0 / 30.0;
        let mut buffer = 0.3f64;
        let mut rebuffer_events = 0;
        for i in 0..600 {
            let t = i as f64 * dt;
            let actual = trace.bps_at(t);
            predictor.observe(actual);
            let rung = c.decide(predictor.predict(), buffer, dt);
            let delivery = rung.bitrate_bps * dt / actual.max(1.0);
            buffer -= delivery;
            if buffer < 0.0 {
                rebuffer_events += 1;
                buffer = 0.0;
            }
            buffer = (buffer + dt).min(1.0);
        }
        assert!(
            rebuffer_events < 30,
            "MPC rebuffered {rebuffer_events}/600 frames on LTE"
        );
    }

    #[test]
    fn mpc_outperforms_static_top_rung_on_variable_link() {
        // Static top-rung streaming rebuffers badly where MPC adapts.
        let trace = BandwidthTrace::Lte { states: vec![4e6, 12e6, 60e6], dwell_s: 1.0, seed: 3 };
        let dt = 1.0 / 30.0;
        let run = |adaptive: bool| {
            let mut c = controller();
            let mut predictor = HarmonicMeanPredictor::new(8);
            let mut buffer = 0.3f64;
            let mut rebuffer = 0.0;
            for i in 0..600 {
                let actual = trace.bps_at(i as f64 * dt);
                predictor.observe(actual);
                let rung = if adaptive {
                    c.decide(predictor.predict(), buffer, dt)
                } else {
                    *c.ladder.rungs.last().unwrap()
                };
                let delivery = rung.bitrate_bps * dt / actual.max(1.0);
                buffer -= delivery;
                if buffer < 0.0 {
                    rebuffer += -buffer;
                    buffer = 0.0;
                }
                buffer = (buffer + dt).min(1.0);
            }
            rebuffer
        };
        let adaptive = run(true);
        let static_top = run(false);
        assert!(
            adaptive < static_top * 0.5,
            "MPC rebuffer {adaptive:.2}s vs static {static_top:.2}s"
        );
    }

    #[test]
    fn one_step_switching() {
        let mut c = controller();
        // Huge bandwidth, but rungs move one at a time.
        let r1 = c.decide(1e9, 0.5, 1.0 / 30.0);
        assert_eq!(r1.resolution, 256, "one step up at a time");
    }
}
