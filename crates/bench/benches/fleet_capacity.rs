//! **Fleet capacity** — subscribers sustained vs. node count (1, 2, 4,
//! 8) for the keypoint and compressed-mesh tiers, with the measured
//! first-bottleneck label per point.
//!
//! The holo-fleet monotone search places uniform rooms of 4 with the
//! least-loaded policy and finds how many the fleet sustains before a
//! node's egress, a node's compute, or a cascade edge saturates. The
//! measured subscriber counts and bottleneck labels are embedded in
//! the benchmark names, so `BENCH_fleet_capacity.json` records the
//! scaling curve alongside the timings; the curve itself is asserted
//! monotone — more nodes must never sustain fewer subscribers.

use holo_bench::{report, report_header};
use holo_fleet::{fleet_capacity, FleetCapacityConfig, FleetTopology, PolicyKind};
use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};
use std::hint::black_box;

/// `(regions, nodes_per_region)` ladders giving 1, 2, 4, 8 nodes.
const FLEETS: [(usize, usize); 4] = [(1, 1), (2, 1), (2, 2), (2, 4)];

fn make_pipeline(kind: &str, room: usize) -> Box<dyn SemanticPipeline> {
    match kind {
        "keypoint" => Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 32, ..Default::default() },
            room as u64,
        )),
        // 14-bit quantization, matching the conference_capacity example.
        "mesh" => Box::new(TraditionalPipeline::new(MeshWire::Compressed, 14)),
        other => panic!("unknown tier {other}"),
    }
}

fn fleet_capacity_bench(c: &mut Criterion) {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.5);
    let egress_bps = 120e6;

    report_header("Fleet capacity: subscribers sustained vs. node count (rooms of 4)");
    report(&format!(
        "least-loaded placement, {:.0} Mbps node egress, 400 Mbps cascade, 100 Mbps access",
        egress_bps / 1e6
    ));

    let mut curve: Vec<(String, usize, usize, String)> = Vec::new();
    for tier in ["keypoint", "mesh"] {
        let mut prev: Option<usize> = None;
        for (regions, nodes_per_region) in FLEETS {
            let nodes = regions * nodes_per_region;
            let cfg = FleetCapacityConfig {
                topology: FleetTopology::uniform(
                    regions,
                    nodes_per_region,
                    egress_bps,
                    400e6,
                    1.0,
                    20.0,
                ),
                room_size: 4,
                access_bps: 100e6,
                frames: if quick { 3 } else { 4 },
                seed: 42,
                policy: PolicyKind::LeastLoaded,
                max_rooms: 256,
                min_usable_rate: 0.9,
            };
            let make = |room: usize| make_pipeline(tier, room);
            let m = fleet_capacity(&cfg, &scene, &make).expect("fleet capacity");
            report(&format!(
                "{:>9}: {} node{} -> {:>3} rooms / {:>4} subscribers  (stream {:6.3} Mbps, breaks at {})",
                tier,
                nodes,
                if nodes == 1 { " " } else { "s" },
                m.max_rooms,
                m.total_subscribers,
                m.stream_wire_bps / 1e6,
                m.bottleneck,
            ));
            // The headline claim: capacity scales with nodes. Strict
            // from 1 -> 2 (the ISSUE's floor), monotone thereafter.
            if let Some(prev_subs) = prev {
                if nodes == 2 {
                    assert!(
                        m.total_subscribers > prev_subs,
                        "{tier}: 2 nodes ({}) must beat 1 node ({prev_subs})",
                        m.total_subscribers
                    );
                } else {
                    assert!(
                        m.total_subscribers >= prev_subs,
                        "{tier}: capacity shrank at {nodes} nodes ({} < {prev_subs})",
                        m.total_subscribers
                    );
                }
            }
            prev = Some(m.total_subscribers);
            curve.push((tier.to_string(), nodes, m.total_subscribers, m.bottleneck.clone()));
        }
    }
    report("bottleneck labels are measured attributions, not assumptions: a point");
    report("whose label flips from node-egress to cascade marks where the mesh of");
    report("inter-node links, not the nodes, becomes the scaling wall.");

    let mut group = c.benchmark_group("fleet_capacity");
    group.sample_size(10);
    // Record the curve in the report JSON via the bench names.
    for (tier, nodes, subs, bottleneck) in &curve {
        let label = bottleneck.replace("->", "_").replace(':', "_");
        group.bench_function(
            format!("subscribers/{tier}/nodes{nodes}={subs} [{label}]"),
            |b| b.iter(|| black_box(*subs)),
        );
    }
    // Honest timing: the full monotone search on a 2-node fleet.
    group.bench_function("search_2node_keypoint", |b| {
        b.iter(|| {
            let cfg = FleetCapacityConfig {
                topology: FleetTopology::uniform(2, 1, egress_bps, 400e6, 1.0, 20.0),
                room_size: 4,
                access_bps: 100e6,
                frames: 3,
                seed: 42,
                policy: PolicyKind::LeastLoaded,
                max_rooms: 256,
                min_usable_rate: 0.9,
            };
            let make = |room: usize| make_pipeline("keypoint", room);
            black_box(fleet_capacity(&cfg, &scene, &make).unwrap().max_rooms)
        })
    });
    group.finish();
}

bench_group!(benches, fleet_capacity_bench);
bench_main!(benches);
