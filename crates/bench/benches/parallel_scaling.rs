//! **Parallel scaling** — wall-clock speedup of the deterministic
//! fork-join pool (`holo-runtime::par`) on the two heaviest fixed
//! workloads: the chaos scenario matrix and the fuzz sweep.
//!
//! The pool's contract is that thread count never changes bytes, only
//! wall-clock time — so this bench measures both sides: it times each
//! workload at `SEMHOLO_THREADS` 1, 2, and 4 (embedding the speedup in
//! permille in the bench names, so `BENCH_parallel_scaling.json`
//! records it), and digests each run's report to prove the bytes did
//! not move. The detected core count is embedded too: speedup is
//! bounded by physical parallelism, so a 1-core container honestly
//! reports ~1000 permille at every thread count.

use holo_bench::{report, report_header};
use holo_chaos::harness::run_scenarios;
use holo_fuzz::{run_sweep, FuzzConfig};
use holo_runtime::bench::Criterion;
use holo_runtime::par;
use holo_runtime::{bench_group, bench_main};
use std::hint::black_box;
use std::time::Instant;

/// FNV-1a digest pinning "these exact bytes" across thread counts.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Best-of-`reps` wall-clock seconds for `f`, plus the digest of its
/// rendered output (which must not depend on the thread count).
fn time_best<F: Fn() -> String>(reps: usize, f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        digest = fnv1a64(out.as_bytes());
    }
    (best, digest)
}

fn parallel_scaling(c: &mut Criterion) {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let seed = 42u64;
    let mutants = if quick { 400 } else { 2000 };
    let reps = if quick { 1 } else { 2 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    report_header("Parallel scaling: fork-join pool over chaos matrix + fuzz sweep");
    report(&format!(
        "detected cores: {cores}; chaos seed {seed}; fuzz {mutants} mutants/target; best of {reps}",
    ));

    let thread_counts = [1usize, 2, 4];
    let mut chaos = Vec::new();
    let mut fuzz = Vec::new();
    for &t in &thread_counts {
        par::set_thread_override(Some(t));
        let (cs, cd) = time_best(reps, || run_scenarios(seed).render());
        let (fs, fd) = time_best(reps, || {
            run_sweep(&FuzzConfig { seed: 7, mutations_per_target: mutants }).render()
        });
        report(&format!(
            "threads={t}: chaos {:.3}s (digest {cd:#018x}), fuzz {:.3}s (digest {fd:#018x})",
            cs, fs,
        ));
        chaos.push((t, cs, cd));
        fuzz.push((t, fs, fd));
    }
    par::set_thread_override(None);

    // Byte-identity first: speedup numbers mean nothing if the bytes
    // moved. Every digest must match the threads=1 run.
    for (name, runs) in [("chaos", &chaos), ("fuzz", &fuzz)] {
        let golden = runs[0].2;
        for &(t, _, d) in runs.iter() {
            assert_eq!(d, golden, "{name} bytes diverged at {t} threads");
        }
        report(&format!("{name}: byte-identical across threads 1/2/4"));
    }

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.bench_function(format!("detected_cores={cores}"), |b| b.iter(|| black_box(cores)));
    // Speedup vs threads=1 in permille (1000 = no change), embedded in
    // the names so the JSON report records the scaling curve.
    for (name, runs) in [("chaos", &chaos), ("fuzz", &fuzz)] {
        let base = runs[0].1;
        for &(t, s, _) in runs.iter() {
            let permille = (base / s * 1000.0).round() as u64;
            group.bench_function(format!("speedup_permille/{name}/threads={t}={permille}"), |b| {
                b.iter(|| black_box(permille))
            });
        }
    }
    // Honest timings at the extremes of the sweep.
    for &t in &[1usize, 4] {
        group.bench_function(format!("chaos_matrix/threads={t}"), |b| {
            par::set_thread_override(Some(t));
            b.iter(|| black_box(run_scenarios(seed)));
            par::set_thread_override(None);
        });
        group.bench_function(format!("fuzz_sweep_quick/threads={t}"), |b| {
            par::set_thread_override(Some(t));
            b.iter(|| {
                black_box(run_sweep(&FuzzConfig { seed: 7, mutations_per_target: 200 }))
            });
            par::set_thread_override(None);
        });
    }
    group.finish();
}

bench_group!(benches, parallel_scaling);
bench_main!(benches);
