//! **Ablation C (§3.3)** — temporal token deltas and the global+local
//! channel design.
//!
//! Paper proposals: (1) "for subsequent frames, we can encode only the
//! differences from the preceding frame"; (2) the two-step global+local
//! encoding prevents "the potential loss of global information, such as
//! the overall body pose, caused by the segmentation of human models".

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bench_scene, report, report_header};
use semholo::text::{TextConfig, TextPipeline};
use semholo::{Content, SemanticPipeline};
use std::hint::black_box;

fn run(config: TextConfig, frames: usize) -> (f64, f64, f64) {
    let scene = bench_scene(2.0);
    let mut p = TextPipeline::new(config, 42);
    let mut first_bytes = 0.0;
    let mut rest_bytes = 0.0;
    let mut chamfer_sum = 0.0;
    for i in 0..frames {
        let frame = scene.frame(i);
        let enc = p.encode(&frame).unwrap();
        if i == 0 {
            first_bytes = enc.payload.len() as f64;
        } else {
            rest_bytes += enc.payload.len() as f64;
        }
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Cloud(_) = &rec.content else { unreachable!() };
        let q = p.quality(&frame, &rec.content);
        chamfer_sum += q.chamfer.unwrap_or(f32::NAN) as f64;
    }
    (first_bytes, rest_bytes / (frames - 1) as f64, chamfer_sum / frames as f64)
}

fn ablation(c: &mut Criterion) {
    let frames = 8;
    let (full_first, full_rest, full_q) =
        run(TextConfig { use_delta: false, use_global_channel: true, ..Default::default() }, frames);
    let (delta_first, delta_rest, delta_q) =
        run(TextConfig { use_delta: true, use_global_channel: true, ..Default::default() }, frames);
    report_header("Ablation C.1: full captions vs temporal deltas (bytes per frame)");
    report(&format!(
        "full captions:   first {:.0} B, subsequent mean {:.0} B (chamfer {:.1} mm)",
        full_first,
        full_rest,
        full_q * 1000.0
    ));
    report(&format!(
        "delta captions:  first {:.0} B, subsequent mean {:.0} B (chamfer {:.1} mm)",
        delta_first,
        delta_rest,
        delta_q * 1000.0
    ));
    report(&format!(
        "delta saving on steady-state frames: {:.1}x (paper: inter-frame differences are small)",
        full_rest / delta_rest.max(1.0)
    ));
    assert!(delta_rest < full_rest, "deltas must shrink steady-state frames");
    assert!((delta_q - full_q).abs() < 0.03, "delta coding must not change reconstruction quality");

    // Global channel on/off with a deliberately coarse local vocabulary
    // (where the global pose correction matters most).
    let coarse = TextConfig { vocabulary: 8, use_delta: false, use_global_channel: true, ..Default::default() };
    let coarse_off = TextConfig { vocabulary: 8, use_delta: false, use_global_channel: false, ..Default::default() };
    let (_, _, with_global) = run(coarse, 4);
    let (_, _, without_global) = run(coarse_off, 4);
    report_header("Ablation C.2: global+local channels vs flat local coding (8-token vocabulary)");
    report(&format!("with global channel:    chamfer {:.2} mm", with_global * 1000.0));
    report(&format!("without global channel: chamfer {:.2} mm", without_global * 1000.0));
    assert!(
        with_global <= without_global * 1.05,
        "global channel must not hurt: {with_global} vs {without_global}"
    );

    let mut group = c.benchmark_group("ablation_text");
    group.sample_size(10);
    let scene = bench_scene(0.5);
    let mut p = TextPipeline::new(TextConfig::default(), 42);
    let f0 = scene.frame(0);
    let _ = p.encode(&f0).unwrap(); // cold start
    let f1 = scene.frame(1);
    group.bench_function("text_encode_delta_frame", |b| b.iter(|| p.encode(black_box(&f1)).unwrap()));
    let enc = p.encode(&f1).unwrap();
    group.bench_function("text_decode_frame", |b| b.iter(|| p.decode(black_box(&enc.payload)).unwrap()));
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
