//! **Ablation B (§3.2)** — fine-tune vs. retrain, and slimmable widths.
//!
//! Paper proposals: (1) "once a user-specific NeRF model has been
//! trained, there is no need to retrain the model from scratch" — per-
//! frame fine-tuning should reach target quality in far fewer steps;
//! (2) slimmable sub-networks trade reconstruction quality for speed so
//! the model width can follow the delivered image resolution.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{report, report_header};
use holo_capture::camera::{Camera, CameraIntrinsics};
use holo_capture::noise::DepthNoiseModel;
use holo_capture::render::{render_rgbd, ShadingConfig};
use holo_compress::texture::Texture;
use holo_math::{Pcg32, Vec3};
use holo_mesh::sdf::SdfSphere;
use holo_neural::nerf::{NerfField, VolumeRenderer};
use holo_neural::train::{psnr, RayDataset, TrainConfig, Trainer};
use std::hint::black_box;

/// Views of a sphere scene whose center moves frame to frame (the
/// "changed pixels" of a live stream).
fn scene_views(center: Vec3, n: usize, res: u32, seed: u64) -> Vec<(Camera, Texture)> {
    let sdf = SdfSphere { center, radius: 0.55 };
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|i| {
            let theta = std::f32::consts::TAU * i as f32 / n as f32;
            let eye = Vec3::new(2.0 * theta.cos(), 0.4, 2.0 * theta.sin());
            let cam = Camera::look_at(CameraIntrinsics::from_fov(res, res, 0.9), eye, Vec3::ZERO);
            let frame = render_rgbd(
                &sdf,
                &cam,
                &DepthNoiseModel::none(),
                &ShadingConfig { skin_above_y: 10.0, ..Default::default() },
                &mut rng,
            );
            (cam, frame.color)
        })
        .collect()
}

fn ablation(c: &mut Criterion) {
    let cfg = TrainConfig { steps: 400, batch: 24, lr: 2e-3, t_near: 0.5, t_far: 4.5 };
    let res = 12u32;

    // --- Part 1: fine-tune vs retrain. ---
    let frame_a = RayDataset::from_views(&scene_views(Vec3::ZERO, 3, res, 1));
    let frame_b = RayDataset::from_views(&scene_views(Vec3::new(0.12, 0.0, 0.0), 3, res, 1));
    let mut pre = NerfField::new(4, 24, 3, &mut Pcg32::new(5));
    let mut trainer = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 6);
    trainer.train(&mut pre, &frame_a, &cfg);
    let target_loss = 0.02f32;
    let mut fine = pre.clone();
    let fine_steps = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 7)
        .train_to_loss(&mut fine, &frame_b, &cfg, target_loss, 800);
    let mut scratch = NerfField::new(4, 24, 3, &mut Pcg32::new(55));
    let scratch_steps = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 7)
        .train_to_loss(&mut scratch, &frame_b, &cfg, target_loss, 800);
    report_header("Ablation B.1: per-frame fine-tune vs retrain-from-scratch (steps to reach loss 0.02)");
    report(&format!("fine-tune from pre-trained weights: {fine_steps:>5} steps"));
    report(&format!("retrain from scratch:               {scratch_steps:>5} steps"));
    report(&format!(
        "speedup: {:.1}x (paper: fine-tuning should make continuous NeRF training feasible)",
        scratch_steps as f64 / fine_steps.max(1) as f64
    ));
    assert!(fine_steps * 2 < scratch_steps + 1, "fine-tuning must be much cheaper");

    // --- Part 2: slimmable widths. ---
    // Train sandwich-style at several widths, then compare quality and
    // cost per width — the §3.2 resolution ladder coupling.
    let views = scene_views(Vec3::ZERO, 4, res, 2);
    let (held_out, train_views) = views.split_first().unwrap();
    let data = RayDataset::from_views(train_views);
    let mut field = NerfField::new(4, 48, 3, &mut Pcg32::new(9));
    let mut opt = holo_neural::mlp::Adam::new(&field.mlp, 2e-3);
    let renderer = VolumeRenderer::new(10, Vec3::ZERO);
    let widths = [8usize, 16, 48];
    let mut rng = Pcg32::new(10);
    for step in 0..1200 {
        field.set_active_width(widths[step % widths.len()]);
        field.mlp.zero_grad();
        for _ in 0..16 {
            let r = &data.rays[rng.index(data.len())];
            renderer.render_and_backward(&mut field, &r.ray, cfg.t_near, cfg.t_far, r.target);
        }
        opt.step(&mut field.mlp);
    }
    report_header("Ablation B.2: slimmable sub-network width vs quality and cost");
    report(&format!("{:>8} {:>14} {:>16}", "width", "PSNR (dB)", "FLOPs/query"));
    let t = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 11);
    let mut psnrs = Vec::new();
    for &w in &widths {
        field.set_active_width(w);
        let img = t.render_image(&field, &held_out.0, &cfg);
        let p = psnr(&img, &held_out.1);
        report(&format!("{:>8} {:>14.1} {:>16.0}", w, p, field.flops_per_query()));
        psnrs.push(p);
    }
    assert!(
        *psnrs.last().unwrap() >= psnrs.first().unwrap() - 1.0,
        "full width must not be clearly worse than the slimmest"
    );

    let mut group = c.benchmark_group("ablation_nerf");
    group.sample_size(10);
    field.set_active_width(48);
    let ray = holo_math::Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z);
    group.bench_function("volume_render_full_width", |b| {
        b.iter(|| renderer.render(black_box(&field), &ray, 0.5, 4.5))
    });
    group.bench_function("finetune_step_batch16", |b| {
        b.iter(|| {
            field.mlp.zero_grad();
            for _ in 0..16 {
                let r = &data.rays[rng.index(data.len())];
                renderer.render_and_backward(&mut field, &r.ray, cfg.t_near, cfg.t_far, r.target);
            }
        })
    });
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
