//! **Ablation A (§3.1)** — the foveal-area trade-off and saccade
//! prediction.
//!
//! Paper: "there exists a trade-off between the communication overhead
//! for delivering the 3D mesh for the foveal area and the reconstruction
//! overhead for peripheral regions. A larger foveal area implies a higher
//! bandwidth consumption [but] could alleviate the burden of refining
//! the mesh generated from keypoints." And saccade-landing prediction is
//! proposed to keep the fovea ahead of the eye. This bench sweeps the
//! foveal radius and toggles prediction, reporting bandwidth and
//! true-gaze foveal quality.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bandwidth_at_30fps, bench_scene, mbps, report, report_header};
use semholo::foveated::{FoveatedConfig, FoveatedPipeline};
use semholo::{Content, SemanticPipeline};
use std::hint::black_box;

fn run_radius(radius: f32, predict: bool, frames: usize) -> (f64, f64) {
    let scene = bench_scene(2.0);
    let mut p = FoveatedPipeline::new(
        FoveatedConfig {
            foveal_radius_deg: radius,
            peripheral_resolution: 48,
            predict_saccades: predict,
            ..Default::default()
        },
        2.0,
        42,
    );
    let mut bytes = 0usize;
    let mut chamfer_sum = 0.0f64;
    let mut chamfer_n = 0usize;
    for i in 0..frames {
        let frame = scene.frame(i * 3); // spread over the clip
        let enc = p.encode(&frame).unwrap();
        bytes += enc.payload.len();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(_) = &rec.content else { unreachable!() };
        let q = p.quality(&frame, &rec.content);
        if let Some(c) = q.chamfer {
            if c.is_finite() {
                chamfer_sum += c as f64;
                chamfer_n += 1;
            }
        }
    }
    (bytes as f64 / frames as f64, chamfer_sum / chamfer_n.max(1) as f64)
}

fn ablation(c: &mut Criterion) {
    report_header("Ablation A: foveal radius sweep (bandwidth vs foveal quality at the true gaze)");
    report(&format!(
        "{:>12} {:>14} {:>14} {:>22}",
        "radius(deg)", "payload(B)", "bw@30fps", "foveal chamfer(mm)"
    ));
    let mut prev_bytes = 0.0;
    let mut results = Vec::new();
    for radius in [4.0f32, 8.0, 12.0, 20.0, 30.0] {
        let (bytes, chamfer) = run_radius(radius, true, 6);
        report(&format!(
            "{:>12.0} {:>14.0} {:>14} {:>22.2}",
            radius,
            bytes,
            mbps(bandwidth_at_30fps(bytes as usize)),
            chamfer * 1000.0
        ));
        assert!(bytes >= prev_bytes * 0.8, "bandwidth should broadly grow with radius");
        prev_bytes = bytes;
        results.push((radius, bytes, chamfer));
    }
    // Trade-off shape: the largest fovea costs the most bandwidth.
    assert!(results.last().unwrap().1 > results.first().unwrap().1, "bandwidth must grow with radius");

    // Saccade prediction on/off: measure the *gaze aiming error* (the
    // angular distance between the fovea the sender encoded and where the
    // eye actually is at display time) densely across a long trace, and
    // the resulting fovea-miss rate. Prediction only matters during
    // saccades, so the dense sampling is what exposes it.
    let fovea_deg = 10.0f32;
    let aim = |predict: bool| -> (f64, f64) {
        let mut p = FoveatedPipeline::new(
            FoveatedConfig { foveal_radius_deg: fovea_deg, predict_saccades: predict, ..Default::default() },
            20.0,
            42,
        );
        let display_delay = 0.05f32; // extract + network + recon headroom
        let mut err_sum = 0.0f64;
        let mut misses = 0usize;
        let n = 600; // 20 s at 30 FPS
        for i in 0..n {
            let t = i as f32 / 30.0;
            let aimed = p.predicted_gaze_at(t);
            let actual = p.true_gaze_at(t + display_delay);
            let e = aimed.distance(actual) as f64;
            err_sum += e;
            if e > fovea_deg as f64 * 0.5 {
                misses += 1;
            }
        }
        (err_sum / n as f64, misses as f64 / n as f64)
    };
    let (err_with, miss_with) = aim(true);
    let (err_without, miss_without) = aim(false);
    report(&format!(
        "gaze aiming error @10 deg fovea over 20 s: {:.2} deg with prediction vs {:.2} deg without",
        err_with, err_without
    ));
    report(&format!(
        "fovea-miss rate (eye outside half the fovea): {:.1}% with prediction vs {:.1}% without",
        miss_with * 100.0,
        miss_without * 100.0
    ));
    assert!(
        err_with <= err_without * 1.05,
        "prediction must not clearly increase aiming error: {err_with} vs {err_without}"
    );
    assert!(
        miss_with <= miss_without,
        "prediction must not increase the fovea-miss rate: {miss_with} vs {miss_without}"
    );

    let mut group = c.benchmark_group("ablation_foveation");
    group.sample_size(10);
    let scene = bench_scene(1.0);
    let mut p = FoveatedPipeline::new(FoveatedConfig::default(), 1.0, 42);
    let frame = scene.frame(2);
    group.bench_function("foveated_encode", |b| b.iter(|| p.encode(black_box(&frame)).unwrap()));
    let enc = p.encode(&frame).unwrap();
    group.bench_function("foveated_decode", |b| b.iter(|| p.decode(black_box(&enc.payload)).unwrap()));
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
