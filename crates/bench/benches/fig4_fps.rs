//! **Figure 4** — reconstruction FPS vs. output resolution.
//!
//! Paper: on an NVIDIA A100, X-Avatar's keypoint-to-mesh reconstruction
//! runs below 3 FPS even at resolution 128 and below 1 FPS above, "far
//! below the required 30 FPS for real-time telepresence"; an RTX 3080
//! laptop GPU cannot handle resolutions 512 and 1024 at all.
//!
//! We report two columns: the *measured* wall-clock FPS of our own CPU
//! reconstruction (same O(R^2) extraction work, analytic field), and the
//! *modeled* FPS of an X-Avatar-class neural implicit on the paper's
//! devices from the roofline cost model (calibration in `holo-gpu`).

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bench_scene, report, report_header};
use holo_gpu::workloads::reconstruction_workload;
use holo_gpu::Device;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::SemanticPipeline;
use std::hint::black_box;
use std::time::Instant;

fn fig4(c: &mut Criterion) {
    let scene = bench_scene(1.0);
    let frame = scene.frame(5);
    let a100 = Device::a100();
    let rtx = Device::rtx3080_laptop();
    let mobile = Device::mobile_soc();

    report_header("Figure 4: reconstruction FPS vs resolution (paper A100: <3 FPS @128, <1 above; RTX 3080 laptop OOM @512/1024)");
    report(&format!(
        "{:>10} {:>16} {:>14} {:>18} {:>14}",
        "resolution", "CPU measured", "A100 modeled", "RTX3080L modeled", "mobile XR SoC"
    ));
    let mut a100_fps = Vec::new();
    for res in [128u32, 256, 512, 1024] {
        let mut p = KeypointPipeline::new(KeypointConfig { resolution: res, ..Default::default() }, 42);
        let enc = p.encode(&frame).unwrap();
        let t0 = Instant::now();
        let _ = p.decode(&enc.payload).unwrap();
        let cpu_fps = 1.0 / t0.elapsed().as_secs_f64();
        let w = reconstruction_workload(res, None).workload;
        let fmt = |d: &Device| match d.fps(&w) {
            Ok(f) => format!("{f:.2} FPS"),
            Err(_) => "OOM".to_string(),
        };
        if let Ok(f) = a100.fps(&w) {
            a100_fps.push(f);
        }
        report(&format!(
            "{:>10} {:>13.2} FPS {:>14} {:>18} {:>14}",
            res,
            cpu_fps,
            fmt(&a100),
            fmt(&rtx),
            fmt(&mobile)
        ));
    }
    // Paper-shape assertions.
    assert!(a100_fps[0] < 3.0, "A100 @128 must be below 3 FPS (paper)");
    assert!(a100_fps[1..].iter().all(|&f| f < 1.0), "A100 above 128 must be below 1 FPS");
    assert!(rtx.fps(&reconstruction_workload(512, None).workload).is_err(), "RTX 3080 must OOM at 512");
    assert!(rtx.fps(&reconstruction_workload(1024, None).workload).is_err(), "RTX 3080 must OOM at 1024");
    report("all far below the 30 FPS required for real-time telepresence (paper's conclusion)");

    // Criterion: measured reconstruction at the two interactive-adjacent
    // resolutions.
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for res in [128u32, 256] {
        let mut p = KeypointPipeline::new(KeypointConfig { resolution: res, ..Default::default() }, 42);
        let enc = p.encode(&frame).unwrap();
        let payload = enc.payload.clone();
        group.bench_function(format!("cpu_reconstruct_res{res}"), |b| {
            b.iter(|| p.decode(black_box(&payload)).unwrap())
        });
    }
    group.finish();
}

bench_group!(benches, fig4);
bench_main!(benches);
