//! **UEP dominance** — what importance-weighted protection buys over
//! uniform protection at an equal redundancy budget.
//!
//! Runs the full weighted-vs-uniform sweep (`holo-chaos::uep`) in
//! seeded virtual time and embeds the measured usable-frame rates in
//! the benchmark names, so `BENCH_uep_dominance.json` records the
//! head-to-head alongside the timings. The budget twins are asserted
//! here too: both policies must spend identical parity frames and
//! scheduled retries, or the comparison is meaningless.

use holo_bench::{report, report_header};
use holo_chaos::{run_uep_scenarios, run_uep_stream_scenario, FaultPlan, StreamConfig};
use holo_net::wire::PayloadKind;
use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_uep::UepPolicy;
use std::hint::black_box;

fn uep_dominance(c: &mut Criterion) {
    let seed = 42;

    report_header("UEP dominance: weighted vs uniform at an equal redundancy budget");
    let cells = run_uep_scenarios(seed);
    let mut strict = 0usize;
    let mut dominates = true;
    for pair in cells.chunks(2) {
        let (u, w) = (&pair[0], &pair[1]);
        assert_eq!(u.parity_frames, w.parity_frames, "{}: parity budgets differ", u.plan);
        assert_eq!(u.retries_scheduled, w.retries_scheduled, "{}: retry budgets differ", u.plan);
        if w.usable > u.usable {
            strict += 1;
        }
        if w.usable < u.usable {
            dominates = false;
        }
        report(&format!(
            "{:<20} uniform usable {:>5.3} | weighted usable {:>5.3} (abandoned {:>2}, lost {:>2})",
            u.plan, u.usable_rate, w.usable_rate, w.abandoned, w.lost,
        ));
    }
    report(&format!(
        "weighted dominates: {dominates}, strictly better in {strict}/{} plans",
        cells.len() / 2,
    ));

    let mut group = c.benchmark_group("uep_dominance");
    group.sample_size(10);
    // Record the measured usable rates in the report JSON via the
    // bench names (milli-usable-rate keeps the names integral).
    for o in &cells {
        let permille = (o.usable_rate * 1000.0).round() as u64;
        group.bench_function(
            format!("usable_permille/{}/{}={}", o.plan, o.policy, permille),
            |b| b.iter(|| black_box(permille)),
        );
    }
    group.bench_function(format!("dominates={}", u8::from(dominates)), |b| {
        b.iter(|| black_box(dominates))
    });
    group.bench_function(format!("strict_wins={strict}"), |b| b.iter(|| black_box(strict)));
    // Honest timings: the queue-pressure cell under both policies.
    let cfg = StreamConfig::default();
    let squeeze = FaultPlan::burst5_squeeze(seed);
    group.bench_function("stream_squeeze_uniform", |b| {
        b.iter(|| {
            black_box(run_uep_stream_scenario(
                &squeeze,
                &UepPolicy::uniform(),
                &cfg,
                PayloadKind::Mesh,
            ))
        })
    });
    group.bench_function("stream_squeeze_weighted", |b| {
        b.iter(|| {
            black_box(run_uep_stream_scenario(
                &squeeze,
                &UepPolicy::weighted(),
                &cfg,
                PayloadKind::Mesh,
            ))
        })
    });
    group.finish();
}

bench_group!(benches, uep_dominance);
bench_main!(benches);
