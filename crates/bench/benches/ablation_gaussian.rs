//! **Ablation: the amortized gaussian tier** — prebuild density vs.
//! quality vs. startup bytes, and what the update stream costs.
//!
//! The fourth tier's defining trade is *where the bytes live*: the
//! prebuild blob carries all geometry (its size scales with splat
//! density), while the per-frame update stream carries only pose and
//! region conditioning (its size does not). This bench sweeps the fit
//! voxel size to map prebuild bytes against reconstruction quality,
//! shows the update stream is density-invariant, and times the three
//! hot paths: offline fit, update encode, update decode + splat posing.

use holo_bench::{bandwidth_at_30fps, bench_scene, mbps, report, report_header};
use holo_gaussian::{
    encode_prebuild, fit_avatar, FitConfig, GaussianPipeline, GaussianUpdateConfig,
    GaussianUpdateDecoder, GaussianUpdateEncoder,
};
use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use semholo::SemanticPipeline;
use std::hint::black_box;

fn sweep_density() -> Vec<(f32, usize, usize, f64, usize)> {
    let scene = bench_scene(0.5);
    let mut rows = Vec::new();
    for voxel in [0.04f32, 0.025, 0.015, 0.01] {
        let fit = FitConfig { voxel_size: voxel, ..Default::default() };
        let mut p = GaussianPipeline::new(fit, GaussianUpdateConfig::default());
        p.quality_reference_resolution = 64;
        let frame = scene.frame(0);
        let key = p.encode(&frame).expect("prebuild");
        let _ = p.decode(&key.payload).expect("sync the delta chain");
        let update = p.encode(&scene.frame(4)).expect("update");
        let rec = p.decode(&update.payload).expect("decode");
        let chamfer = p.quality(&scene.frame(4), &rec.content).chamfer.unwrap_or(f64::NAN as f32);
        rows.push((
            voxel,
            p.avatar().map(|a| a.splats.len()).unwrap_or(0),
            p.prebuild_bytes(),
            chamfer as f64 * 1000.0,
            update.payload.len(),
        ));
    }
    rows
}

fn ablation(c: &mut Criterion) {
    report_header("Ablation: gaussian prebuild density vs quality vs startup bytes (96x72 / 4 cams)");
    report(&format!(
        "{:>10} {:>10} {:>14} {:>14} {:>12}",
        "voxel(m)", "splats", "prebuild(B)", "chamfer(mm)", "update(B)"
    ));
    let rows = sweep_density();
    for (voxel, splats, prebuild, chamfer, update) in &rows {
        report(&format!(
            "{:>10.3} {:>10} {:>14} {:>14.1} {:>12}",
            voxel, splats, prebuild, chamfer, update
        ));
    }
    // Paper-shape claims:
    // (1) density costs startup bytes, never steady-state — and past
    // the capture resolution it stops buying anything: quality is
    // capture-bound, so the sweep's chamfer stays flat (within 10%)
    // while the prebuild grows.
    let coarse = &rows[0];
    let dense = rows.last().unwrap();
    assert!(dense.2 > coarse.2 + coarse.2 / 2, "denser fit must grow the prebuild");
    assert!(
        (dense.3 - coarse.3).abs() < coarse.3 * 0.10,
        "splat-cloud quality is capture-bound; density must not move it: {:.1} vs {:.1} mm",
        dense.3,
        coarse.3
    );
    // (2) the update stream is density-invariant: its payload carries
    // pose + region conditioning, not geometry.
    assert!(
        dense.4.abs_diff(coarse.4) <= 8,
        "update bytes must not scale with splat count: {} vs {}",
        dense.4,
        coarse.4
    );
    report(&format!(
        "prebuild grows {:.1}x ({} -> {} B) while updates stay ~{} B: geometry amortized, conditioning streamed",
        dense.2 as f64 / coarse.2 as f64,
        coarse.2,
        dense.2,
        dense.4
    ));
    report(&format!(
        "steady-state update stream: {} (vs mesh tiers in the Mbps range)",
        mbps(bandwidth_at_30fps(dense.4))
    ));

    // --- Criterion timings of the tier's three hot paths. ---
    let scene = bench_scene(0.5);
    let frame = scene.frame(2);
    let fit_cfg = FitConfig::default();
    let mut group = c.benchmark_group("ablation_gaussian");
    group.sample_size(10);
    group.bench_function("fit_prebuild", |b| {
        b.iter(|| encode_prebuild(&fit_avatar(black_box(&frame), &fit_cfg)))
    });
    let mut p = GaussianPipeline::default();
    let key = p.encode(&frame).expect("prebuild");
    let cfg = GaussianUpdateConfig::default();
    let mut enc = GaussianUpdateEncoder::new(cfg);
    let state = holo_gaussian::AvatarState::from_pose(frame.params.clone());
    let first = enc.encode(&state);
    group.bench_function("update_encode", |b| {
        b.iter(|| {
            let mut e = GaussianUpdateEncoder::new(cfg);
            e.encode(black_box(&state))
        })
    });
    group.bench_function("update_decode", |b| {
        b.iter(|| {
            let mut d = GaussianUpdateDecoder::new();
            d.decode(black_box(&first), &cfg).unwrap()
        })
    });
    group.bench_function("decode_and_pose", |b| {
        b.iter(|| p.decode(black_box(&key.payload)).unwrap())
    });
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
