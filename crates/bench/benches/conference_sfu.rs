//! **Conference SFU** — empirical max room size per pipeline on a
//! 100 Mbps access link, measured by `holo-conf`'s event-driven SFU
//! simulation and compared against `core::conference`'s closed-form
//! mean-bandwidth bound.
//!
//! The closed-form bound only counts mean bits; the simulation also
//! sees SFU egress queueing, keyframe/delta loss coupling, and the
//! latency criterion, so its answer is at most the closed-form one.
//! The measured max sizes are embedded in the benchmark names, so
//! `BENCH_conference_sfu.json` records them alongside the timings.

use holo_bench::{report, report_header};
use holo_conf::{measure_max_room_size, CapacityConfig, ParticipantConfig, Room, RoomConfig};
use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use semholo::image::{ImageConfig, ImagePipeline};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};
use std::hint::black_box;

fn make_pipeline(kind: &str) -> Box<dyn SemanticPipeline> {
    match kind {
        "keypoint" => Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 32, ..Default::default() },
            42,
        )),
        "image" => Box::new(ImagePipeline::new(ImageConfig::default(), 42)),
        "text" => Box::new(TextPipeline::new(TextConfig::default(), 42)),
        other => panic!("unknown pipeline kind {other}"),
    }
}

fn conference_sfu(c: &mut Criterion) {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.4);
    let base_cfg = CapacityConfig {
        frames: if quick { 4 } else { 8 },
        access_bps: 100e6,
        cap: if quick { 32 } else { 64 },
        ..Default::default()
    };

    report_header("Conference SFU: empirical max room size on a 100 Mbps access link");
    report(&format!(
        "fit = every subscriber >={:.0}% usable frames within its latency budget; probe cap {}",
        base_cfg.criteria.min_usable_rate * 100.0,
        base_cfg.cap,
    ));

    let mut measurements = Vec::new();
    // Keypoint reconstruction is interactive; image (NeRF) and text
    // (generative) reconstruction carry a seconds-class constant cost,
    // so they get a non-interactive budget — otherwise the latency
    // criterion, not the network, decides capacity.
    for (kind, budget_ms) in [("keypoint", 400.0), ("image", 5000.0), ("text", 5000.0)] {
        let mut cap_cfg = base_cfg.clone();
        cap_cfg.criteria.max_mean_e2e_ms = budget_ms;
        let mut make = || make_pipeline(kind);
        let m = measure_max_room_size(&scene, &cap_cfg, &mut make).expect("capacity measurement");
        report(&format!(
            "{:>9}: stream {:7.3} Mbps, budget {:4.0} ms -> simulated max {:>3}{}  (closed-form bound {})",
            kind,
            m.stream_bps / 1e6,
            budget_ms,
            m.max_size,
            if m.capped { "+" } else { " " },
            m.closed_form,
        ));
        for p in &m.probes {
            report(&format!(
                "           probe n={:<3} min_usable {:.3} mean_e2e {:7.1} ms -> {}",
                p.size,
                p.min_usable_rate,
                p.mean_e2e_ms,
                if p.fits { "fits" } else { "fails" },
            ));
        }
        measurements.push((kind, m));
    }
    report(
        "simulated <= closed-form: the bound ignores queueing, loss coupling, and latency.",
    );

    // Observability: one traced 4-party room. The per-stage table goes
    // into the bench report; the chrome://tracing JSON (virtual-time
    // spans, byte-identical per seed) lands next to the BENCH JSONs.
    {
        let room_cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(4, 100e6),
            frames: if quick { 2 } else { 6 },
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(room_cfg).unwrap();
        let mut pipelines = vec![make_pipeline("keypoint")];
        // Land next to the BENCH_*.json reports at the repo root, not in
        // the bench package dir cargo runs us from.
        let trace_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../TRACE_conference_room.json");
        let (_, trace) = room
            .run_traced(&scene, &mut pipelines, &trace_path)
            .expect("traced room");
        report("traced 4-party room (virtual-time spans -> TRACE_conference_room.json):");
        for line in trace.table().lines() {
            report(&format!("  {line}"));
        }
    }

    let mut group = c.benchmark_group("conference_sfu");
    group.sample_size(10);
    // Record the measured sizes in the report JSON via the bench names.
    for (kind, m) in &measurements {
        let size = m.max_size;
        group.bench_function(format!("max_room/{kind}={size}"), |b| {
            b.iter(|| black_box(size))
        });
    }
    // Honest timing: one 4-party keypoint room, end to end.
    group.bench_function("room4_keypoint", |b| {
        b.iter(|| {
            let room_cfg = RoomConfig {
                participants: ParticipantConfig::uniform_room(4, 100e6),
                frames: 4,
                share_encoder: true,
                ..Default::default()
            };
            let mut room = Room::new(room_cfg).unwrap();
            let mut pipelines = vec![make_pipeline("keypoint")];
            black_box(room.run(&scene, &mut pipelines).unwrap())
        })
    });
    group.finish();
}

bench_group!(benches, conference_sfu);
bench_main!(benches);
