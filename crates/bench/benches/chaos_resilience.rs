//! **Chaos resilience** — what the recovery mechanisms buy under
//! deterministic fault injection, measured by `holo-chaos`.
//!
//! The scenario matrix (fault plans × protection mechanisms over a
//! 30 fps hologram stream, plus ladder-protected rooms) runs in seeded
//! virtual time, so every number here is byte-reproducible. The
//! measured usable-frame rates are embedded in the benchmark names, so
//! `BENCH_chaos_resilience.json` records them alongside the timings —
//! including the headline cell: FEC(4,1)+retransmit vs the unprotected
//! baseline under ~5% Gilbert–Elliott burst loss.

use holo_bench::{report, report_header};
use holo_chaos::{
    room_collapse_plan, run_room_scenario, run_stream_scenario, FaultPlan, Mechanisms,
    StreamConfig,
};
use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use std::hint::black_box;

fn chaos_resilience(c: &mut Criterion) {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let seed = 42;
    let cfg = StreamConfig {
        frames: if quick { 60 } else { 150 },
        ..Default::default()
    };

    report_header("Chaos resilience: usable frames under injected faults");
    report(&format!(
        "stream: {} frames at {:.0} fps, {} B payloads, {:.0} Mbps link, seed {seed}",
        cfg.frames,
        cfg.fps,
        cfg.payload_bytes,
        cfg.link_bps / 1e6,
    ));

    let plans = [FaultPlan::burst5(seed), FaultPlan::flapping(seed)];
    let mechanisms =
        [Mechanisms::baseline(), Mechanisms::fec(), Mechanisms::retransmit(), Mechanisms::full()];
    let mut cells = Vec::new();
    for plan in &plans {
        for mech in &mechanisms {
            let o = run_stream_scenario(plan, mech, &cfg);
            report(&format!(
                "{:<10} {:<22} usable {:>5.3} delivered {:>3}/{:<3} fec {:>2} retx {:>3} overhead {:.2}x",
                o.plan,
                o.mechanism,
                o.usable_rate,
                o.delivered,
                o.frames,
                o.recovered_fec,
                o.recovered_retx,
                o.overhead,
            ));
            cells.push(o);
        }
    }
    let base = cells.iter().find(|o| o.plan == "burst5" && o.mechanism == "baseline").unwrap();
    let full = cells
        .iter()
        .find(|o| o.plan == "burst5" && o.mechanism == "fec(4,1)+retransmit")
        .unwrap();
    report(&format!(
        "headline: fec(4,1)+retransmit keeps {:.1}x the baseline's usable frames under burst5",
        full.usable as f64 / (base.usable.max(1)) as f64,
    ));

    // The ladder scenario: a starved subscriber kept flowing by
    // mesh -> keypoints -> text degradation.
    let room = run_room_scenario(&room_collapse_plan(seed), 3, if quick { 8 } else { 12 }, 2);
    report(&format!(
        "room collapse: starved usable {:.3}, {} degraded frames, {} downgrades, kept flowing: {}",
        room.starved_usable_rate, room.degraded, room.ladder_downgrades, room.kept_flowing,
    ));

    let mut group = c.benchmark_group("chaos_resilience");
    group.sample_size(10);
    // Record the measured usable rates in the report JSON via the
    // bench names (milli-usable-rate keeps the names integral).
    for o in &cells {
        let permille = (o.usable_rate * 1000.0).round() as u64;
        group.bench_function(
            format!("usable_permille/{}/{}={}", o.plan, o.mechanism, permille),
            |b| b.iter(|| black_box(permille)),
        );
    }
    let flowing = if room.kept_flowing { 1 } else { 0 };
    group.bench_function(format!("ladder_kept_flowing={flowing}"), |b| {
        b.iter(|| black_box(flowing))
    });
    // Honest timings: one protected stream cell and the ladder room.
    group.bench_function("stream_burst5_full_protection", |b| {
        b.iter(|| black_box(run_stream_scenario(&plans[0], &Mechanisms::full(), &cfg)))
    });
    group.bench_function("room_collapse_ladder", |b| {
        b.iter(|| black_box(run_room_scenario(&room_collapse_plan(seed), 3, 4, 2)))
    });
    group.finish();
}

bench_group!(benches, chaos_resilience);
bench_main!(benches);
