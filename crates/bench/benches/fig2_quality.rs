//! **Figure 2** — visual quality of keypoint reconstruction vs. output
//! resolution.
//!
//! Paper: meshes reconstructed from keypoints at resolutions 128, 256,
//! 512, 1024 gain detail with resolution ("at the resolution of 1024,
//! the generated mesh is capable of revealing intricate details such as
//! hand joints and facial contours") but "still cannot recover the
//! details of the clothes, such as folds" — and 512 is visually equal to
//! 1024. Matching the paper's setup (keypoints come from the dataset's
//! ground-truth poses, so reconstruction error is purely the model's),
//! we reconstruct from the true pose and measure:
//!
//! - **surface discretization error** (mean |SDF| of mesh vertices against
//!   the exact implicit surface), overall and in the detail-critical
//!   hand region — the "detail rises with resolution" series;
//! - **chamfer against the clothed ground truth** — flat across
//!   resolutions at the cloth-detail floor, the "folds never recovered"
//!   result.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bench_scene, report, report_header};
use holo_body::surface::{BodySdf, SurfaceDetail};
use holo_body::{Joint, Skeleton};
use holo_math::Vec3;
use holo_mesh::sdf::Sdf;
use holo_mesh::sparse::sparse_extract;
use semholo::semantics::mesh_quality;
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let scene = bench_scene(1.0);
    let frame = scene.frame(5);
    let sk = Skeleton::neutral();
    // The exact implicit surface the reconstruction targets (no cloth:
    // keypoints cannot carry it).
    let bare_sdf = BodySdf::from_pose(&sk, &frame.params, SurfaceDetail::bare());
    // The clothed ground truth the viewer compares against.
    let gt_clothed = frame.ground_truth_mesh(256);
    let posed = sk.forward_kinematics(&frame.params);
    let wrists = [posed.position(Joint::LeftWrist), posed.position(Joint::RightWrist)];
    let head = posed.position(Joint::Head);

    let region_error = |mesh: &holo_mesh::TriMesh, centers: &[Vec3], radius: f32| -> (f64, usize) {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for v in &mesh.vertices {
            if centers.iter().any(|c| v.distance(*c) < radius) {
                sum += bare_sdf.distance(*v).abs() as f64;
                n += 1;
            }
        }
        (if n > 0 { sum / n as f64 } else { f64::NAN }, n)
    };

    report_header("Figure 2: reconstruction detail vs resolution (paper: hands/face sharpen with resolution; cloth folds never recovered)");
    report(&format!(
        "{:>10} {:>16} {:>16} {:>12} {:>14} {:>18}",
        "resolution", "surface err(mm)", "hand err(mm)", "hand verts", "face err(mm)", "clothed chamfer(mm)"
    ));
    let mut hand_errors = Vec::new();
    let mut clothed_chamfers = Vec::new();
    for res in [128u32, 256, 512, 1024] {
        let mesh = sparse_extract(&bare_sdf, res, 0.03);
        // Discretization error: exact distance from every vertex to the
        // true implicit surface.
        let overall: f64 = mesh
            .vertices
            .iter()
            .map(|v| bare_sdf.distance(*v).abs() as f64)
            .sum::<f64>()
            / mesh.vertex_count().max(1) as f64;
        let (hand_err, hand_verts) = region_error(&mesh, &wrists, 0.14);
        let (face_err, _) = region_error(&mesh, &[head], 0.16);
        let q = mesh_quality(&gt_clothed, &mesh, 7);
        report(&format!(
            "{:>10} {:>16.3} {:>16.3} {:>12} {:>14.3} {:>18.2}",
            res,
            overall * 1000.0,
            hand_err * 1000.0,
            hand_verts,
            face_err * 1000.0,
            q.chamfer.unwrap() * 1000.0
        ));
        hand_errors.push(hand_err);
        clothed_chamfers.push(q.chamfer.unwrap() as f64);
    }
    // Cloth floor: even a perfect bare reconstruction differs from the
    // clothed truth by this much.
    let bare_ref = sparse_extract(&bare_sdf, 256, 0.03);
    let floor = mesh_quality(&gt_clothed, &bare_ref, 9).chamfer.unwrap() as f64;
    report(&format!(
        "cloth-detail floor: {:.2} mm chamfer — every resolution sits at it (folds are unrecoverable from keypoints)",
        floor * 1000.0
    ));
    // Paper-shape assertions.
    assert!(
        hand_errors[2] < hand_errors[0] * 0.5,
        "hand detail must sharpen with resolution: {hand_errors:?}"
    );
    assert!(
        hand_errors[3] <= hand_errors[2] * 1.5,
        "1024 should not be worse than 512 (paper: visually equal)"
    );
    for &cc in &clothed_chamfers {
        assert!(
            (cc - floor).abs() < floor * 0.35,
            "clothed chamfer {cc} should sit near the cloth floor {floor}"
        );
    }

    // Criterion: the real-time-adjacent reconstruction.
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("bare_surface_extract_res128", |b| {
        b.iter(|| sparse_extract(black_box(&bare_sdf), 128, 0.03))
    });
    group.finish();
}

bench_group!(benches, fig2);
bench_main!(benches);
