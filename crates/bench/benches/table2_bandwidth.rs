//! **Table 2** — required bandwidth (Mbps) at 30 FPS for keypoint-based
//! semantic vs. traditional communication, before and after compression.
//!
//! Paper values: semantic 0.46 / 0.30 Mbps (raw / LZMA, 1.91 KB / 1.23 KB
//! per frame); traditional 95.4 / 10.1 Mbps (raw / Draco, 397.7 KB /
//! 42.1 KB per frame) — savings of ~207x raw and ~34x compressed.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bandwidth_at_30fps, bench_scene, mbps, report, report_header};
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::meshcodec::{decode_mesh, encode_mesh, MeshCodecConfig};
use semholo::traditional::mesh_to_raw_bytes;
use semholo::KeypointPipeline;
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let scene = bench_scene(1.0);

    // --- Semantic side: the 1.91 KB pose payload, LZMA-compressed. ---
    let mut kp = KeypointPipeline::new(Default::default(), 42);
    let (fitted, detected) = kp.fit_frame(&scene.frame(3)).unwrap();
    let mut keypoints = detected;
    keypoints.truncate(holo_body::params::PAYLOAD_KEYPOINTS);
    let payload = holo_body::params::PosePayload::new(fitted, keypoints);
    let pose_raw = payload.to_bytes();
    // Average the compressed size over a clip (it varies per frame).
    let mut comp_total = 0usize;
    let frames = 20;
    for i in 0..frames {
        let (f, d) = kp.fit_frame(&scene.frame(i)).unwrap();
        let mut kps = d;
        kps.truncate(holo_body::params::PAYLOAD_KEYPOINTS);
        let raw = holo_body::params::PosePayload::new(f, kps).to_bytes();
        let comp = lzma_compress(&raw);
        assert_eq!(lzma_decompress(&comp).unwrap(), raw);
        comp_total += comp.len();
    }
    let pose_comp_mean = comp_total / frames;

    // --- Traditional side: the posed template mesh, raw and Draco. ---
    let mesh = scene.frame(3).posed_mesh();
    let mesh_raw = mesh_to_raw_bytes(&mesh);
    let mesh_comp = encode_mesh(&mesh, &MeshCodecConfig::default());
    assert_eq!(decode_mesh(&mesh_comp).unwrap().face_count(), mesh.face_count());

    report_header("Table 2: required bandwidth at 30 FPS (paper: 0.46 / 0.30 / 95.4 / 10.1 Mbps)");
    report(&format!(
        "semantic   w/o compression: {:>8}  ({:.2} KB/frame; paper 1.91 KB -> 0.46 Mbps)",
        mbps(bandwidth_at_30fps(pose_raw.len())),
        pose_raw.len() as f64 / 1024.0
    ));
    report(&format!(
        "semantic   w/  compression: {:>8}  ({:.2} KB/frame; paper 1.23 KB -> 0.30 Mbps)",
        mbps(bandwidth_at_30fps(pose_comp_mean)),
        pose_comp_mean as f64 / 1024.0
    ));
    report(&format!(
        "traditional w/o compression: {:>8} ({:.1} KB/frame; paper 397.7 KB -> 95.4 Mbps)",
        mbps(bandwidth_at_30fps(mesh_raw.len())),
        mesh_raw.len() as f64 / 1024.0
    ));
    report(&format!(
        "traditional w/  compression: {:>8} ({:.1} KB/frame; paper 42.1 KB -> 10.1 Mbps)",
        mbps(bandwidth_at_30fps(mesh_comp.len())),
        mesh_comp.len() as f64 / 1024.0
    ));
    report(&format!(
        "bandwidth savings: {:.0}x raw (paper ~207x), {:.0}x compressed (paper ~34x)",
        mesh_raw.len() as f64 / pose_raw.len() as f64,
        mesh_comp.len() as f64 / pose_comp_mean as f64
    ));
    report(&format!(
        "mesh: {} vertices / {} faces (SMPL-X: 10475 / 20908)",
        mesh.vertex_count(),
        mesh.face_count()
    ));

    // --- Extension row: temporal (inter-frame) mesh coding — the
    // Draco-animation-class upgrade of the traditional baseline
    // (connectivity once, closed-loop position deltas after). ---
    {
        use holo_compress::temporal::{TemporalMeshDecoder, TemporalMeshEncoder};
        let mut tenc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let mut tdec = TemporalMeshDecoder::new();
        let mut delta_total = 0usize;
        let frames = 20;
        let mut key = 0usize;
        for i in 0..frames {
            let m = scene.frame(i).posed_mesh();
            let bytes = tenc.encode(&m);
            tdec.decode(&bytes).unwrap();
            if i == 0 {
                key = bytes.len();
            } else {
                delta_total += bytes.len();
            }
        }
        let mean_delta = delta_total / (frames - 1);
        report(&format!(
            "extension — temporal mesh coding: {:>8} steady-state ({:.1} KB/frame deltas after a {:.1} KB keyframe)",
            mbps(bandwidth_at_30fps(mean_delta)),
            mean_delta as f64 / 1024.0,
            key as f64 / 1024.0,
        ));
        report(
            "  note: deltas of a *parametric* mesh compress to pose-equivalent size, because the pose IS \
its only per-frame innovation; live-captured meshes (changing topology + sensor noise every frame, \
as in the paper's capture pipeline) cannot be delta-coded this way, which is why the paper compares \
against per-frame mesh delivery.",
        );
    }

    // --- Extension row: the amortized gaussian tier — geometry ships
    // once in the prebuild blob, steady state is only pose/region
    // conditioning, landing well under even the semantic pose payload. ---
    {
        use holo_gaussian::GaussianPipeline;
        use semholo::SemanticPipeline;
        let mut p = GaussianPipeline::default();
        let frames = 20;
        let _ = p.encode(&scene.frame(0)).unwrap(); // prebuild + keyframe
        let mut update_total = 0usize;
        for i in 1..frames {
            update_total += p.encode(&scene.frame(i)).unwrap().payload.len();
        }
        let mean_update = update_total / (frames - 1);
        report(&format!(
            "extension — gaussian updates: {:>8} steady-state ({} B/frame after a {:.1} KB one-time prebuild)",
            mbps(bandwidth_at_30fps(mean_update)),
            mean_update,
            p.prebuild_bytes() as f64 / 1024.0,
        ));
        let be = holo_gaussian::break_even_seconds(
            &holo_gaussian::TierCost {
                name: "gaussian".into(),
                prebuild_bytes: p.prebuild_bytes() as u64,
                steady_bps: bandwidth_at_30fps(mean_update),
            },
            &holo_gaussian::TierCost {
                name: "mesh".into(),
                prebuild_bytes: 0,
                steady_bps: bandwidth_at_30fps(mesh_comp.len()),
            },
        );
        report(&format!(
            "  prebuild amortizes against compressed mesh delivery after {be:.2} s of call time"
        ));
    }

    // --- Criterion timings of the codecs themselves. ---
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("lzma_compress_pose_frame", |b| {
        b.iter(|| lzma_compress(black_box(&pose_raw)))
    });
    group.bench_function("draco_encode_mesh_frame", |b| {
        b.iter(|| encode_mesh(black_box(&mesh), &MeshCodecConfig::default()))
    });
    group.bench_function("draco_decode_mesh_frame", |b| {
        b.iter(|| decode_mesh(black_box(&mesh_comp)).unwrap())
    });
    group.finish();
}

bench_group!(benches, table2);
bench_main!(benches);
