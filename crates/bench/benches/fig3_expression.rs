//! **Figure 3** — learned appearance model vs. raw capture on facial
//! expressions.
//!
//! Paper: "the mesh learned by X-Avatar fails to accurately mirror
//! detailed expressions... the person displays an open mouth with a
//! pout. However, the learned mesh only reflects the open-mouth action,
//! missing out on capturing the pouting expression." We reproduce this as
//! a quantitative experiment: drive the expression space with the exact
//! scenario (open mouth + pout), reconstruct it through the learned
//! (low-pass) model, and measure per-component and geometric error.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bench_scene, report, report_header};
use holo_body::expression::ExpressionBasis;
use holo_body::params::EXPRESSION_DIM;
use holo_body::surface::{BodySdf, SurfaceDetail};
use holo_body::Skeleton;
use holo_mesh::sparse::sparse_extract;
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    let basis = ExpressionBasis::standard();
    // The exact Fig. 3 scenario: open mouth + pout.
    let mut truth = [0.0f32; EXPRESSION_DIM];
    truth[0] = 1.0; // jaw_open (coarse)
    truth[3] = 1.0; // pout (fine)
    let learned = basis.learned_reconstruction(&truth);

    report_header("Figure 3: learned model misses fine expressions (paper: open mouth survives, pout is lost)");
    report(&format!("{:>14} {:>8} {:>12} {:>14}", "component", "class", "true coeff", "learned coeff"));
    for (i, comp) in basis.components.iter().enumerate() {
        if truth[i] != 0.0 || learned[i] != 0.0 {
            report(&format!(
                "{:>14} {:>8} {:>12.2} {:>14.2}",
                comp.name,
                if comp.coarse { "coarse" } else { "fine" },
                truth[i],
                learned[i]
            ));
        }
    }
    assert_eq!(learned[0], 1.0, "open mouth must survive the learned model");
    assert_eq!(learned[3], 0.0, "pout must be lost by the learned model");
    report(&format!(
        "expression displacement error (RMS over face): {:.2} mm",
        basis.displacement_error(&truth, &learned) * 1000.0
    ));

    // Geometric version: probe the *mouth region* specifically — the pout
    // is spatially tiny, so a whole-face average washes it out exactly
    // the way a casual glance does; the paper's observation is about
    // looking closely at the mouth.
    let scene = bench_scene(0.2);
    let frame = scene.frame(0);
    let sk = Skeleton::neutral();
    let mut params_true = frame.params.clone();
    params_true.expression = truth;
    let mut params_learned = frame.params.clone();
    params_learned.expression = learned;
    let sdf_true = BodySdf::from_pose(&sk, &params_true, SurfaceDetail::bare());
    let sdf_learned = BodySdf::from_pose(&sk, &params_learned, SurfaceDetail::bare());
    let res = 256;
    let mesh_true = sparse_extract(&sdf_true, res, 0.03);
    // Mouth region: vertices of the true-expression surface near the pout
    // bump; their exact distance to the learned surface is the visible
    // defect.
    let posed = sk.forward_kinematics(&params_true);
    // The pout bump's surface-projected center (bump order follows the
    // non-zero components: [jaw_open, pout]).
    let mouth = sdf_true.bump_centers()[1];
    use holo_mesh::sdf::Sdf;
    let mut max_mm = 0.0f64;
    let mut sum_mm = 0.0f64;
    let mut n = 0usize;
    for v in mesh_true.vertices.iter().filter(|v| v.distance(mouth) < 0.03) {
        let d = sdf_learned.distance(*v).abs() as f64 * 1000.0;
        max_mm = max_mm.max(d);
        sum_mm += d;
        n += 1;
    }
    report(&format!(
        "mouth-region defect (true-expression surface vs learned surface, {n} vertices): mean {:.2} mm, max {:.2} mm",
        sum_mm / n.max(1) as f64,
        max_mm
    ));
    assert!(n > 10, "mouth region must be sampled");
    assert!(max_mm > 2.0, "learned model must visibly lose the pout (max defect {max_mm:.2} mm)");
    // Control: the same probe far from the face shows no difference.
    let knee = posed.position(holo_body::Joint::LeftKnee);
    // Away from the face the two fields are identical, so the *difference*
    // of the probes is exactly zero (each individual probe still carries
    // the mesh's own discretization error).
    let knee_defect = mesh_true
        .vertices
        .iter()
        .filter(|v| v.distance(knee) < 0.1)
        .map(|v| (sdf_learned.distance(*v) - sdf_true.distance(*v)).abs() as f64)
        .fold(0.0, f64::max);
    assert!(knee_defect < 1e-5, "defect must be localized to the face (knee diff {knee_defect})");
    // Control: coarse-only expressions survive unharmed.
    let mut coarse_only = [0.0f32; EXPRESSION_DIM];
    coarse_only[0] = 1.0;
    let coarse_recon = basis.learned_reconstruction(&coarse_only);
    assert_eq!(basis.displacement_error(&coarse_only, &coarse_recon), 0.0);
    report("control: coarse-only expression reconstructs exactly (error 0.00 mm)");

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("expression_face_extraction_res128", |b| {
        let sdf = BodySdf::from_pose(&sk, &params_true, SurfaceDetail::bare());
        b.iter(|| sparse_extract(black_box(&sdf), 128, 0.03))
    });
    group.finish();
}

bench_group!(benches, fig3);
bench_main!(benches);
