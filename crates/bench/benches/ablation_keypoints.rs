//! **Ablation D (§3.1)** — keypoint count vs. compute vs. quality, and
//! parametric vs. model-free reconstruction.
//!
//! Paper: "an intuitive strategy is to extract more keypoints... it
//! inevitably heightens computational overhead. Moreover, state-of-the-
//! art efforts may not entirely capitalize on the additional information
//! ... because they choose to encode keypoints into parametric human
//! models [with] fixed parameters." The model-free path "directly maps
//! keypoints to 3D mesh [but] functions on a single-frame basis...
//! yielding temporal discontinuity". This bench sweeps landmark density
//! through both reconstruction modes and additionally measures temporal
//! jitter (frame-to-frame surface motion with a static true pose).

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bench_scene, report, report_header};
use holo_body::landmarks::StandardLandmarks;
use holo_keypoints::detector::DetectorKind;
use semholo::keypoint::{KeypointConfig, KeypointPipeline, ReconstructionMode};
use semholo::{Content, SemanticPipeline};
use std::hint::black_box;

fn run(landmarks: StandardLandmarks, mode: ReconstructionMode) -> (usize, f64, f64, f64) {
    let scene = bench_scene(1.0);
    let frame = scene.frame(4);
    let mut p = KeypointPipeline::new(
        KeypointConfig { resolution: 96, landmarks, mode, ..Default::default() },
        42,
    );
    let enc = p.encode(&frame).unwrap();
    let rec = p.decode(&enc.payload).unwrap();
    let q = p.quality(&frame, &rec.content);
    let gflops = p.config.detector.gflops_per_frame(landmarks.count());
    // Temporal jitter: re-encode the same true pose twice (detector noise
    // differs) and measure how much the reconstructed surface moves.
    let enc2 = p.encode(&frame).unwrap();
    let rec2 = p.decode(&enc2.payload).unwrap();
    let (Content::Mesh(m1), Content::Mesh(m2)) = (&rec.content, &rec2.content) else {
        unreachable!()
    };
    let jitter = holo_mesh::metrics::compare_meshes(m1, m2, 2000, 0.01, 3).chamfer;
    (enc.payload.len(), q.chamfer.unwrap() as f64 * 1000.0, gflops, jitter as f64 * 1000.0)
}

fn ablation(c: &mut Criterion) {
    report_header("Ablation D: keypoint count x reconstruction mode (resolution 96)");
    report(&format!(
        "{:>12} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "landmarks", "mode", "payload(B)", "chamfer(mm)", "extract GFLOP", "jitter(mm)"
    ));
    let presets = [
        StandardLandmarks::Sparse25,
        StandardLandmarks::Joints55,
        StandardLandmarks::Standard100,
        StandardLandmarks::Dense144,
        StandardLandmarks::Dense244,
    ];
    let mut parametric_quality = Vec::new();
    for &preset in &presets {
        let (bytes, chamfer, gflops, jitter) = run(preset, ReconstructionMode::Parametric);
        report(&format!(
            "{:>12} {:>12} {:>12} {:>14.2} {:>14.1} {:>14.2}",
            format!("{:?}", preset),
            "parametric",
            bytes,
            chamfer,
            gflops,
            jitter
        ));
        parametric_quality.push(chamfer);
    }
    // Model-free at the same densities (only valid with >= 55 joints).
    let mut modelfree_jitter = Vec::new();
    let mut parametric_jitter = Vec::new();
    for &preset in &presets[1..] {
        let (bytes, chamfer, gflops, jitter) = run(preset, ReconstructionMode::ModelFree);
        report(&format!(
            "{:>12} {:>12} {:>12} {:>14.2} {:>14.1} {:>14.2}",
            format!("{:?}", preset),
            "model-free",
            bytes,
            chamfer,
            gflops,
            jitter
        ));
        modelfree_jitter.push(jitter);
        let (_, _, _, pj) = run(preset, ReconstructionMode::Parametric);
        parametric_jitter.push(pj);
    }
    // Paper-shape claims:
    // (1) extraction compute grows with keypoint count.
    let g25 = DetectorKind::RgbdDirect.gflops_per_frame(25);
    let g244 = DetectorKind::RgbdDirect.gflops_per_frame(244);
    assert!(g244 > g25, "compute must grow with keypoints");
    // (2) the parametric model caps the benefit of extra keypoints: going
    // from 100 to 244 landmarks barely moves quality.
    let q100 = parametric_quality[2];
    let q244 = parametric_quality[4];
    report(&format!(
        "parametric cap: 100 -> 244 landmarks changes chamfer by {:.1}% (paper: fixed parameters limit gains)",
        ((q100 - q244) / q100 * 100.0).abs()
    ));
    // (3) model-free inherits detector jitter: its frame-to-frame surface
    // motion exceeds the parametric path's.
    let mf = modelfree_jitter.iter().sum::<f64>() / modelfree_jitter.len() as f64;
    let pm = parametric_jitter.iter().sum::<f64>() / parametric_jitter.len() as f64;
    report(&format!(
        "temporal jitter: model-free {mf:.2} mm vs parametric {pm:.2} mm (paper: temporal discontinuity)"
    ));

    let mut group = c.benchmark_group("ablation_keypoints");
    group.sample_size(10);
    let scene = bench_scene(0.5);
    let frame = scene.frame(2);
    let mut p = KeypointPipeline::new(KeypointConfig { resolution: 64, ..Default::default() }, 42);
    group.bench_function("fit_100_landmarks", |b| {
        b.iter(|| p.fit_frame(black_box(&frame)).unwrap())
    });
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
