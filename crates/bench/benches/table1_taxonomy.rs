//! **Table 1** — the semantics taxonomy, measured.
//!
//! The paper grades each semantic type qualitatively: computation
//! overhead for extraction and reconstruction (L/M/H), data size (L/M/H),
//! visual quality (L/M/H), and output format. This bench runs all three
//! semantic pipelines plus the traditional baseline on the same captured
//! frame and reports the measured quantities behind those grades, then
//! re-derives the letter grades from the measurements.

use holo_runtime::bench::Criterion;
use holo_runtime::{bench_group, bench_main};
use holo_bench::{bandwidth_at_30fps, bench_scene, mbps, report, report_header};
use holo_gaussian::GaussianPipeline;
use holo_gpu::Device;
use semholo::image::{ImageConfig, ImagePipeline};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemanticPipeline};
use std::hint::black_box;

struct Row {
    name: &'static str,
    extract_ms: f64,
    recon_ms: f64,
    payload: usize,
    quality: String,
    format: &'static str,
}

fn measure(pipeline: &mut dyn SemanticPipeline, scene: &SceneSource, name: &'static str) -> Row {
    let device = Device::a100();
    let frame = scene.frame(4);
    // Warm up stateful pipelines (codebooks, NeRF pre-train) on frame 0.
    let warm = scene.frame(0);
    if let Ok(enc) = pipeline.encode(&warm) {
        let _ = pipeline.decode(&enc.payload);
    }
    let enc = pipeline.encode(&frame).expect("encode");
    let extract_ms = enc.extract.time_on(&device).map(|d| d.as_secs_f64() * 1e3).unwrap_or(f64::NAN);
    let rec = pipeline.decode(&enc.payload).expect("decode");
    let recon_ms = rec.recon.time_on(&device).map(|d| d.as_secs_f64() * 1e3).unwrap_or(f64::NAN);
    let q = pipeline.quality(&frame, &rec.content);
    let quality = match (q.chamfer, q.psnr_db) {
        (Some(c), _) => format!("{:.1} mm chamfer", c * 1000.0),
        (None, Some(p)) => format!("{p:.1} dB PSNR"),
        _ => "-".into(),
    };
    Row {
        name,
        extract_ms,
        recon_ms,
        payload: enc.payload.len(),
        quality,
        format: rec.content.format_name(),
    }
}

fn grade(value: f64, low: f64, high: f64) -> &'static str {
    if value < low {
        "L"
    } else if value < high {
        "M"
    } else {
        "H"
    }
}

fn table1(c: &mut Criterion) {
    let scene = bench_scene(0.5);
    let mut rows = Vec::new();
    let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 128, ..Default::default() }, 42);
    rows.push(measure(&mut kp, &scene, "keypoint"));
    let mut img = ImagePipeline::new(ImageConfig { pretrain_steps: 150, ..Default::default() }, 42);
    rows.push(measure(&mut img, &scene, "image"));
    let mut txt = TextPipeline::new(TextConfig::default(), 42);
    rows.push(measure(&mut txt, &scene, "text"));
    let mut gau = GaussianPipeline::default();
    rows.push(measure(&mut gau, &scene, "gaussian"));
    let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
    rows.push(measure(&mut trad, &scene, "traditional"));

    report_header("Table 1: taxonomy of semantics, measured on one captured frame (paper grades in parentheses)");
    report(&format!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>20} {:>12}",
        "semantics", "extract(ms)", "recon(ms)", "payload(B)", "bw@30fps", "quality", "format"
    ));
    for r in &rows {
        report(&format!(
            "{:>12} {:>12.1} {:>12.1} {:>12} {:>12} {:>20} {:>12}",
            r.name,
            r.extract_ms,
            r.recon_ms,
            r.payload,
            mbps(bandwidth_at_30fps(r.payload)),
            r.quality,
            r.format
        ));
    }
    report("derived grades (extract / recon / data size):");
    for r in &rows {
        report(&format!(
            "  {:>12}: extract {} | recon {} | size {}   (paper: keypoint L/H/L, image -/H/M, text H/H/L)",
            r.name,
            grade(r.extract_ms, 5.0, 50.0),
            grade(r.recon_ms, 50.0, 300.0),
            grade(r.payload as f64, 8_000.0, 80_000.0),
        ));
    }
    // Paper-shape assertions.
    let kp_row = &rows[0];
    let gau_row = &rows[3];
    let trad_row = &rows[4];
    assert!(kp_row.payload * 10 < trad_row.payload, "keypoint payload must be far below mesh");
    assert!(kp_row.recon_ms > 300.0, "keypoint reconstruction must be the bottleneck (H)");
    // The amortized tier's shape: steady-state payload below even the
    // keypoint tier (the prebuild blob carries the geometry), and a
    // reconstruction that skips the implicit-surface solve entirely.
    assert!(gau_row.payload < kp_row.payload, "gaussian update must undercut keypoints");
    assert!(gau_row.recon_ms < kp_row.recon_ms, "splat posing must beat implicit surfaces");
    report(&format!(
        "  gaussian amortization: {} B prebuild once, then {} B/frame updates",
        gau.prebuild_bytes(),
        gau_row.payload
    ));

    // Criterion: one encode per pipeline class.
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let frame = scene.frame(6);
    group.bench_function("keypoint_encode", |b| b.iter(|| kp.encode(black_box(&frame)).unwrap()));
    group.bench_function("gaussian_encode", |b| b.iter(|| gau.encode(black_box(&frame)).unwrap()));
    group.bench_function("text_encode", |b| b.iter(|| txt.encode(black_box(&frame)).unwrap()));
    group.bench_function("traditional_encode", |b| b.iter(|| trad.encode(black_box(&frame)).unwrap()));
    group.finish();
}

bench_group!(benches, table1);
bench_main!(benches);
