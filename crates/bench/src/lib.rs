//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it prints
//! the same rows/series the paper reports (via [`report`]) and then
//! harness-times the operation the experiment measures. Scene setup is
//! shared here so every bench observes the same participant.

use semholo::{SceneSource, SemHoloConfig};

/// The standard benchmark scene: a talking participant, 30 FPS,
/// captured by a 4-camera ring at 96x72 (dense enough that capture
/// coverage, not camera count, bounds cloud quality).
pub fn bench_scene(seconds: f32) -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (96, 72),
        camera_count: 4,
        ..Default::default()
    };
    SceneSource::new(&config, seconds)
}

/// Print a report line that survives the harness output (stderr, tagged).
pub fn report(line: &str) {
    eprintln!("[paper] {line}");
}

/// Print a section header.
pub fn report_header(title: &str) {
    eprintln!();
    eprintln!("[paper] ==== {title} ====");
}

/// Format bits-per-second as Mbps with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2} Mbps", bps / 1e6)
}

/// Bandwidth at 30 FPS for a per-frame payload size (paper Table 2
/// arithmetic: payload bytes x 8 x 30).
pub fn bandwidth_at_30fps(bytes: usize) -> f64 {
    bytes as f64 * 8.0 * 30.0
}
