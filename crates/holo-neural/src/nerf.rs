//! The radiance field and a differentiable volume renderer.
//!
//! [`NerfField`] maps a positionally encoded 3D point through an MLP to
//! RGB color (sigmoid) and volume density (softplus). [`VolumeRenderer`]
//! integrates the field along camera rays with standard alpha
//! compositing and — crucially for live training — implements the exact
//! gradient of the composited color with respect to every per-sample
//! color and density, hand-derived, so the whole pipeline trains by
//! backprop without a framework.

use crate::mlp::{Activations, Mlp};
use crate::posenc::PositionalEncoding;
use holo_math::{Pcg32, Ray, Vec3};

/// A NeRF-style field: positional encoding + MLP -> (rgb, density).
#[derive(Debug, Clone)]
pub struct NerfField {
    /// Input encoding.
    pub encoding: PositionalEncoding,
    /// The network (output dim 4: rgb logits + density logit).
    pub mlp: Mlp,
}

/// Raw (pre-nonlinearity) field output plus saved activations.
pub struct FieldSample {
    /// Color after sigmoid.
    pub color: Vec3,
    /// Density after softplus.
    pub density: f32,
    raw: [f32; 4],
    acts: Activations,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

impl NerfField {
    /// Build a field with `levels` encoding octaves and an MLP of the
    /// given hidden width/depth.
    pub fn new(levels: u32, hidden: usize, depth: usize, rng: &mut Pcg32) -> Self {
        let encoding = PositionalEncoding::new(levels);
        let mlp = Mlp::new(encoding.out_dim(), hidden, depth, 4, rng);
        Self { encoding, mlp }
    }

    /// Evaluate the field, retaining activations for training.
    pub fn sample(&self, p: Vec3) -> FieldSample {
        let x = self.encoding.encode(p);
        let acts = self.mlp.forward(&x);
        let raw = [acts.output[0], acts.output[1], acts.output[2], acts.output[3]];
        FieldSample {
            color: Vec3::new(sigmoid(raw[0]), sigmoid(raw[1]), sigmoid(raw[2])),
            density: softplus(raw[3]),
            raw,
            acts,
        }
    }

    /// Evaluate color and density only (inference).
    pub fn eval(&self, p: Vec3) -> (Vec3, f32) {
        let s = self.sample(p);
        (s.color, s.density)
    }

    /// Restrict the hidden width (slimmable execution, §3.2).
    pub fn set_active_width(&mut self, width: usize) {
        self.mlp.set_active_width(width);
    }

    /// FLOPs of one field query at the active width.
    pub fn flops_per_query(&self) -> f64 {
        self.mlp.flops_per_forward(self.mlp.active_width)
    }
}

/// Alpha-compositing volume renderer.
#[derive(Debug, Clone)]
pub struct VolumeRenderer {
    /// Samples per ray.
    pub samples: usize,
    /// Background color composited behind the volume.
    pub background: Vec3,
}

impl VolumeRenderer {
    /// Build a renderer.
    pub fn new(samples: usize, background: Vec3) -> Self {
        Self { samples: samples.max(2), background }
    }

    /// Render a ray over `[t0, t1]` (inference only).
    pub fn render(&self, field: &NerfField, ray: &Ray, t0: f32, t1: f32) -> Vec3 {
        let n = self.samples;
        let delta = (t1 - t0) / n as f32;
        let mut transmittance = 1.0f32;
        let mut color = Vec3::ZERO;
        for i in 0..n {
            let t = t0 + (i as f32 + 0.5) * delta;
            let (c, sigma) = field.eval(ray.at(t));
            let alpha = 1.0 - (-sigma * delta).exp();
            color += c * (transmittance * alpha);
            transmittance *= 1.0 - alpha;
            if transmittance < 1e-4 {
                break;
            }
        }
        color + self.background * transmittance
    }

    /// Render a ray, compare with `target`, backpropagate the squared
    /// error into the field's gradient accumulators, and return the loss.
    pub fn render_and_backward(
        &self,
        field: &mut NerfField,
        ray: &Ray,
        t0: f32,
        t1: f32,
        target: Vec3,
    ) -> f32 {
        let n = self.samples;
        let delta = (t1 - t0) / n as f32;
        // Forward: keep per-sample state.
        let mut samples: Vec<FieldSample> = Vec::with_capacity(n);
        let mut alphas = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut transmittance = 1.0f32;
        let mut color = Vec3::ZERO;
        for i in 0..n {
            let t = t0 + (i as f32 + 0.5) * delta;
            let s = field.sample(ray.at(t));
            let alpha = 1.0 - (-s.density * delta).exp();
            let w = transmittance * alpha;
            color += s.color * w;
            transmittance *= 1.0 - alpha;
            alphas.push(alpha);
            weights.push(w);
            samples.push(s);
        }
        color += self.background * transmittance;
        let err = color - target;
        let loss = err.dot(err);
        let e = err * 2.0;

        // Backward: suffix accumulator S_i = sum_{j>i} w_j c_j + T_n * bg.
        let mut suffix = self.background * transmittance;
        // Reconstruct T_i for each sample: T_i = w_i / alpha_i (guard 0).
        for i in (0..n).rev() {
            let s = &samples[i];
            let alpha = alphas[i];
            let w = weights[i];
            let t_i = if alpha > 1e-7 { w / alpha } else { transmittance_before(&alphas, i) };
            // dL/dc_i (3 channels).
            let dc = e * w;
            // dL/dalpha_i.
            let one_minus = (1.0 - alpha).max(1e-6);
            let dalpha_vec = s.color * t_i - suffix / one_minus;
            let dalpha = e.dot(dalpha_vec);
            // dalpha/draw_sigma = delta * exp(-sigma*delta) * softplus'(raw).
            let dsigma = dalpha * delta * (-s.density * delta).exp();
            let draw_sigma = dsigma * sigmoid(s.raw[3]);
            // dc/draw = c (1 - c) per channel.
            let d_out = [
                dc.x * s.color.x * (1.0 - s.color.x),
                dc.y * s.color.y * (1.0 - s.color.y),
                dc.z * s.color.z * (1.0 - s.color.z),
                draw_sigma,
            ];
            field.mlp.backward(&s.acts, &d_out);
            suffix += s.color * w;
        }
        loss
    }
}

/// Transmittance before sample `i` (product of (1 - alpha) for j < i).
fn transmittance_before(alphas: &[f32], i: usize) -> f32 {
    alphas[..i].iter().map(|a| 1.0 - a).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Adam;

    fn test_ray() -> Ray {
        Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z)
    }

    #[test]
    fn untrained_field_renders_finite_colors() {
        let mut rng = Pcg32::new(1);
        let field = NerfField::new(4, 16, 3, &mut rng);
        let r = VolumeRenderer::new(16, Vec3::ONE);
        let c = r.render(&field, &test_ray(), 0.5, 3.5);
        assert!(c.is_finite());
        assert!(c.x >= 0.0 && c.x <= 1.05, "color {c:?}");
    }

    #[test]
    fn empty_field_shows_background() {
        let mut rng = Pcg32::new(2);
        let mut field = NerfField::new(2, 8, 2, &mut rng);
        // Force density logits very negative -> near-zero density.
        let last = field.mlp.layers.len() - 1;
        field.mlp.layers[last].b[3] = -20.0;
        for w in field.mlp.layers[last].w.iter_mut() {
            *w *= 0.0;
        }
        let bg = Vec3::new(0.2, 0.4, 0.8);
        let r = VolumeRenderer::new(8, bg);
        let c = r.render(&field, &test_ray(), 0.5, 3.5);
        assert!((c - bg).length() < 1e-3, "expected background, got {c:?}");
    }

    #[test]
    fn render_gradient_matches_finite_difference() {
        let mut rng = Pcg32::new(3);
        let mut field = NerfField::new(2, 8, 2, &mut rng);
        let renderer = VolumeRenderer::new(6, Vec3::ZERO);
        let ray = test_ray();
        let target = Vec3::new(0.3, 0.6, 0.1);
        field.mlp.zero_grad();
        let _ = renderer.render_and_backward(&mut field, &ray, 0.5, 3.5, target);
        let loss_at = |field: &NerfField| {
            let c = renderer.render(field, &ray, 0.5, 3.5);
            let e = c - target;
            e.dot(e)
        };
        let eps = 1e-3;
        for (li, wi) in [(0usize, 2usize), (1, 5)] {
            let analytic = field.mlp.layers[li].gw[wi];
            let orig = field.mlp.layers[li].w[wi];
            field.mlp.layers[li].w[wi] = orig + eps;
            let up = loss_at(&field);
            field.mlp.layers[li].w[wi] = orig - eps;
            let down = loss_at(&field);
            field.mlp.layers[li].w[wi] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * analytic.abs().max(0.05),
                "layer {li} w{wi}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn field_can_learn_a_colored_blob() {
        // Train the field so rays through the center render red and rays
        // missing it render the (black) background.
        let mut rng = Pcg32::new(4);
        let mut field = NerfField::new(4, 24, 3, &mut rng);
        let mut opt = Adam::new(&field.mlp, 2e-3);
        let renderer = VolumeRenderer::new(12, Vec3::ZERO);
        let red = Vec3::new(0.9, 0.1, 0.1);
        for _ in 0..600 {
            field.mlp.zero_grad();
            for _ in 0..8 {
                // Random parallel rays in the z direction.
                let x = rng.range_f32(-1.0, 1.0);
                let y = rng.range_f32(-1.0, 1.0);
                let ray = Ray::new(Vec3::new(x, y, -2.0), Vec3::Z);
                let inside = (x * x + y * y) < 0.25;
                let target = if inside { red } else { Vec3::ZERO };
                renderer.render_and_backward(&mut field, &ray, 0.5, 3.5, target);
            }
            opt.step(&mut field.mlp);
        }
        let hit = renderer.render(&field, &Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z), 0.5, 3.5);
        let miss = renderer.render(&field, &Ray::new(Vec3::new(0.9, 0.9, -2.0), Vec3::Z), 0.5, 3.5);
        assert!((hit - red).length() < 0.25, "center ray {hit:?}");
        assert!(miss.length() < 0.25, "miss ray {miss:?}");
    }

    #[test]
    fn slimmable_field_fewer_flops() {
        let mut rng = Pcg32::new(5);
        let mut field = NerfField::new(4, 64, 4, &mut rng);
        let full = field.flops_per_query();
        field.set_active_width(16);
        assert!(field.flops_per_query() < full / 3.0);
        // Still renders finite values.
        let r = VolumeRenderer::new(8, Vec3::ZERO);
        assert!(r.render(&field, &test_ray(), 0.5, 3.5).is_finite());
    }
}
