//! NeRF positional encoding.
//!
//! MLPs learn low-frequency functions first; NeRF lifts 3D coordinates
//! into a Fourier basis so the network can represent sharp spatial
//! detail: `gamma(p) = [p, sin(2^0 pi p), cos(2^0 pi p), ...,
//! sin(2^(L-1) pi p), cos(2^(L-1) pi p)]` per component.

use holo_math::Vec3;

/// A positional encoding of 3D points with `levels` octaves.
#[derive(Debug, Clone, Copy)]
pub struct PositionalEncoding {
    /// Number of frequency octaves `L`.
    pub levels: u32,
    /// Include the raw coordinates in the output.
    pub include_input: bool,
}

impl PositionalEncoding {
    /// Standard encoding with `levels` octaves, raw input included.
    pub fn new(levels: u32) -> Self {
        Self { levels, include_input: true }
    }

    /// Output dimensionality for a 3D input.
    pub fn out_dim(&self) -> usize {
        (if self.include_input { 3 } else { 0 }) + 6 * self.levels as usize
    }

    /// Encode a point into `out` (must be `out_dim` long).
    pub fn encode_into(&self, p: Vec3, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.out_dim());
        let mut k = 0;
        if self.include_input {
            out[0] = p.x;
            out[1] = p.y;
            out[2] = p.z;
            k = 3;
        }
        let mut freq = std::f32::consts::PI;
        for _ in 0..self.levels {
            for c in [p.x, p.y, p.z] {
                out[k] = (c * freq).sin();
                out[k + 1] = (c * freq).cos();
                k += 2;
            }
            freq *= 2.0;
        }
    }

    /// Encode into a fresh vector.
    pub fn encode(&self, p: Vec3) -> Vec<f32> {
        let mut out = vec![0.0; self.out_dim()];
        self.encode_into(p, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        assert_eq!(PositionalEncoding::new(4).out_dim(), 3 + 24);
        let no_input = PositionalEncoding { levels: 2, include_input: false };
        assert_eq!(no_input.out_dim(), 12);
    }

    #[test]
    fn values_bounded_and_start_with_input() {
        let enc = PositionalEncoding::new(6);
        let p = Vec3::new(0.3, -0.7, 0.1);
        let v = enc.encode(p);
        assert_eq!(v[0], 0.3);
        assert_eq!(v[1], -0.7);
        for &x in &v[3..] {
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn distinguishes_nearby_points() {
        // Two points closer than the lowest frequency still produce
        // separated encodings at high octaves.
        let enc = PositionalEncoding::new(8);
        let a = enc.encode(Vec3::new(0.500, 0.0, 0.0));
        let b = enc.encode(Vec3::new(0.502, 0.0, 0.0));
        let dist: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt();
        let input_dist = 0.002;
        assert!(dist > input_dist * 50.0, "encoding distance {dist}");
    }

    #[test]
    fn zero_point() {
        let enc = PositionalEncoding::new(3);
        let v = enc.encode(Vec3::ZERO);
        assert_eq!(v[0], 0.0);
        // sin(0) = 0, cos(0) = 1 pattern.
        assert_eq!(v[3], 0.0);
        assert_eq!(v[4], 1.0);
    }
}
