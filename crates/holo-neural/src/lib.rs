//! Neural substrate for image-based semantics (§3.2).
//!
//! The paper's image pipeline needs NeRF: an MLP mapping positionally
//! encoded 3D coordinates to color and density, trained by gradient
//! descent through a volume renderer, *fine-tunable* frame to frame, and
//! — for rate adaptation — *slimmable*, i.e. executable at several widths
//! from one weight set. No ML framework is available offline, so this
//! crate implements the whole stack from scratch at laptop scale:
//!
//! - [`mlp`] — dense layers, ReLU, manual backprop, Adam, and width
//!   slimming (a narrower sub-network uses the leading rows/columns of
//!   each weight matrix, as in slimmable networks).
//! - [`posenc`] — NeRF's sinusoidal positional encoding.
//! - [`nerf`] — the radiance field and a differentiable volume renderer
//!   (alpha compositing with hand-derived gradients).
//! - [`train`] — ray datasets from the capture rig, the training loop,
//!   pre-train + per-frame fine-tune, and PSNR evaluation.
//!
//! Everything is `f32`, seeded, and sized so unit tests train real
//! networks in seconds.

pub mod mlp;
pub mod nerf;
pub mod posenc;
pub mod train;

pub use mlp::{Adam, Linear, Mlp};
pub use nerf::{NerfField, VolumeRenderer};
pub use posenc::PositionalEncoding;
pub use train::{psnr, RayDataset, TrainConfig, Trainer};
