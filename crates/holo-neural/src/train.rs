//! NeRF training: datasets, the pre-train / fine-tune loop, PSNR.
//!
//! §3.2's central claim is an optimization-dynamics one: "once a
//! user-specific NeRF model has been trained, there is no need to retrain
//! the model from scratch" — per-frame *fine-tuning* from the pre-trained
//! weights reaches target quality in far fewer steps than training anew.
//! The trainer here makes that claim testable end to end on real
//! gradient descent.

use crate::nerf::{NerfField, VolumeRenderer};
use holo_capture::camera::Camera;
use holo_compress::texture::Texture;
use holo_math::{Pcg32, Ray, Vec3};

/// A supervised ray: origin/direction plus target color.
#[derive(Debug, Clone, Copy)]
pub struct TrainRay {
    /// The camera ray.
    pub ray: Ray,
    /// Ground-truth pixel color in [0, 1].
    pub target: Vec3,
}

/// A set of supervised rays built from posed RGB images.
#[derive(Debug, Clone, Default)]
pub struct RayDataset {
    /// All rays.
    pub rays: Vec<TrainRay>,
}

impl RayDataset {
    /// Build from `(camera, image)` pairs; every pixel becomes a ray.
    pub fn from_views(views: &[(Camera, Texture)]) -> Self {
        let mut rays = Vec::new();
        for (cam, img) in views {
            for y in 0..img.height {
                for x in 0..img.width {
                    let rgb = img.get(x, y);
                    rays.push(TrainRay {
                        ray: cam.pixel_ray(x, y),
                        target: Vec3::new(
                            rgb[0] as f32 / 255.0,
                            rgb[1] as f32 / 255.0,
                            rgb[2] as f32 / 255.0,
                        ),
                    });
                }
            }
        }
        Self { rays }
    }

    /// Number of rays.
    pub fn len(&self) -> usize {
        self.rays.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rays.is_empty()
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Optimization steps.
    pub steps: usize,
    /// Rays per step.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Ray integration interval.
    pub t_near: f32,
    pub t_far: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { steps: 400, batch: 32, lr: 2e-3, t_near: 0.5, t_far: 4.5 }
    }
}

/// Statistics from one training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainStats {
    /// Steps executed.
    pub steps: usize,
    /// Mean loss over the last 10% of steps.
    pub final_loss: f32,
    /// Total field queries performed (drives the GPU cost model).
    pub field_queries: u64,
}

/// The trainer.
pub struct Trainer {
    /// The renderer used for supervision.
    pub renderer: VolumeRenderer,
    rng: Pcg32,
}

impl Trainer {
    /// Build with a renderer and seed.
    pub fn new(renderer: VolumeRenderer, seed: u64) -> Self {
        Self { renderer, rng: Pcg32::new(seed) }
    }

    /// Run `cfg.steps` of Adam on the field over the dataset. Used both
    /// for pre-training (many steps) and per-frame fine-tuning (few
    /// steps) — fine-tuning is simply resuming from trained weights.
    pub fn train(&mut self, field: &mut NerfField, data: &RayDataset, cfg: &TrainConfig) -> TrainStats {
        assert!(!data.is_empty(), "empty dataset");
        let mut opt = crate::mlp::Adam::new(&field.mlp, cfg.lr);
        let mut tail_losses = Vec::new();
        let tail_start = cfg.steps - cfg.steps / 10 - 1;
        let mut queries = 0u64;
        for step in 0..cfg.steps {
            field.mlp.zero_grad();
            let mut loss = 0.0;
            for _ in 0..cfg.batch {
                let r = &data.rays[self.rng.index(data.len())];
                loss += self.renderer.render_and_backward(field, &r.ray, cfg.t_near, cfg.t_far, r.target);
                queries += self.renderer.samples as u64;
            }
            opt.step(&mut field.mlp);
            if step >= tail_start {
                tail_losses.push(loss / cfg.batch as f32);
            }
        }
        TrainStats {
            steps: cfg.steps,
            final_loss: tail_losses.iter().sum::<f32>() / tail_losses.len().max(1) as f32,
            field_queries: queries,
        }
    }

    /// Train until the running loss drops below `target_loss` or
    /// `max_steps` is reached; returns steps used. This is the
    /// "steps-to-quality" metric comparing fine-tune vs retrain.
    pub fn train_to_loss(
        &mut self,
        field: &mut NerfField,
        data: &RayDataset,
        cfg: &TrainConfig,
        target_loss: f32,
        max_steps: usize,
    ) -> usize {
        let mut opt = crate::mlp::Adam::new(&field.mlp, cfg.lr);
        let mut running = f32::INFINITY;
        for step in 0..max_steps {
            field.mlp.zero_grad();
            let mut loss = 0.0;
            for _ in 0..cfg.batch {
                let r = &data.rays[self.rng.index(data.len())];
                loss += self.renderer.render_and_backward(field, &r.ray, cfg.t_near, cfg.t_far, r.target);
            }
            opt.step(&mut field.mlp);
            let avg = loss / cfg.batch as f32;
            running = if running.is_finite() { 0.9 * running + 0.1 * avg } else { avg };
            if running < target_loss {
                return step + 1;
            }
        }
        max_steps
    }

    /// Render a full image from the field through a camera.
    pub fn render_image(&self, field: &NerfField, camera: &Camera, cfg: &TrainConfig) -> Texture {
        let k = camera.intrinsics;
        let mut img = Texture::new(k.width, k.height);
        for y in 0..k.height {
            for x in 0..k.width {
                let c = self.renderer.render(field, &camera.pixel_ray(x, y), cfg.t_near, cfg.t_far);
                img.set(x, y, [
                    (c.x.clamp(0.0, 1.0) * 255.0) as u8,
                    (c.y.clamp(0.0, 1.0) * 255.0) as u8,
                    (c.z.clamp(0.0, 1.0) * 255.0) as u8,
                ]);
            }
        }
        img
    }
}

/// PSNR between two equally-sized images, dB.
pub fn psnr(a: &Texture, b: &Texture) -> f64 {
    a.psnr(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_capture::camera::CameraIntrinsics;
    use holo_capture::noise::DepthNoiseModel;
    use holo_capture::render::{render_rgbd, ShadingConfig};
    use holo_mesh::sdf::SdfSphere;

    /// Tiny scene: a sphere captured from a ring of cameras.
    fn scene_views(n: usize, res: u32) -> Vec<(Camera, Texture)> {
        let sdf = SdfSphere { center: Vec3::new(0.0, 0.0, 0.0), radius: 0.6 };
        let mut rng = Pcg32::new(99);
        (0..n)
            .map(|i| {
                let theta = std::f32::consts::TAU * i as f32 / n as f32;
                let eye = Vec3::new(2.0 * theta.cos(), 0.4, 2.0 * theta.sin());
                let cam = Camera::look_at(CameraIntrinsics::from_fov(res, res, 0.9), eye, Vec3::ZERO);
                let frame = render_rgbd(&sdf, &cam, &DepthNoiseModel::none(), &ShadingConfig { skin_above_y: 10.0, ..Default::default() }, &mut rng);
                (cam, frame.color)
            })
            .collect()
    }

    #[test]
    fn dataset_from_views() {
        let views = scene_views(2, 8);
        let data = RayDataset::from_views(&views);
        assert_eq!(data.len(), 2 * 64);
    }

    #[test]
    fn training_reduces_loss() {
        let views = scene_views(3, 12);
        let data = RayDataset::from_views(&views);
        let mut rng = Pcg32::new(1);
        let mut field = NerfField::new(4, 24, 3, &mut rng);
        let mut trainer = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 2);
        let cfg = TrainConfig { steps: 60, batch: 16, ..Default::default() };
        let early = trainer.train(&mut field, &data, &cfg);
        let late = trainer.train(&mut field, &data, &TrainConfig { steps: 300, batch: 16, ..Default::default() });
        assert!(
            late.final_loss < early.final_loss * 0.7,
            "loss should fall: {} -> {}",
            early.final_loss,
            late.final_loss
        );
        assert!(late.field_queries > 0);
    }

    #[test]
    fn trained_field_beats_untrained_on_held_out_view() {
        let views = scene_views(4, 12);
        let (held_out, train_views) = views.split_first().unwrap();
        let data = RayDataset::from_views(train_views);
        let mut rng = Pcg32::new(3);
        let mut field = NerfField::new(4, 24, 3, &mut rng);
        let mut trainer = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 4);
        let cfg = TrainConfig { steps: 500, batch: 24, ..Default::default() };
        let before = trainer.render_image(&field, &held_out.0, &cfg);
        let psnr_before = psnr(&before, &held_out.1);
        trainer.train(&mut field, &data, &cfg);
        let after = trainer.render_image(&field, &held_out.0, &cfg);
        let psnr_after = psnr(&after, &held_out.1);
        assert!(
            psnr_after > psnr_before + 2.0,
            "PSNR should improve: {psnr_before:.1} -> {psnr_after:.1}"
        );
        assert!(psnr_after > 10.0, "held-out PSNR {psnr_after:.1}");
    }

    #[test]
    fn fine_tune_needs_fewer_steps_than_retrain() {
        // Pre-train on scene A; scene B differs slightly (sphere moved a
        // little). Fine-tuning A's weights on B must hit the loss target
        // in fewer steps than training from scratch on B.
        let views_a = scene_views(3, 10);
        let sdf_b = SdfSphere { center: Vec3::new(0.12, 0.0, 0.0), radius: 0.6 };
        let mut rng_cap = Pcg32::new(98);
        let views_b: Vec<(Camera, Texture)> = views_a
            .iter()
            .map(|(cam, _)| {
                let f = render_rgbd(&sdf_b, cam, &DepthNoiseModel::none(), &ShadingConfig { skin_above_y: 10.0, ..Default::default() }, &mut rng_cap);
                (*cam, f.color)
            })
            .collect();
        let data_a = RayDataset::from_views(&views_a);
        let data_b = RayDataset::from_views(&views_b);
        let cfg = TrainConfig { steps: 400, batch: 24, ..Default::default() };

        let mut rng = Pcg32::new(5);
        let mut pretrained = NerfField::new(4, 24, 3, &mut rng);
        let mut trainer = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 6);
        trainer.train(&mut pretrained, &data_a, &cfg);

        // Determine a reachable loss target from the pretrained model on B.
        let target = 0.02f32;
        let mut fine = pretrained.clone();
        let mut t1 = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 7);
        let fine_steps = t1.train_to_loss(&mut fine, &data_b, &cfg, target, 600);

        let mut scratch = NerfField::new(4, 24, 3, &mut Pcg32::new(55));
        let mut t2 = Trainer::new(VolumeRenderer::new(10, Vec3::ZERO), 7);
        let scratch_steps = t2.train_to_loss(&mut scratch, &data_b, &cfg, target, 600);

        assert!(
            fine_steps * 2 < scratch_steps + 1,
            "fine-tune {fine_steps} steps vs scratch {scratch_steps}"
        );
    }

    #[test]
    fn psnr_identity() {
        let views = scene_views(1, 8);
        assert!(psnr(&views[0].1, &views[0].1).is_infinite());
    }
}
