//! Dense networks with manual backprop, Adam, and slimmable widths.

use holo_math::Pcg32;

/// A dense layer `y = W x + b`, row-major weights (`out x in`).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Weights, `out_dim * in_dim`, row-major.
    pub w: Vec<f32>,
    /// Biases, `out_dim`.
    pub b: Vec<f32>,
    /// Weight gradients (same layout).
    pub gw: Vec<f32>,
    /// Bias gradients.
    pub gb: Vec<f32>,
}

impl Linear {
    /// He initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Pcg32) -> Self {
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.normal() * scale).collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    /// Forward restricted to the first `a_in` inputs and `a_out` outputs
    /// (slimmable execution; full width when equal to the dims).
    pub fn forward_slim(&self, x: &[f32], a_in: usize, a_out: usize, y: &mut [f32]) {
        debug_assert!(a_in <= self.in_dim && a_out <= self.out_dim);
        for o in 0..a_out {
            let row = &self.w[o * self.in_dim..o * self.in_dim + a_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(&x[..a_in]) {
                acc += wi * xi;
            }
            y[o] = acc;
        }
    }

    /// Backward for the slim configuration: given upstream `dy`, input
    /// `x`, accumulate gradients and write `dx`.
    pub fn backward_slim(&mut self, x: &[f32], dy: &[f32], a_in: usize, a_out: usize, dx: &mut [f32]) {
        dx[..a_in].fill(0.0);
        for o in 0..a_out {
            let g = dy[o];
            self.gb[o] += g;
            let row_off = o * self.in_dim;
            for i in 0..a_in {
                self.gw[row_off + i] += g * x[i];
                dx[i] += g * self.w[row_off + i];
            }
        }
    }

    /// Zero the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// A multilayer perceptron with ReLU hidden activations and linear
/// output, supporting slimmable hidden widths.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layers in order.
    pub layers: Vec<Linear>,
    /// Full hidden width.
    pub hidden: usize,
    /// Currently active hidden width (<= `hidden`).
    pub active_width: usize,
}

/// Per-layer forward activations retained for backprop.
#[derive(Debug, Clone, Default)]
pub struct Activations {
    /// Pre-activation inputs to each layer (x0 = network input).
    pub inputs: Vec<Vec<f32>>,
    /// Final output.
    pub output: Vec<f32>,
}

impl Mlp {
    /// Build an MLP: `in_dim -> hidden x (depth-1) -> out_dim`.
    pub fn new(in_dim: usize, hidden: usize, depth: usize, out_dim: usize, rng: &mut Pcg32) -> Self {
        assert!(depth >= 1);
        let mut layers = Vec::with_capacity(depth);
        if depth == 1 {
            layers.push(Linear::new(in_dim, out_dim, rng));
        } else {
            layers.push(Linear::new(in_dim, hidden, rng));
            for _ in 0..depth - 2 {
                layers.push(Linear::new(hidden, hidden, rng));
            }
            layers.push(Linear::new(hidden, out_dim, rng));
        }
        Self { layers, hidden, active_width: hidden }
    }

    /// Restrict hidden layers to the first `width` units (slimmable
    /// execution). Input and output dimensions are unaffected.
    pub fn set_active_width(&mut self, width: usize) {
        self.active_width = width.clamp(1, self.hidden);
    }

    fn widths(&self, li: usize) -> (usize, usize) {
        let n = self.layers.len();
        let a_in = if li == 0 { self.layers[0].in_dim } else { self.active_width };
        let a_out = if li == n - 1 { self.layers[n - 1].out_dim } else { self.active_width };
        (a_in, a_out)
    }

    /// Forward pass retaining activations for backprop.
    pub fn forward(&self, x: &[f32]) -> Activations {
        let mut acts = Activations::default();
        let mut cur = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let (a_in, a_out) = self.widths(li);
            acts.inputs.push(cur.clone());
            let mut y = vec![0.0; layer.out_dim];
            layer.forward_slim(&cur, a_in, a_out, &mut y);
            if li + 1 < self.layers.len() {
                for v in &mut y[..a_out] {
                    *v = v.max(0.0); // ReLU
                }
                y.truncate(a_out);
            } else {
                y.truncate(layer.out_dim);
            }
            cur = y;
        }
        acts.output = cur;
        acts
    }

    /// Inference without retaining activations.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).output
    }

    /// Backward pass: `d_out` is dL/d(output). Accumulates gradients.
    pub fn backward(&mut self, acts: &Activations, d_out: &[f32]) {
        let n = self.layers.len();
        let mut dy = d_out.to_vec();
        for li in (0..n).rev() {
            let (a_in, a_out) = self.widths(li);
            // ReLU gradient for hidden layers: recompute forward output of
            // this layer from the next layer's stored input.
            if li + 1 < n {
                let next_input = &acts.inputs[li + 1];
                for (g, &v) in dy.iter_mut().zip(next_input.iter()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            let x = &acts.inputs[li];
            let mut dx = vec![0.0; x.len().max(a_in)];
            let layer = &mut self.layers[li];
            layer.backward_slim(x, &dy, a_in, a_out, &mut dx);
            dy = dx;
        }
    }

    /// Zero all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// FLOPs of one full-width forward pass (2 per multiply-add).
    pub fn flops_per_forward(&self, width: usize) -> f64 {
        let n = self.layers.len();
        let mut total = 0f64;
        for (li, l) in self.layers.iter().enumerate() {
            let a_in = if li == 0 { l.in_dim } else { width.min(self.hidden) };
            let a_out = if li == n - 1 { l.out_dim } else { width.min(self.hidden) };
            total += 2.0 * a_in as f64 * a_out as f64;
        }
        total
    }
}

/// Adam optimizer over an MLP's parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Standard Adam hyperparameters with the given learning rate.
    pub fn new(mlp: &Mlp, lr: f32) -> Self {
        let sizes: Vec<usize> = mlp.layers.iter().map(|l| l.w.len() + l.b.len()).collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Apply one step using the accumulated gradients, then zero them.
    pub fn step(&mut self, mlp: &mut Mlp) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (li, layer) in mlp.layers.iter_mut().enumerate() {
            let m = &mut self.m[li];
            let v = &mut self.v[li];
            let nw = layer.w.len();
            for (i, (p, g)) in layer
                .w
                .iter_mut()
                .chain(layer.b.iter_mut())
                .zip(layer.gw.iter().chain(layer.gb.iter()))
                .enumerate()
            {
                let _ = nw;
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                *p -= self.lr * mh / (vh.sqrt() + self.eps);
            }
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Pcg32::new(1);
        let mlp = Mlp::new(5, 16, 3, 2, &mut rng);
        let out = mlp.infer(&[0.1, -0.2, 0.3, 0.0, 1.0]);
        assert_eq!(out.len(), 2);
        assert_eq!(mlp.param_count(), 5 * 16 + 16 + 16 * 16 + 16 + 16 * 2 + 2);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Pcg32::new(2);
        let mut mlp = Mlp::new(3, 8, 3, 1, &mut rng);
        let x = [0.5, -0.3, 0.8];
        // Loss = 0.5 * out^2.
        let acts = mlp.forward(&x);
        let out = acts.output[0];
        mlp.zero_grad();
        mlp.backward(&acts, &[out]);
        // Check several weights against central differences.
        let eps = 1e-3;
        for (li, wi) in [(0usize, 0usize), (0, 5), (1, 3), (2, 2)] {
            let analytic = mlp.layers[li].gw[wi];
            let orig = mlp.layers[li].w[wi];
            mlp.layers[li].w[wi] = orig + eps;
            let up = 0.5 * mlp.infer(&x)[0].powi(2);
            mlp.layers[li].w[wi] = orig - eps;
            let down = 0.5 * mlp.infer(&x)[0].powi(2);
            mlp.layers[li].w[wi] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * analytic.abs().max(1.0),
                "layer {li} w{wi}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn adam_learns_a_regression() {
        let mut rng = Pcg32::new(3);
        let mut mlp = Mlp::new(2, 16, 3, 1, &mut rng);
        let mut opt = Adam::new(&mlp, 5e-3);
        // Target: f(x, y) = sin(2x) * y.
        let mut final_loss = f32::INFINITY;
        for step in 0..1500 {
            let x = [rng.range_f32(-1.0, 1.0), rng.range_f32(-1.0, 1.0)];
            let target = (2.0 * x[0]).sin() * x[1];
            let acts = mlp.forward(&x);
            let err = acts.output[0] - target;
            mlp.backward(&acts, &[2.0 * err]);
            opt.step(&mut mlp);
            if step > 1400 {
                final_loss = final_loss.min(err * err);
            }
        }
        assert!(final_loss < 0.05, "regression failed to converge: {final_loss}");
    }

    #[test]
    fn slim_width_uses_leading_units() {
        let mut rng = Pcg32::new(4);
        let mut mlp = Mlp::new(4, 32, 3, 2, &mut rng);
        let x = [0.2, 0.4, -0.1, 0.9];
        let full = mlp.infer(&x);
        mlp.set_active_width(8);
        let slim = mlp.infer(&x);
        assert_eq!(slim.len(), 2);
        assert_ne!(full, slim, "slim path must actually change the computation");
        // Slim flops strictly fewer.
        assert!(mlp.flops_per_forward(8) < mlp.flops_per_forward(32));
    }

    #[test]
    fn slim_training_improves_slim_inference() {
        let mut rng = Pcg32::new(5);
        let mut mlp = Mlp::new(1, 24, 3, 1, &mut rng);
        let mut opt = Adam::new(&mlp, 5e-3);
        // Sandwich training: alternate full and slim widths.
        for step in 0..2000 {
            let w = if step % 2 == 0 { 24 } else { 8 };
            mlp.set_active_width(w);
            let x = [rng.range_f32(-1.0, 1.0)];
            let target = (3.0 * x[0]).sin();
            let acts = mlp.forward(&x);
            let err = acts.output[0] - target;
            mlp.backward(&acts, &[2.0 * err]);
            opt.step(&mut mlp);
        }
        // Slim inference should now fit the function reasonably.
        mlp.set_active_width(8);
        let mut loss = 0.0;
        for i in 0..50 {
            let x = [-1.0 + 2.0 * i as f32 / 49.0];
            let err = mlp.infer(&x)[0] - (3.0 * x[0]).sin();
            loss += err * err;
        }
        loss /= 50.0;
        assert!(loss < 0.1, "slim network mse {loss}");
    }

    #[test]
    fn zero_grad_zeroes() {
        let mut rng = Pcg32::new(6);
        let mut mlp = Mlp::new(2, 8, 2, 1, &mut rng);
        let acts = mlp.forward(&[1.0, 1.0]);
        mlp.backward(&acts, &[1.0]);
        assert!(mlp.layers[0].gw.iter().any(|&g| g != 0.0));
        mlp.zero_grad();
        assert!(mlp.layers[0].gw.iter().all(|&g| g == 0.0));
    }
}
