//! Synthetic gaze traces.
//!
//! A state machine alternates fixations (with physiological tremor and
//! micro-drift), smooth pursuits (constant angular velocity toward a
//! moving target), and saccades (ballistic jumps following the "main
//! sequence": peak velocity grows with amplitude, duration ~2.2 ms/deg +
//! 21 ms, minimum-jerk velocity profile). Angles are in degrees of visual
//! field; positions are 2D (azimuth, elevation).

use holo_math::{Pcg32, Vec2};

/// One gaze sample.
#[derive(Debug, Clone, Copy)]
pub struct GazeSample {
    /// Time, seconds.
    pub t: f32,
    /// Gaze position, degrees (azimuth, elevation).
    pub pos: Vec2,
    /// True generating state (for classifier evaluation).
    pub true_class: u8,
}

/// Ground-truth class labels used in [`GazeSample::true_class`].
pub const CLASS_FIXATION: u8 = 0;
pub const CLASS_PURSUIT: u8 = 1;
pub const CLASS_SACCADE: u8 = 2;

/// Synthesizer configuration.
#[derive(Debug, Clone)]
pub struct GazeTraceConfig {
    /// Sampling rate, Hz (eye trackers: 90-240).
    pub sample_rate: f32,
    /// Fixation duration range, seconds.
    pub fixation_duration: (f32, f32),
    /// Saccade amplitude range, degrees.
    pub saccade_amplitude: (f32, f32),
    /// Probability that a movement is a smooth pursuit instead of a
    /// saccade.
    pub pursuit_probability: f32,
    /// Pursuit angular speed range, degrees/second.
    pub pursuit_speed: (f32, f32),
    /// Fixation tremor standard deviation, degrees.
    pub tremor_sigma: f32,
    /// Field of view half-extent, degrees (gaze stays inside).
    pub fov_half: f32,
}

impl Default for GazeTraceConfig {
    fn default() -> Self {
        Self {
            sample_rate: 120.0,
            fixation_duration: (0.15, 0.5),
            saccade_amplitude: (3.0, 18.0),
            pursuit_probability: 0.25,
            pursuit_speed: (35.0, 80.0),
            tremor_sigma: 0.03,
            fov_half: 40.0,
        }
    }
}

/// Saccade duration from amplitude (main sequence): ~2.2 ms/deg + 21 ms.
pub fn saccade_duration(amplitude_deg: f32) -> f32 {
    0.021 + 0.0022 * amplitude_deg
}

/// Peak velocity from amplitude (main sequence, soft-saturating):
/// `Vmax = 500 * (1 - exp(-A / 15))` deg/s.
pub fn saccade_peak_velocity(amplitude_deg: f32) -> f32 {
    500.0 * (1.0 - (-amplitude_deg / 15.0).exp())
}

/// Minimum-jerk position profile on [0, 1].
fn min_jerk(s: f32) -> f32 {
    let s = s.clamp(0.0, 1.0);
    s * s * s * (10.0 - 15.0 * s + 6.0 * s * s)
}

/// Deterministic gaze trace generator.
pub struct GazeSynthesizer {
    cfg: GazeTraceConfig,
    rng: Pcg32,
}

impl GazeSynthesizer {
    /// Create with a seed.
    pub fn new(cfg: GazeTraceConfig, seed: u64) -> Self {
        Self { cfg, rng: Pcg32::new(seed) }
    }

    /// Generate `duration_s` seconds of gaze.
    pub fn generate(&mut self, duration_s: f32) -> Vec<GazeSample> {
        let dt = 1.0 / self.cfg.sample_rate;
        let n = (duration_s * self.cfg.sample_rate) as usize;
        let mut samples = Vec::with_capacity(n);
        let mut pos = Vec2::new(0.0, 0.0);
        let mut t = 0.0f32;

        while samples.len() < n {
            // Fixation.
            let fix_dur = self.rng.range_f32(self.cfg.fixation_duration.0, self.cfg.fixation_duration.1);
            let fix_end = t + fix_dur;
            let anchor = pos;
            while t < fix_end && samples.len() < n {
                let tremor = Vec2::new(self.rng.normal(), self.rng.normal()) * self.cfg.tremor_sigma;
                pos = anchor + tremor;
                samples.push(GazeSample { t, pos, true_class: CLASS_FIXATION });
                t += dt;
            }
            if samples.len() >= n {
                break;
            }
            // Movement: pursuit or saccade toward a new target.
            let target = self.pick_target(anchor);
            if self.rng.chance(self.cfg.pursuit_probability) {
                let speed = self.rng.range_f32(self.cfg.pursuit_speed.0, self.cfg.pursuit_speed.1);
                let dist = anchor.distance(target);
                let dur = (dist / speed).clamp(0.2, 1.5);
                let end = t + dur;
                let start_t = t;
                let start = pos;
                while t < end && samples.len() < n {
                    let s = (t - start_t) / dur;
                    pos = start.lerp(target, s)
                        + Vec2::new(self.rng.normal(), self.rng.normal()) * (self.cfg.tremor_sigma * 0.5);
                    samples.push(GazeSample { t, pos, true_class: CLASS_PURSUIT });
                    t += dt;
                }
            } else {
                let amp = anchor.distance(target);
                let dur = saccade_duration(amp);
                let end = t + dur;
                let start_t = t;
                let start = pos;
                while t < end && samples.len() < n {
                    let s = (t - start_t) / dur;
                    pos = start.lerp(target, min_jerk(s));
                    samples.push(GazeSample { t, pos, true_class: CLASS_SACCADE });
                    t += dt;
                }
                pos = target;
            }
        }
        samples
    }

    fn pick_target(&mut self, from: Vec2) -> Vec2 {
        for _ in 0..32 {
            let amp = self.rng.range_f32(self.cfg.saccade_amplitude.0, self.cfg.saccade_amplitude.1);
            let theta = self.rng.range_f32(0.0, std::f32::consts::TAU);
            let target = from + Vec2::new(amp * theta.cos(), amp * theta.sin());
            if target.x.abs() < self.cfg.fov_half && target.y.abs() < self.cfg.fov_half {
                return target;
            }
        }
        Vec2::new(0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64, secs: f32) -> Vec<GazeSample> {
        GazeSynthesizer::new(GazeTraceConfig::default(), seed).generate(secs)
    }

    #[test]
    fn trace_has_expected_length_and_bounds() {
        let s = trace(1, 5.0);
        assert_eq!(s.len(), 600);
        for g in &s {
            assert!(g.pos.x.abs() < 45.0 && g.pos.y.abs() < 45.0, "gaze out of fov: {:?}", g.pos);
        }
    }

    #[test]
    fn contains_all_three_classes() {
        let s = trace(2, 20.0);
        let count = |c: u8| s.iter().filter(|g| g.true_class == c).count();
        assert!(count(CLASS_FIXATION) > s.len() / 3, "fixations dominate normal viewing");
        assert!(count(CLASS_SACCADE) > 10);
        assert!(count(CLASS_PURSUIT) > 10);
    }

    #[test]
    fn saccades_are_fast_fixations_slow() {
        let s = trace(3, 20.0);
        let dt = 1.0 / 120.0;
        let mut sacc_v = Vec::new();
        let mut fix_v = Vec::new();
        for w in s.windows(2) {
            let v = w[0].pos.distance(w[1].pos) / dt;
            if w[0].true_class == CLASS_SACCADE && w[1].true_class == CLASS_SACCADE {
                sacc_v.push(v);
            }
            if w[0].true_class == CLASS_FIXATION && w[1].true_class == CLASS_FIXATION {
                fix_v.push(v);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(mean(&sacc_v) > 100.0, "saccade speed {}", mean(&sacc_v));
        assert!(mean(&fix_v) < 40.0, "fixation speed {}", mean(&fix_v));
    }

    #[test]
    fn main_sequence_monotone() {
        assert!(saccade_peak_velocity(20.0) > saccade_peak_velocity(5.0));
        assert!(saccade_duration(20.0) > saccade_duration(5.0));
        // Peak velocity saturates below 500 deg/s.
        assert!(saccade_peak_velocity(60.0) < 500.0);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = trace(7, 3.0);
        let b = trace(7, 3.0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos);
        }
    }

    #[test]
    fn min_jerk_endpoints() {
        assert_eq!(min_jerk(0.0), 0.0);
        assert!((min_jerk(1.0) - 1.0).abs() < 1e-6);
        assert!(min_jerk(0.5) > 0.4 && min_jerk(0.5) < 0.6);
    }
}
