//! Eye-gaze substrate for the foveated hybrid pipeline (§3.1).
//!
//! The paper proposes transmitting full-detail mesh only for the viewer's
//! foveal region, with keypoints for the periphery, and identifies the
//! three canonical gaze movement classes — fixation, smooth pursuit, and
//! saccade — plus saccade-landing prediction as the way to keep the foveal
//! region ahead of the eye. This crate provides all of it:
//!
//! - [`trace`] — a seeded gaze synthesizer producing fixation / pursuit /
//!   saccade segments with realistic durations, amplitudes, and the
//!   main-sequence velocity profile of real saccades.
//! - [`classify`] — the I-VT velocity-threshold classifier (fixation < 30
//!   deg/s < pursuit < 100 deg/s < saccade, per Li & Zhou and standard
//!   practice).
//! - [`landing`] — ballistic saccade landing-point prediction from the
//!   first observed samples of a saccade.
//! - [`foveation`] — mapping a gaze direction and foveal radius onto a
//!   screen-space partition (foveal / peripheral) of scene content.

pub mod classify;
pub mod foveation;
pub mod landing;
pub mod trace;

pub use classify::{classify_trace, GazeClass, IvtClassifier};
pub use foveation::FoveationMap;
pub use landing::SaccadePredictor;
pub use trace::{GazeSample, GazeSynthesizer, GazeTraceConfig};
