//! I-VT gaze movement classification.
//!
//! §3.1: "one can classify gaze movements into three patterns: fixation,
//! smooth pursuit, and saccades, determined by their speeds ranging from
//! low to high". The velocity-threshold (I-VT) classifier does exactly
//! that, with a short median filter over instantaneous velocities to
//! suppress tracker noise.

use crate::trace::GazeSample;

/// Movement class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GazeClass {
    /// Eye nearly stationary (< pursuit threshold).
    Fixation,
    /// Smooth target tracking (between thresholds).
    Pursuit,
    /// Ballistic jump (> saccade threshold).
    Saccade,
}

impl GazeClass {
    /// Numeric label matching `trace::CLASS_*`.
    pub fn label(self) -> u8 {
        match self {
            GazeClass::Fixation => 0,
            GazeClass::Pursuit => 1,
            GazeClass::Saccade => 2,
        }
    }
}

/// Velocity-threshold classifier.
#[derive(Debug, Clone)]
pub struct IvtClassifier {
    /// Below this angular speed (deg/s): fixation.
    pub fixation_max: f32,
    /// Above this angular speed (deg/s): saccade.
    pub saccade_min: f32,
    /// Median filter window (odd, samples).
    pub median_window: usize,
}

impl Default for IvtClassifier {
    fn default() -> Self {
        Self { fixation_max: 30.0, saccade_min: 100.0, median_window: 3 }
    }
}

impl IvtClassifier {
    /// Classify each sample of a trace. The result has the same length.
    pub fn classify(&self, samples: &[GazeSample]) -> Vec<GazeClass> {
        if samples.len() < 2 {
            return vec![GazeClass::Fixation; samples.len()];
        }
        // Instantaneous velocity per sample (backward difference).
        let mut vel = Vec::with_capacity(samples.len());
        vel.push(0.0f32);
        for w in samples.windows(2) {
            let dt = (w[1].t - w[0].t).max(1e-5);
            vel.push(w[0].pos.distance(w[1].pos) / dt);
        }
        // Median filter.
        let half = self.median_window / 2;
        let smoothed: Vec<f32> = (0..vel.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(vel.len());
                let mut w: Vec<f32> = vel[lo..hi].to_vec();
                w.sort_by(|a, b| a.partial_cmp(b).unwrap());
                w[w.len() / 2]
            })
            .collect();
        smoothed
            .iter()
            .map(|&v| {
                if v < self.fixation_max {
                    GazeClass::Fixation
                } else if v < self.saccade_min {
                    GazeClass::Pursuit
                } else {
                    GazeClass::Saccade
                }
            })
            .collect()
    }

    /// Classification accuracy against the trace's ground-truth labels.
    pub fn accuracy(&self, samples: &[GazeSample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let classes = self.classify(samples);
        let correct = classes
            .iter()
            .zip(samples)
            .filter(|(c, s)| c.label() == s.true_class)
            .count();
        correct as f32 / samples.len() as f32
    }
}

/// Convenience: classify with default thresholds.
pub fn classify_trace(samples: &[GazeSample]) -> Vec<GazeClass> {
    IvtClassifier::default().classify(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{GazeSynthesizer, GazeTraceConfig};

    #[test]
    fn accuracy_high_on_synthetic_trace() {
        let mut synth = GazeSynthesizer::new(GazeTraceConfig::default(), 11);
        let samples = synth.generate(30.0);
        let acc = IvtClassifier::default().accuracy(&samples);
        assert!(acc > 0.8, "I-VT accuracy {acc}");
    }

    #[test]
    fn saccade_recall_specifically() {
        let mut synth = GazeSynthesizer::new(GazeTraceConfig::default(), 12);
        let samples = synth.generate(30.0);
        let classes = IvtClassifier::default().classify(&samples);
        let mut tp = 0;
        let mut total = 0;
        for (c, s) in classes.iter().zip(&samples) {
            if s.true_class == 2 {
                total += 1;
                if *c == GazeClass::Saccade {
                    tp += 1;
                }
            }
        }
        let recall = tp as f32 / total.max(1) as f32;
        assert!(recall > 0.6, "saccade recall {recall}");
    }

    #[test]
    fn short_traces_handled() {
        assert!(classify_trace(&[]).is_empty());
        let one = [GazeSample { t: 0.0, pos: holo_math::Vec2::ZERO, true_class: 0 }];
        assert_eq!(classify_trace(&one).len(), 1);
    }

    #[test]
    fn thresholds_separate_speeds() {
        // Hand-built trace: 1 s still, then fast jump.
        let mut samples = Vec::new();
        for i in 0..120 {
            samples.push(GazeSample {
                t: i as f32 / 120.0,
                pos: holo_math::Vec2::new(0.0, 0.0),
                true_class: 0,
            });
        }
        for i in 0..6 {
            samples.push(GazeSample {
                t: 1.0 + i as f32 / 120.0,
                pos: holo_math::Vec2::new(i as f32 * 2.0, 0.0), // 240 deg/s
                true_class: 2,
            });
        }
        let classes = classify_trace(&samples);
        assert_eq!(classes[60], GazeClass::Fixation);
        assert_eq!(classes[123], GazeClass::Saccade);
    }
}
