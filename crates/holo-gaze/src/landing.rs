//! Saccade landing-point prediction.
//!
//! §3.1: "by leveraging saccadic omission, we can predict mainly the
//! landing positions of saccades to improve QoE". Because saccades are
//! ballistic, the landing point is determined early in flight: fitting
//! the main-sequence amplitude-velocity relation to the first observed
//! samples predicts where the eye will land tens of milliseconds before
//! it does — enough lead time to prefetch the foveal region.

use crate::trace::GazeSample;
use holo_math::Vec2;

/// Sampling-bias correction applied to the observed peak velocity (see
/// [`SaccadePredictor::predict`]); calibrated on synthetic traces.
pub const VELOCITY_CORRECTION: f32 = 1.08;

/// Predicts the landing point of an in-flight saccade.
#[derive(Debug, Clone, Default)]
pub struct SaccadePredictor {
    onset: Option<(f32, Vec2)>,
    peak_velocity: f32,
    direction: Vec2,
    last: Option<(f32, Vec2)>,
}

impl SaccadePredictor {
    /// Fresh predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one sample classified as part of a saccade. Returns the
    /// current landing prediction once at least two samples are seen.
    pub fn observe(&mut self, sample: &GazeSample) -> Option<Vec2> {
        let (t, p) = (sample.t, sample.pos);
        if self.onset.is_none() {
            self.onset = Some((t, p));
            self.last = Some((t, p));
            return None;
        }
        let (lt, lp) = self.last.unwrap();
        let dt = (t - lt).max(1e-5);
        let v = lp.distance(p) / dt;
        self.peak_velocity = self.peak_velocity.max(v);
        let dir = p - self.onset.unwrap().1;
        if dir.length() > 1e-4 {
            self.direction = dir.normalized();
        }
        self.last = Some((t, p));
        self.predict()
    }

    /// Current landing prediction: invert the calibrated main sequence
    /// from the observed peak velocity, with a sampling-bias correction,
    /// then extrapolate along the flight direction from the onset.
    ///
    /// The calibration assumes minimum-jerk kinematics with duration
    /// `D(A) = 21 ms + 2.2 ms/deg * A` and peak velocity
    /// `Vp = 1.875 * A / D(A)`. A tracker sampling at ~120 Hz observes
    /// *inter-sample mean* velocities, which undershoot the instantaneous
    /// peak (and mid-flight the peak may not have occurred yet), so the
    /// observed maximum is multiplied by [`VELOCITY_CORRECTION`] — the
    /// factor a deployed system fits during per-user calibration (the
    /// "fine-grained learning" of the paper's landing-prediction
    /// citations). The prediction never falls short of the distance
    /// already traveled.
    pub fn predict(&self) -> Option<Vec2> {
        let (_, onset_pos) = self.onset?;
        if self.peak_velocity < 1.0 || self.direction.length() < 1e-4 {
            return None;
        }
        let vp = (self.peak_velocity * VELOCITY_CORRECTION).min(830.0);
        // Invert Vp = 1.875 A / (0.021 + 0.0022 A).
        let denom = 1.875 - 0.0022 * vp;
        let amplitude = if denom > 1e-3 { 0.021 * vp / denom } else { 60.0 };
        let traveled = self.last.map_or(0.0, |(_, p)| onset_pos.distance(p));
        Some(onset_pos + self.direction * amplitude.max(traveled))
    }

    /// Reset at saccade end.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// True once a saccade onset has been observed.
    pub fn in_flight(&self) -> bool {
        self.onset.is_some()
    }
}

/// Evaluate the predictor over a trace: for each true saccade, record the
/// prediction error (degrees) after observing the given fraction of the
/// saccade's samples. Returns (errors, saccade count).
pub fn evaluate_landing_error(samples: &[GazeSample], observe_fraction: f32) -> (Vec<f32>, usize) {
    let mut errors = Vec::new();
    let mut count = 0usize;
    let mut i = 0usize;
    while i < samples.len() {
        if samples[i].true_class != crate::trace::CLASS_SACCADE {
            i += 1;
            continue;
        }
        // Collect the saccade extent.
        let start = i;
        while i < samples.len() && samples[i].true_class == crate::trace::CLASS_SACCADE {
            i += 1;
        }
        let end = i; // one past
        let len = end - start;
        if len < 3 || end >= samples.len() {
            continue;
        }
        count += 1;
        // Landing = first sample after the saccade (eye settled).
        let landing = samples[end.min(samples.len() - 1)].pos;
        let observe = ((len as f32 * observe_fraction).ceil() as usize).clamp(2, len);
        let mut pred = SaccadePredictor::new();
        let mut last_pred = None;
        for s in &samples[start..start + observe] {
            if let Some(p) = pred.observe(s) {
                last_pred = Some(p);
            }
        }
        if let Some(p) = last_pred {
            errors.push(p.distance(landing));
        }
    }
    (errors, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{GazeSynthesizer, GazeTraceConfig};

    fn mean(v: &[f32]) -> f32 {
        v.iter().sum::<f32>() / v.len().max(1) as f32
    }

    #[test]
    fn prediction_improves_with_observation() {
        let mut synth = GazeSynthesizer::new(GazeTraceConfig::default(), 21);
        let samples = synth.generate(60.0);
        let (early, n1) = evaluate_landing_error(&samples, 0.4);
        let (late, n2) = evaluate_landing_error(&samples, 0.9);
        assert!(n1 > 10 && n2 > 10, "saccade counts {n1} {n2}");
        assert!(!early.is_empty() && !late.is_empty());
        assert!(
            mean(&late) < mean(&early),
            "late {:.2} should beat early {:.2}",
            mean(&late),
            mean(&early)
        );
    }

    #[test]
    fn late_prediction_reasonably_accurate() {
        let mut synth = GazeSynthesizer::new(GazeTraceConfig::default(), 22);
        let samples = synth.generate(60.0);
        let (late, _) = evaluate_landing_error(&samples, 0.9);
        // Mean error after seeing 90% of the saccade should be a small
        // fraction of typical amplitudes (3-18 deg).
        assert!(mean(&late) < 4.0, "late landing error {}", mean(&late));
    }

    #[test]
    fn predictor_state_machine() {
        let mut p = SaccadePredictor::new();
        assert!(!p.in_flight());
        assert!(p.predict().is_none());
        let s0 = GazeSample { t: 0.0, pos: Vec2::new(0.0, 0.0), true_class: 2 };
        let s1 = GazeSample { t: 0.008, pos: Vec2::new(1.5, 0.0), true_class: 2 };
        assert!(p.observe(&s0).is_none());
        let pred = p.observe(&s1);
        assert!(p.in_flight());
        assert!(pred.is_some());
        // Direction of prediction should be +x.
        let pr = pred.unwrap();
        assert!(pr.x > 1.0 && pr.y.abs() < 0.5, "prediction {pr:?}");
        p.reset();
        assert!(!p.in_flight());
    }

    #[test]
    fn prediction_never_shorter_than_traveled() {
        let mut p = SaccadePredictor::new();
        // Slow start (low velocity) but long travel.
        for i in 0..10 {
            let s = GazeSample {
                t: i as f32 * 0.008,
                pos: Vec2::new(i as f32 * 0.8, 0.0),
                true_class: 2,
            };
            p.observe(&s);
        }
        let pred = p.predict().unwrap();
        assert!(pred.x >= 7.2 - 1e-3, "prediction {pred:?} shorter than traveled");
    }
}
