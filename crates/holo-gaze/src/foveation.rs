//! Foveation maps: partitioning scene content by angular distance from
//! the gaze point.
//!
//! The foveated hybrid pipeline (§3.1) transmits full mesh for content
//! within the foveal radius of the (predicted) gaze point and keypoints
//! for everything else. [`FoveationMap`] does the partitioning in gaze
//! angle space and computes the foveal fraction of a content set — the
//! knob behind ablation A's bandwidth/quality trade-off.

use holo_math::{Vec2, Vec3};

/// A gaze-centered angular partition.
#[derive(Debug, Clone)]
pub struct FoveationMap {
    /// Gaze direction in screen angle space, degrees.
    pub gaze: Vec2,
    /// Foveal radius, degrees (human fovea ~2.5 deg; practical systems
    /// use 5-20 deg to absorb prediction error).
    pub foveal_radius: f32,
    /// Viewer position in world space.
    pub viewer: Vec3,
    /// Viewer forward direction (gaze (0,0) maps here).
    pub forward: Vec3,
    /// Viewer right direction.
    pub right: Vec3,
    /// Viewer up direction.
    pub up: Vec3,
}

impl FoveationMap {
    /// Build for a viewer at `viewer` looking along `forward`.
    pub fn new(viewer: Vec3, forward: Vec3, gaze: Vec2, foveal_radius: f32) -> Self {
        let forward = forward.normalized();
        let right = forward.cross(Vec3::Y).normalized();
        let right = if right.length_sq() < 1e-9 { Vec3::X } else { right };
        let up = right.cross(forward).normalized();
        Self { gaze, foveal_radius, viewer, forward, right, up }
    }

    /// Angular position (degrees) of a world point in the viewer's field.
    pub fn angle_of(&self, p: Vec3) -> Vec2 {
        let d = (p - self.viewer).normalized();
        let x = d.dot(self.right);
        let y = d.dot(self.up);
        let z = d.dot(self.forward).max(1e-6);
        Vec2::new(x.atan2(z).to_degrees(), y.atan2(z).to_degrees())
    }

    /// True when a world point falls inside the foveal circle.
    pub fn is_foveal(&self, p: Vec3) -> bool {
        self.angle_of(p).distance(self.gaze) <= self.foveal_radius
    }

    /// Partition indices of a point set into (foveal, peripheral).
    pub fn partition(&self, points: &[Vec3]) -> (Vec<u32>, Vec<u32>) {
        let mut fov = Vec::new();
        let mut per = Vec::new();
        for (i, &p) in points.iter().enumerate() {
            if self.is_foveal(p) {
                fov.push(i as u32);
            } else {
                per.push(i as u32);
            }
        }
        (fov, per)
    }

    /// Fraction of points inside the fovea.
    pub fn foveal_fraction(&self, points: &[Vec3]) -> f32 {
        if points.is_empty() {
            return 0.0;
        }
        let inside = points.iter().filter(|&&p| self.is_foveal(p)).count();
        inside as f32 / points.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viewer_map(gaze: Vec2, radius: f32) -> FoveationMap {
        FoveationMap::new(Vec3::new(0.0, 1.5, 3.0), Vec3::new(0.0, 0.0, -1.0), gaze, radius)
    }

    #[test]
    fn straight_ahead_is_foveal() {
        let m = viewer_map(Vec2::ZERO, 5.0);
        assert!(m.is_foveal(Vec3::new(0.0, 1.5, 0.0)));
        // A point far to the side is peripheral.
        assert!(!m.is_foveal(Vec3::new(2.5, 1.5, 0.0)));
    }

    #[test]
    fn gaze_offset_shifts_the_fovea() {
        // Gaze 20 degrees to the left (negative x in our convention
        // depends on right vector; just verify consistency).
        let m = viewer_map(Vec2::new(-20.0, 0.0), 6.0);
        let ahead = Vec3::new(0.0, 1.5, 0.0);
        assert!(!m.is_foveal(ahead), "center should now be peripheral");
        // Find the point at -20 degrees: x = -tan(20 deg) * 3.
        let x = -(20.0f32.to_radians().tan()) * 3.0;
        let target = Vec3::new(x, 1.5, 0.0);
        let ang = m.angle_of(target);
        assert!(ang.distance(m.gaze) < 1.0, "angle {ang:?}");
        assert!(m.is_foveal(target));
    }

    #[test]
    fn foveal_fraction_grows_with_radius() {
        let points: Vec<Vec3> = (0..400)
            .map(|i| {
                let a = i as f32 * 0.157;
                Vec3::new(a.sin() * 0.8, 1.0 + (a * 1.3).cos() * 0.8, (a * 0.7).cos() * 0.3)
            })
            .collect();
        let small = viewer_map(Vec2::ZERO, 3.0).foveal_fraction(&points);
        let large = viewer_map(Vec2::ZERO, 25.0).foveal_fraction(&points);
        assert!(large > small, "fraction small {small} large {large}");
        assert!(large <= 1.0 && small >= 0.0);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let points: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new((i as f32 * 0.37).sin(), 1.5 + (i as f32 * 0.23).cos(), 0.0))
            .collect();
        let m = viewer_map(Vec2::ZERO, 10.0);
        let (fov, per) = m.partition(&points);
        assert_eq!(fov.len() + per.len(), points.len());
        for &i in &fov {
            assert!(m.is_foveal(points[i as usize]));
        }
        for &i in &per {
            assert!(!m.is_foveal(points[i as usize]));
        }
    }

    #[test]
    fn empty_points() {
        let m = viewer_map(Vec2::ZERO, 10.0);
        assert_eq!(m.foveal_fraction(&[]), 0.0);
    }
}
