//! Multi-camera capture rigs and point-cloud fusion.
//!
//! Holographic capture surrounds the subject with RGB-D cameras covering
//! different viewing angles (§2.1). A [`CaptureRig`] places N cameras on a
//! ring, captures them all against one SDF, and fuses the depth maps into
//! a colored point cloud with voxel-grid filtering — the "synchronization,
//! calibration, and filtering" merge step of the paper. An optional
//! calibration error model perturbs extrinsics to simulate imperfect
//! registration.

use crate::camera::{Camera, CameraIntrinsics};
use crate::noise::DepthNoiseModel;
use crate::render::{render_rgbd, RgbdFrame, ShadingConfig};
use holo_math::{Mat4, Pcg32, Quat, Vec3};
use holo_mesh::pointcloud::PointCloud;
use holo_mesh::sdf::Sdf;

/// Rig construction parameters.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// Number of cameras on the ring.
    pub camera_count: usize,
    /// Ring radius, meters.
    pub radius: f32,
    /// Camera height, meters.
    pub height: f32,
    /// Point the cameras aim at.
    pub target: Vec3,
    /// Per-camera image resolution.
    pub intrinsics: CameraIntrinsics,
    /// Depth sensor noise.
    pub noise: DepthNoiseModel,
    /// Standard deviation of calibration error: rotation (radians) and
    /// translation (meters) applied to each camera's extrinsics.
    pub calibration_rot_sigma: f32,
    pub calibration_trans_sigma: f32,
    /// Voxel size for fusion downsampling, meters (0 disables).
    pub fusion_voxel: f32,
}

impl Default for RigConfig {
    fn default() -> Self {
        Self {
            camera_count: 4,
            radius: 2.0,
            height: 1.3,
            target: Vec3::new(0.0, 1.1, 0.0),
            intrinsics: CameraIntrinsics::from_fov(160, 120, 1.1),
            noise: DepthNoiseModel::default(),
            calibration_rot_sigma: 0.0,
            calibration_trans_sigma: 0.0,
            fusion_voxel: 0.015,
        }
    }
}

/// A constructed rig (cameras with any calibration error baked in).
#[derive(Debug, Clone)]
pub struct CaptureRig {
    /// The (possibly mis-calibrated) cameras.
    pub cameras: Vec<Camera>,
    /// Noise model applied at capture time.
    pub noise: DepthNoiseModel,
    /// Fusion voxel size.
    pub fusion_voxel: f32,
}

impl CaptureRig {
    /// Build a ring rig. Calibration errors are drawn from `rng`.
    pub fn new(cfg: &RigConfig, rng: &mut Pcg32) -> Self {
        let mut cameras = Vec::with_capacity(cfg.camera_count);
        for i in 0..cfg.camera_count {
            let theta = std::f32::consts::TAU * i as f32 / cfg.camera_count as f32;
            let eye = Vec3::new(cfg.radius * theta.cos(), cfg.height, cfg.radius * theta.sin());
            let mut cam = Camera::look_at(cfg.intrinsics, eye, cfg.target);
            if cfg.calibration_rot_sigma > 0.0 || cfg.calibration_trans_sigma > 0.0 {
                let axis = Vec3::new(rng.normal(), rng.normal(), rng.normal()).normalized();
                let perturb = Mat4::from_rotation_translation(
                    Quat::from_axis_angle(axis, rng.normal() * cfg.calibration_rot_sigma),
                    Vec3::new(rng.normal(), rng.normal(), rng.normal()) * cfg.calibration_trans_sigma,
                );
                cam.pose = perturb * cam.pose;
            }
            cameras.push(cam);
        }
        Self { cameras, noise: cfg.noise, fusion_voxel: cfg.fusion_voxel }
    }

    /// Capture every camera against `sdf`.
    pub fn capture<S: Sdf + ?Sized>(&self, sdf: &S, rng: &mut Pcg32) -> Vec<RgbdFrame> {
        let shading = ShadingConfig::default();
        self.cameras
            .iter()
            .map(|cam| render_rgbd(sdf, cam, &self.noise, &shading, rng))
            .collect()
    }

    /// Fuse frames into a colored world-space point cloud.
    pub fn fuse(&self, frames: &[RgbdFrame]) -> PointCloud {
        let mut cloud = PointCloud::new();
        for frame in frames {
            for y in 0..frame.depth.height {
                for x in 0..frame.depth.width {
                    let z = frame.depth.get(x, y);
                    if z <= 0.0 {
                        continue;
                    }
                    cloud.points.push(frame.camera.unproject(x, y, z));
                    let rgb = frame.color.get(x, y);
                    cloud.colors.push(Vec3::new(
                        rgb[0] as f32 / 255.0,
                        rgb[1] as f32 / 255.0,
                        rgb[2] as f32 / 255.0,
                    ));
                }
            }
        }
        if self.fusion_voxel > 0.0 && !cloud.is_empty() {
            cloud.voxel_downsample(self.fusion_voxel)
        } else {
            cloud
        }
    }

    /// Convenience: capture and fuse in one call.
    pub fn capture_cloud<S: Sdf + ?Sized>(&self, sdf: &S, rng: &mut Pcg32) -> PointCloud {
        let frames = self.capture(sdf, rng);
        self.fuse(&frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_mesh::sdf::SdfSphere;

    fn small_cfg() -> RigConfig {
        RigConfig {
            camera_count: 3,
            intrinsics: CameraIntrinsics::from_fov(80, 60, 1.1),
            target: Vec3::new(0.0, 1.0, 0.0),
            ..Default::default()
        }
    }

    fn sphere() -> SdfSphere {
        SdfSphere { center: Vec3::new(0.0, 1.0, 0.0), radius: 0.5 }
    }

    #[test]
    fn cameras_on_ring_aim_at_target() {
        let mut rng = Pcg32::new(1);
        let rig = CaptureRig::new(&small_cfg(), &mut rng);
        assert_eq!(rig.cameras.len(), 3);
        for cam in &rig.cameras {
            let dist = (cam.position() - Vec3::new(0.0, 1.3, 0.0)).length();
            assert!((dist - 2.0).abs() < 0.01, "radius {dist}");
            // Target should project near the image center.
            let (px, _) = cam.project(Vec3::new(0.0, 1.0, 0.0)).unwrap();
            assert!((px.x - 40.0).abs() < 2.0 && (px.y - 30.0).abs() < 2.0, "target at {px:?}");
        }
    }

    #[test]
    fn fused_cloud_lies_on_sphere() {
        let mut rng = Pcg32::new(2);
        let cfg = RigConfig { noise: DepthNoiseModel::none(), ..small_cfg() };
        let rig = CaptureRig::new(&cfg, &mut rng);
        let cloud = rig.capture_cloud(&sphere(), &mut rng);
        assert!(cloud.len() > 300, "cloud size {}", cloud.len());
        assert_eq!(cloud.colors.len(), cloud.len());
        for &p in &cloud.points {
            let r = (p - Vec3::new(0.0, 1.0, 0.0)).length();
            assert!((r - 0.5).abs() < 0.03, "fused point radius {r}");
        }
    }

    #[test]
    fn multi_view_covers_more_than_single() {
        let mut rng = Pcg32::new(3);
        let cfg = RigConfig { noise: DepthNoiseModel::none(), fusion_voxel: 0.02, ..small_cfg() };
        let rig = CaptureRig::new(&cfg, &mut rng);
        let frames = rig.capture(&sphere(), &mut rng);
        let all = rig.fuse(&frames);
        let single = rig.fuse(&frames[..1]);
        // Three views see (nearly) the whole sphere; one view sees a cap.
        assert!(all.len() as f32 > single.len() as f32 * 1.5, "{} vs {}", all.len(), single.len());
    }

    #[test]
    fn calibration_error_degrades_fusion() {
        let run = |rot_sigma: f32| {
            let mut rng = Pcg32::new(4);
            let cfg = RigConfig {
                noise: DepthNoiseModel::none(),
                calibration_rot_sigma: rot_sigma,
                fusion_voxel: 0.0,
                ..small_cfg()
            };
            let rig = CaptureRig::new(&cfg, &mut rng);
            // Capture with TRUE extrinsics error: render uses the
            // perturbed camera, so unprojection is consistent; simulate
            // registration error by unprojecting with the unperturbed
            // pose instead.
            let ideal_rig = {
                let mut rng2 = Pcg32::new(4);
                let cfg2 = RigConfig { noise: DepthNoiseModel::none(), fusion_voxel: 0.0, ..small_cfg() };
                CaptureRig::new(&cfg2, &mut rng2)
            };
            let frames = rig.capture(&sphere(), &mut rng);
            // Swap in the ideal cameras for unprojection.
            let mut misregistered = Vec::new();
            for (f, ideal) in frames.into_iter().zip(&ideal_rig.cameras) {
                let mut f = f;
                f.camera = *ideal;
                misregistered.push(f);
            }
            let cloud = ideal_rig.fuse(&misregistered);
            // RMS radial error against the true sphere.
            let rms: f32 = (cloud
                .points
                .iter()
                .map(|p| {
                    let r = (*p - Vec3::new(0.0, 1.0, 0.0)).length() - 0.5;
                    r * r
                })
                .sum::<f32>()
                / cloud.len().max(1) as f32)
                .sqrt();
            rms
        };
        let clean = run(0.0);
        let bad = run(0.02);
        assert!(bad > clean * 2.0, "calibration error effect: clean {clean} bad {bad}");
    }

    #[test]
    fn deterministic_capture() {
        let cfg = small_cfg();
        let run = || {
            let mut rng = Pcg32::new(7);
            let rig = CaptureRig::new(&cfg, &mut rng);
            rig.capture_cloud(&sphere(), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.points, b.points);
    }
}
