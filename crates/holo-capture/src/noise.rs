//! Depth sensor noise models.
//!
//! Commodity RGB-D cameras (Kinect, RealSense) have depth noise that grows
//! quadratically with distance and dropouts at grazing incidence. The
//! capture pipeline applies this model so downstream keypoint detection
//! and fusion operate on realistically imperfect data.

use holo_math::{Pcg32, Vec3};

/// Kinect-class axial noise + dropout model.
#[derive(Debug, Clone, Copy)]
pub struct DepthNoiseModel {
    /// Constant axial noise floor, meters (Kinect v2: ~1.5 mm).
    pub sigma_base: f32,
    /// Quadratic distance coefficient, meters^-1 (sigma grows with z^2).
    pub sigma_quadratic: f32,
    /// Dropout probability at normal incidence.
    pub dropout_base: f32,
    /// Additional dropout as incidence approaches grazing (cosine < this
    /// threshold drops out with high probability).
    pub grazing_cos_threshold: f32,
}

impl Default for DepthNoiseModel {
    fn default() -> Self {
        Self {
            sigma_base: 0.0015,
            sigma_quadratic: 0.0019,
            dropout_base: 0.002,
            grazing_cos_threshold: 0.18,
        }
    }
}

impl DepthNoiseModel {
    /// A noiseless model (ground-truth captures).
    pub fn none() -> Self {
        Self { sigma_base: 0.0, sigma_quadratic: 0.0, dropout_base: 0.0, grazing_cos_threshold: 0.0 }
    }

    /// Axial standard deviation at depth `z`.
    pub fn sigma_at(&self, z: f32) -> f32 {
        self.sigma_base + self.sigma_quadratic * z * z
    }

    /// Perturb a measured depth; returns `None` on dropout.
    ///
    /// `cos_incidence` is the absolute cosine between the surface normal
    /// and the view ray.
    pub fn apply(&self, z: f32, cos_incidence: f32, rng: &mut Pcg32) -> Option<f32> {
        let dropout = if cos_incidence < self.grazing_cos_threshold {
            0.85
        } else {
            self.dropout_base
        };
        if dropout > 0.0 && rng.chance(dropout) {
            return None;
        }
        let sigma = self.sigma_at(z);
        if sigma <= 0.0 {
            return Some(z);
        }
        Some((z + rng.normal() * sigma).max(0.0))
    }

    /// Perturb a 3D keypoint position directly (used by the keypoint
    /// detector simulators): axial noise along `view_dir` plus smaller
    /// lateral noise.
    pub fn perturb_point(&self, p: Vec3, camera_pos: Vec3, rng: &mut Pcg32) -> Vec3 {
        let view = (p - camera_pos).normalized();
        let z = (p - camera_pos).length();
        let sigma_axial = self.sigma_at(z);
        let sigma_lateral = sigma_axial * 0.4;
        let lat1 = view.any_orthonormal();
        let lat2 = view.cross(lat1);
        p + view * (rng.normal() * sigma_axial)
            + lat1 * (rng.normal() * sigma_lateral)
            + lat2 * (rng.normal() * sigma_lateral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_grows_with_distance() {
        let m = DepthNoiseModel::default();
        assert!(m.sigma_at(4.0) > m.sigma_at(1.0));
        assert!(m.sigma_at(1.0) >= m.sigma_base);
    }

    #[test]
    fn noiseless_model_is_identity() {
        let m = DepthNoiseModel::none();
        let mut rng = Pcg32::new(1);
        for z in [0.5, 1.0, 3.0] {
            assert_eq!(m.apply(z, 1.0, &mut rng), Some(z));
        }
    }

    #[test]
    fn noise_statistics_match_model() {
        let m = DepthNoiseModel::default();
        let mut rng = Pcg32::new(2);
        let z = 2.0f32;
        let samples: Vec<f32> = (0..20_000)
            .filter_map(|_| m.apply(z, 1.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / samples.len() as f32;
        let expected = m.sigma_at(z);
        assert!((mean - z).abs() < 0.001, "mean {mean}");
        assert!((var.sqrt() - expected).abs() / expected < 0.1, "sigma {} vs {expected}", var.sqrt());
    }

    #[test]
    fn grazing_incidence_drops_out() {
        let m = DepthNoiseModel::default();
        let mut rng = Pcg32::new(3);
        let drops = (0..1000).filter(|_| m.apply(1.0, 0.05, &mut rng).is_none()).count();
        assert!(drops > 700, "grazing dropouts {drops}/1000");
        let mut rng = Pcg32::new(3);
        let drops_normal = (0..1000).filter(|_| m.apply(1.0, 0.95, &mut rng).is_none()).count();
        assert!(drops_normal < 20, "normal-incidence dropouts {drops_normal}/1000");
    }

    #[test]
    fn perturb_point_rms_matches_sigma() {
        let m = DepthNoiseModel::default();
        let mut rng = Pcg32::new(4);
        let p = Vec3::new(0.0, 1.0, 0.0);
        let cam = Vec3::new(0.0, 1.0, 2.0);
        let n = 5000;
        let rms = ((0..n)
            .map(|_| (m.perturb_point(p, cam, &mut rng) - p).length_sq())
            .sum::<f32>()
            / n as f32)
            .sqrt();
        let sigma = m.sigma_at(2.0);
        // Total RMS combines axial + two lateral components.
        let expected = (sigma * sigma * (1.0 + 2.0 * 0.16)).sqrt();
        assert!((rms - expected).abs() / expected < 0.15, "rms {rms} vs {expected}");
    }
}
