//! Pinhole camera model with intrinsics and extrinsics.

use holo_math::{Mat4, Ray, Vec2, Vec3};

/// Pinhole intrinsics (pixel units).
#[derive(Debug, Clone, Copy)]
pub struct CameraIntrinsics {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Focal lengths in pixels.
    pub fx: f32,
    pub fy: f32,
    /// Principal point.
    pub cx: f32,
    pub cy: f32,
}

impl CameraIntrinsics {
    /// Intrinsics from a horizontal field of view in radians.
    pub fn from_fov(width: u32, height: u32, fov_x: f32) -> Self {
        let fx = width as f32 * 0.5 / (fov_x * 0.5).tan();
        Self {
            width,
            height,
            fx,
            fy: fx,
            cx: width as f32 * 0.5,
            cy: height as f32 * 0.5,
        }
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

/// A camera: intrinsics plus a camera-to-world rigid transform. The
/// camera looks down its local `+z` axis, `+x` right, `+y` down (image
/// convention).
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Intrinsic parameters.
    pub intrinsics: CameraIntrinsics,
    /// Camera-to-world transform.
    pub pose: Mat4,
}

impl Camera {
    /// Build a camera at `eye` looking at `target` (world up = +y).
    pub fn look_at(intrinsics: CameraIntrinsics, eye: Vec3, target: Vec3) -> Self {
        let fwd = (target - eye).normalized();
        let world_up = Vec3::Y;
        let right = fwd.cross(world_up).normalized();
        let right = if right.length_sq() < 1e-9 { Vec3::X } else { right };
        let down = fwd.cross(right).normalized();
        // Columns of camera-to-world rotation: x=right, y=down, z=fwd.
        let pose = Mat4::from_rows(
            holo_math::Vec4::new(right.x, down.x, fwd.x, eye.x),
            holo_math::Vec4::new(right.y, down.y, fwd.y, eye.y),
            holo_math::Vec4::new(right.z, down.z, fwd.z, eye.z),
            holo_math::Vec4::new(0.0, 0.0, 0.0, 1.0),
        );
        Self { intrinsics, pose }
    }

    /// Camera position in world space.
    pub fn position(&self) -> Vec3 {
        self.pose.translation_part()
    }

    /// World-space ray through pixel center `(x, y)`.
    pub fn pixel_ray(&self, x: u32, y: u32) -> Ray {
        let k = &self.intrinsics;
        let dir_cam = Vec3::new(
            (x as f32 + 0.5 - k.cx) / k.fx,
            (y as f32 + 0.5 - k.cy) / k.fy,
            1.0,
        );
        Ray::new(self.position(), self.pose.transform_dir(dir_cam))
    }

    /// Project a world point to pixel coordinates and camera-space depth.
    /// Returns `None` when the point is behind the camera.
    pub fn project(&self, p: Vec3) -> Option<(Vec2, f32)> {
        let cam = self.pose.rigid_inverse().transform_point(p);
        if cam.z <= 1e-6 {
            return None;
        }
        let k = &self.intrinsics;
        Some((
            Vec2::new(k.fx * cam.x / cam.z + k.cx, k.fy * cam.y / cam.z + k.cy),
            cam.z,
        ))
    }

    /// Unproject pixel `(x, y)` at camera-space depth `z` to world space.
    pub fn unproject(&self, x: u32, y: u32, z: f32) -> Vec3 {
        let k = &self.intrinsics;
        let cam = Vec3::new(
            (x as f32 + 0.5 - k.cx) / k.fx * z,
            (y as f32 + 0.5 - k.cy) / k.fy * z,
            z,
        );
        self.pose.transform_point(cam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_camera() -> Camera {
        let k = CameraIntrinsics::from_fov(320, 240, 1.2);
        Camera::look_at(k, Vec3::new(0.0, 1.2, 2.5), Vec3::new(0.0, 1.2, 0.0))
    }

    #[test]
    fn center_pixel_looks_at_target() {
        let cam = test_camera();
        let r = cam.pixel_ray(160, 120);
        // Ray direction should point from eye toward the target.
        let expect = (Vec3::new(0.0, 1.2, 0.0) - cam.position()).normalized();
        assert!(r.dir.dot(expect) > 0.999, "dir {:?}", r.dir);
    }

    #[test]
    fn project_unproject_roundtrip() {
        let cam = test_camera();
        let p = Vec3::new(0.2, 1.4, 0.3);
        let (px, z) = cam.project(p).unwrap();
        let back = cam.unproject(px.x as u32, px.y as u32, z);
        // Pixel quantization bounds the error.
        assert!((back - p).length() < 0.02, "{back:?} vs {p:?}");
    }

    #[test]
    fn behind_camera_is_none() {
        let cam = test_camera();
        assert!(cam.project(Vec3::new(0.0, 1.2, 10.0)).is_none());
    }

    #[test]
    fn ray_through_projected_pixel_hits_point() {
        let cam = test_camera();
        let p = Vec3::new(-0.3, 0.9, -0.2);
        let (px, _) = cam.project(p).unwrap();
        let ray = cam.pixel_ray(px.x as u32, px.y as u32);
        // Distance from the ray to the point should be tiny.
        let t = (p - ray.origin).dot(ray.dir);
        let closest = ray.at(t);
        assert!((closest - p).length() < 0.02);
    }

    #[test]
    fn fov_matches_edge_rays() {
        let k = CameraIntrinsics::from_fov(640, 480, 1.0);
        let cam = Camera::look_at(k, Vec3::ZERO, Vec3::Z);
        let left = cam.pixel_ray(0, 240);
        let right = cam.pixel_ray(639, 240);
        let angle = left.dir.dot(right.dir).clamp(-1.0, 1.0).acos();
        assert!((angle - 1.0).abs() < 0.02, "fov angle {angle}");
    }
}
