//! Synthetic RGB-D capture substrate.
//!
//! The paper's pipeline starts with "multiple RGB(-D) sensors capturing"
//! each participant (Fig. 1). Real Kinect hardware is not available here,
//! so this crate simulates it end to end: pinhole cameras with intrinsics
//! and extrinsics ([`camera`]), depth + color rendering of any SDF by
//! sphere tracing ([`render`]), Kinect-class depth noise and dropout
//! models ([`noise`]), and multi-camera rigs whose frames fuse into
//! colored point clouds ([`rig`]). All randomness is seeded, so captures
//! replay exactly.

pub mod camera;
pub mod noise;
pub mod render;
pub mod rig;

pub use camera::{Camera, CameraIntrinsics};
pub use noise::DepthNoiseModel;
pub use render::{render_rgbd, DepthImage, RgbdFrame, ShadingConfig};
pub use rig::{CaptureRig, RigConfig};
