//! RGB-D rendering of an SDF by sphere tracing.
//!
//! Each pixel's camera ray marches through the field (sphere tracing:
//! step by the current distance value, which can never overshoot an exact
//! or conservative SDF); hits produce a depth sample and a shaded color.
//! This is the virtual Kinect: its output feeds fusion, keypoint
//! detection, and the NeRF training set.

use crate::camera::Camera;
use crate::noise::DepthNoiseModel;
use holo_compress::texture::Texture;
use holo_math::{Pcg32, Vec3};
use holo_mesh::sdf::Sdf;

/// A depth map; `0.0` marks missing/no-hit pixels.
#[derive(Debug, Clone)]
pub struct DepthImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Camera-space depth (z) per pixel, row-major. 0 = invalid.
    pub depths: Vec<f32>,
}

impl DepthImage {
    /// Depth at a pixel (0 = invalid).
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.depths[(y * self.width + x) as usize]
    }

    /// Fraction of pixels with a valid depth.
    pub fn coverage(&self) -> f32 {
        if self.depths.is_empty() {
            return 0.0;
        }
        self.depths.iter().filter(|&&d| d > 0.0).count() as f32 / self.depths.len() as f32
    }
}

/// One captured RGB-D frame from a single camera.
#[derive(Debug, Clone)]
pub struct RgbdFrame {
    /// The capturing camera.
    pub camera: Camera,
    /// Depth channel.
    pub depth: DepthImage,
    /// Color channel.
    pub color: Texture,
}

/// Shading parameters for the color channel.
#[derive(Debug, Clone, Copy)]
pub struct ShadingConfig {
    /// Directional light (normalized at use).
    pub light_dir: Vec3,
    /// Height (world y) above which albedo is skin rather than clothing.
    pub skin_above_y: f32,
}

impl Default for ShadingConfig {
    fn default() -> Self {
        Self { light_dir: Vec3::new(0.4, -1.0, -0.6), skin_above_y: 1.45 }
    }
}

/// Sphere-trace the SDF for every pixel of `camera`, applying `noise` to
/// the depth channel. Deterministic given the RNG.
pub fn render_rgbd<S: Sdf + ?Sized>(
    sdf: &S,
    camera: &Camera,
    noise: &DepthNoiseModel,
    shading: &ShadingConfig,
    rng: &mut Pcg32,
) -> RgbdFrame {
    let k = camera.intrinsics;
    let mut depth = DepthImage { width: k.width, height: k.height, depths: vec![0.0; k.pixel_count()] };
    let mut color = Texture::new(k.width, k.height);
    let bounds = sdf.bounds();
    let light = shading.light_dir.normalized() * -1.0;
    let eps = bounds.longest_side() * 2e-4;

    for y in 0..k.height {
        for x in 0..k.width {
            let ray = camera.pixel_ray(x, y);
            let Some((t0, t1)) = ray.intersect_aabb(&bounds) else {
                continue;
            };
            let mut t = t0.max(0.0);
            let mut hit = false;
            for _ in 0..192 {
                let p = ray.at(t);
                let d = sdf.distance(p);
                if d < eps {
                    hit = true;
                    break;
                }
                t += d.max(eps);
                if t > t1 {
                    break;
                }
            }
            if !hit {
                continue;
            }
            let p = ray.at(t);
            let n = sdf.normal(p, eps.max(1e-4));
            let cos_inc = n.dot(ray.dir).abs();
            // Depth channel: camera-space z with sensor noise.
            let cam_z = camera.pose.rigid_inverse().transform_point(p).z;
            if let Some(z) = noise.apply(cam_z, cos_inc, rng) {
                depth.depths[(y * k.width + x) as usize] = z;
            }
            // Color channel: Lambertian with region albedo.
            let albedo = if p.y > shading.skin_above_y {
                Vec3::new(0.85, 0.66, 0.55)
            } else {
                Vec3::new(0.25, 0.35, 0.60)
            };
            let diff = n.dot(light).max(0.0) * 0.8 + 0.2;
            let c = albedo * diff;
            color.set(x, y, [
                (c.x.clamp(0.0, 1.0) * 255.0) as u8,
                (c.y.clamp(0.0, 1.0) * 255.0) as u8,
                (c.z.clamp(0.0, 1.0) * 255.0) as u8,
            ]);
        }
    }
    RgbdFrame { camera: *camera, depth, color }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraIntrinsics;
    use holo_mesh::sdf::SdfSphere;

    fn sphere_setup() -> (SdfSphere, Camera) {
        let s = SdfSphere { center: Vec3::new(0.0, 1.0, 0.0), radius: 0.5 };
        let k = CameraIntrinsics::from_fov(96, 72, 1.0);
        let cam = Camera::look_at(k, Vec3::new(0.0, 1.0, 2.0), Vec3::new(0.0, 1.0, 0.0));
        (s, cam)
    }

    #[test]
    fn sphere_depth_accurate_at_center() {
        let (s, cam) = sphere_setup();
        let mut rng = Pcg32::new(1);
        let frame = render_rgbd(&s, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
        let z = frame.depth.get(48, 36);
        // Camera 2 m away, sphere radius 0.5 -> nearest point at 1.5 m.
        assert!((z - 1.5).abs() < 0.01, "center depth {z}");
    }

    #[test]
    fn background_pixels_invalid() {
        let (s, cam) = sphere_setup();
        let mut rng = Pcg32::new(2);
        let frame = render_rgbd(&s, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
        assert_eq!(frame.depth.get(0, 0), 0.0, "corner should miss");
        let cov = frame.depth.coverage();
        assert!((0.05..0.8).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn unprojected_hits_lie_on_surface() {
        let (s, cam) = sphere_setup();
        let mut rng = Pcg32::new(3);
        let frame = render_rgbd(&s, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
        let mut checked = 0;
        for y in 0..frame.depth.height {
            for x in 0..frame.depth.width {
                let z = frame.depth.get(x, y);
                if z > 0.0 {
                    let p = cam.unproject(x, y, z);
                    let r = (p - Vec3::new(0.0, 1.0, 0.0)).length();
                    assert!((r - 0.5).abs() < 0.02, "hit radius {r}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn noise_perturbs_depth() {
        let (s, cam) = sphere_setup();
        let mut rng = Pcg32::new(4);
        let clean = render_rgbd(&s, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
        let mut rng = Pcg32::new(4);
        let noisy = render_rgbd(&s, &cam, &DepthNoiseModel::default(), &ShadingConfig::default(), &mut rng);
        let mut diffs = 0;
        for (a, b) in clean.depths_pairs(&noisy) {
            if a > 0.0 && b > 0.0 && (a - b).abs() > 1e-5 {
                diffs += 1;
            }
        }
        assert!(diffs > 100, "noise changed only {diffs} pixels");
    }

    #[test]
    fn lit_side_brighter_than_silhouette_edge() {
        let (s, cam) = sphere_setup();
        let mut rng = Pcg32::new(5);
        let frame = render_rgbd(&s, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
        let center = frame.color.get(48, 36);
        assert!(center.iter().any(|&c| c > 30), "center unlit: {center:?}");
    }

    impl RgbdFrame {
        fn depths_pairs<'a>(&'a self, other: &'a RgbdFrame) -> impl Iterator<Item = (f32, f32)> + 'a {
            self.depth.depths.iter().copied().zip(other.depth.depths.iter().copied())
        }
    }
}
