//! The semantic degradation ladder.
//!
//! The paper's taxonomy orders semantic representations by richness:
//! full mesh/NeRF geometry, then (with a prebuilt avatar) gaussian
//! updates, then keypoints, then text. A subscriber whose downlink
//! collapses — or whose delta chain is poisoned — should not stall: the
//! SFU can *degrade* the stream to a cheaper tier and climb back up once
//! the link has been stable for a window. This is rate adaptation along
//! the **semantic** axis, orthogonal to the per-rung bitrate thinning in
//! [`holo_net::abr`].
//!
//! The walk is **data-driven** over an ordered tier list — no tier is
//! special-cased, so a four-tier (or N-tier) ladder needs no match-arm
//! surgery. Each [`TierSpec`] declares the two properties the state
//! machine cares about:
//!
//! - `delta_coded` — frames at this tier depend on a keyframe chain.
//!   A poisoned chain makes delta frames undecodable (drop to the
//!   nearest snapshot tier), and climbing *into* a delta-coded tier must
//!   wait for a keyframe, the only point where the chain can re-sync.
//! - `requires_prebuild` — the tier only works for subscribers holding
//!   this sender's prebuilt avatar blob. Without it the tier is simply
//!   not on the ladder for that subscriber: downgrades skip over it and
//!   upgrades never enter it.
//!
//! Rules, unchanged from the three-tier ladder:
//!
//! - **Downgrades are immediate.** Starvation (the predicted per-stream
//!   share falls below a tier's floor) drops straight to the deepest
//!   affordable tier; a poisoned delta drops to the nearest available
//!   self-contained tier, because forwarding an undecodable delta wastes
//!   the wire.
//! - **Upgrades are cautious.** The share must clear the richer tier's
//!   floor for a full stability window, one (available) tier per step.

use holo_net::time::SimTime;
use std::time::Duration;

/// A semantic representation tier, richest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticTier {
    /// Full geometry (mesh / NeRF) stream: keyframes + deltas.
    Mesh,
    /// Prebuilt gaussian-avatar conditioning updates: tiny keyframe +
    /// delta stream, usable only with the one-time avatar blob.
    Gaussian,
    /// Keypoint skeleton snapshots: self-contained, ~2% of mesh bytes.
    Keypoints,
    /// Text captions: self-contained, ~0.2% of mesh bytes.
    Text,
}

impl SemanticTier {
    /// Stable lowercase name (used in reports and trace counters).
    pub fn name(self) -> &'static str {
        match self {
            SemanticTier::Mesh => "mesh",
            SemanticTier::Gaussian => "gaussian",
            SemanticTier::Keypoints => "keypoints",
            SemanticTier::Text => "text",
        }
    }
}

/// One tier of the ladder: what it costs and when it is usable.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// The representation shipped at this tier.
    pub tier: SemanticTier,
    /// Wire bytes relative to the full-quality frame, in `(0, 1]`.
    pub payload_fraction: f64,
    /// Minimum predicted per-stream share (bps) to *stay* at this tier.
    /// The bottom tier must use `0.0` so some tier is always feasible.
    pub min_share_bps: f64,
    /// Frames at this tier ride a keyframe/delta chain (not snapshots).
    pub delta_coded: bool,
    /// The tier is usable only by subscribers holding the sender's
    /// prebuilt avatar blob.
    pub requires_prebuild: bool,
}

/// The ladder: tiers ordered richest-first, plus the upgrade window.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    /// Tiers, richest (index 0) to cheapest.
    pub tiers: Vec<TierSpec>,
    /// How long the share must clear a richer tier's floor before
    /// climbing one step.
    pub stability_window: Duration,
}

impl DegradationLadder {
    /// The paper's mesh → keypoints → text ladder with floors sized for
    /// multi-Mbps geometry streams.
    pub fn standard() -> Self {
        Self {
            tiers: vec![
                TierSpec {
                    tier: SemanticTier::Mesh,
                    payload_fraction: 1.0,
                    min_share_bps: 4.0e6,
                    delta_coded: true,
                    requires_prebuild: false,
                },
                TierSpec {
                    tier: SemanticTier::Keypoints,
                    payload_fraction: 0.02,
                    min_share_bps: 120e3,
                    delta_coded: false,
                    requires_prebuild: false,
                },
                TierSpec {
                    tier: SemanticTier::Text,
                    payload_fraction: 0.002,
                    min_share_bps: 0.0,
                    delta_coded: false,
                    requires_prebuild: false,
                },
            ],
            stability_window: Duration::from_millis(500),
        }
    }

    /// The four-tier amortized ladder: mesh → gaussian → keypoints →
    /// text. The gaussian rung ships tiny avatar-conditioning updates
    /// (richer than keypoints at a fraction of mesh bytes) but only to
    /// subscribers holding the sender's prebuilt avatar blob.
    pub fn amortized() -> Self {
        let mut ladder = Self::standard();
        ladder.tiers.insert(
            1,
            TierSpec {
                tier: SemanticTier::Gaussian,
                payload_fraction: 0.035,
                min_share_bps: 160e3,
                delta_coded: true,
                requires_prebuild: true,
            },
        );
        ladder
    }

    /// Structural checks: non-empty, fractions in `(0, 1]` and strictly
    /// descending, floors descending, and a bottom tier that always
    /// works: zero floor, self-contained, no prebuild gate.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("degradation ladder needs at least one tier".into());
        }
        for w in self.tiers.windows(2) {
            if w[1].payload_fraction >= w[0].payload_fraction {
                return Err("tier payload fractions must strictly descend".into());
            }
            if w[1].min_share_bps > w[0].min_share_bps {
                return Err("tier share floors must descend".into());
            }
        }
        for t in &self.tiers {
            if !(t.payload_fraction > 0.0 && t.payload_fraction <= 1.0) {
                return Err(format!("tier {} fraction out of (0,1]", t.tier.name()));
            }
            if !t.min_share_bps.is_finite() || t.min_share_bps < 0.0 {
                return Err(format!("tier {} floor must be finite and >= 0", t.tier.name()));
            }
        }
        let bottom = self.tiers.last().unwrap();
        if bottom.min_share_bps != 0.0 {
            return Err("bottom tier floor must be 0 so some tier is always feasible".into());
        }
        if bottom.delta_coded || bottom.requires_prebuild {
            return Err("bottom tier must be a self-contained, ungated safety tier".into());
        }
        if self.stability_window == Duration::ZERO {
            return Err("stability window must be positive".into());
        }
        Ok(())
    }
}

/// Per-subscriber ladder state machine (see module docs for the rules).
#[derive(Debug, Clone)]
pub struct DegradeState {
    /// The ladder this state walks.
    pub ladder: DegradationLadder,
    level: usize,
    pending_up_since: Option<SimTime>,
    prebuild_ready: bool,
    /// Downgrade transitions taken (starvation or poison).
    pub downgrades: u64,
    /// Upgrade transitions taken.
    pub upgrades: u64,
}

impl DegradeState {
    /// Start at the richest tier this subscriber can use (without the
    /// prebuild blob, the richest ungated tier).
    pub fn new(ladder: DegradationLadder) -> Self {
        let mut s = Self {
            ladder,
            level: 0,
            pending_up_since: None,
            prebuild_ready: false,
            downgrades: 0,
            upgrades: 0,
        };
        s.level = (0..s.ladder.tiers.len()).find(|&i| s.available(i)).unwrap_or(0);
        s
    }

    /// Current tier index (0 = richest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current tier spec.
    pub fn spec(&self) -> &TierSpec {
        &self.ladder.tiers[self.level]
    }

    /// Whether frames at the current tier are self-contained snapshots.
    pub fn self_contained(&self) -> bool {
        !self.ladder.tiers[self.level].delta_coded
    }

    /// Whether this subscriber holds the sender's prebuilt avatar blob.
    pub fn prebuild_ready(&self) -> bool {
        self.prebuild_ready
    }

    /// Mark the prebuild blob as transferred (or revoked). Prebuild
    /// arrival only opens gated tiers for future upgrades; revocation
    /// evicts the subscriber from a gated tier on the next decision.
    pub fn set_prebuild_ready(&mut self, ready: bool) {
        self.prebuild_ready = ready;
    }

    fn available(&self, index: usize) -> bool {
        !self.ladder.tiers[index].requires_prebuild || self.prebuild_ready
    }

    /// Advance the state machine for one forwarded frame and return the
    /// tier index to ship it at. `share_bps` is the predicted
    /// per-stream downlink share, `poisoned` whether this sender's
    /// delta chain is currently broken at the subscriber, `is_key`
    /// whether the offered frame is a keyframe.
    pub fn decide(&mut self, now: SimTime, share_bps: f64, poisoned: bool, is_key: bool) -> usize {
        let tiers = &self.ladder.tiers;
        // Richest *available* tier whose floor the share clears (the
        // bottom tier is ungated with a zero floor, so one always is).
        let feasible = (0..tiers.len())
            .find(|&i| self.available(i) && share_bps >= tiers[i].min_share_bps)
            .unwrap_or(tiers.len() - 1);
        if feasible > self.level {
            // Starvation (or a revoked prebuild): drop immediately, as
            // deep as needed, skipping unavailable tiers.
            self.level = feasible;
            self.downgrades += 1;
            self.pending_up_since = None;
        } else if poisoned && !is_key && tiers[self.level].delta_coded {
            // A poisoned delta is undecodable; ship from the nearest
            // available self-contained tier below instead. (The bottom
            // tier is always such a tier.)
            let snapshot = (self.level + 1..tiers.len())
                .find(|&i| self.available(i) && !tiers[i].delta_coded)
                .unwrap_or(tiers.len() - 1);
            self.level = snapshot;
            self.downgrades += 1;
            self.pending_up_since = None;
        } else if feasible < self.level {
            // Richer tier affordable: climb one available step per
            // stability window, and into a delta-coded tier only at a
            // keyframe (the chain can only sync there).
            let since = *self.pending_up_since.get_or_insert(now);
            let target = (0..self.level)
                .rev()
                .find(|&i| self.available(i))
                .expect("feasible < level implies a richer available tier");
            if now.saturating_since(since) >= self.ladder.stability_window
                && (!tiers[target].delta_coded || is_key)
            {
                self.level = target;
                self.upgrades += 1;
                self.pending_up_since = Some(now);
            }
        } else {
            self.pending_up_since = None;
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn standard_ladder_validates() {
        assert!(DegradationLadder::standard().validate().is_ok());
    }

    #[test]
    fn amortized_ladder_validates() {
        let l = DegradationLadder::amortized();
        assert!(l.validate().is_ok());
        assert_eq!(l.tiers.len(), 4);
        assert_eq!(l.tiers[1].tier, SemanticTier::Gaussian);
        assert!(l.tiers[1].requires_prebuild && l.tiers[1].delta_coded);
    }

    #[test]
    fn validate_rejects_broken_ladders() {
        let mut l = DegradationLadder::standard();
        l.tiers[1].payload_fraction = 1.0;
        assert!(l.validate().is_err(), "non-descending fractions");

        let mut l = DegradationLadder::standard();
        l.tiers.last_mut().unwrap().min_share_bps = 50e3;
        assert!(l.validate().is_err(), "non-zero bottom floor");

        let l = DegradationLadder { tiers: vec![], stability_window: Duration::from_millis(1) };
        assert!(l.validate().is_err(), "empty ladder");

        let mut l = DegradationLadder::standard();
        l.tiers.last_mut().unwrap().requires_prebuild = true;
        assert!(l.validate().is_err(), "gated bottom tier");

        let mut l = DegradationLadder::standard();
        l.tiers.last_mut().unwrap().delta_coded = true;
        assert!(l.validate().is_err(), "delta-coded bottom tier");
    }

    #[test]
    fn starvation_downgrades_immediately_and_as_deep_as_needed() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 10e6, false, true), 0, "healthy share stays at mesh");
        // Share collapses below even the keypoint floor: straight to text.
        assert_eq!(s.decide(ms(33), 50e3, false, false), 2);
        assert_eq!(s.downgrades, 1);
        assert!(s.self_contained());
    }

    #[test]
    fn upgrades_wait_for_the_stability_window_and_a_keyframe() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        s.decide(ms(0), 50e3, false, true); // -> text
        assert_eq!(s.level(), 2);
        // Share recovers; first sighting starts the window, no climb yet.
        assert_eq!(s.decide(ms(100), 10e6, false, false), 2);
        // Window (500 ms) not yet elapsed.
        assert_eq!(s.decide(ms(400), 10e6, false, false), 2);
        // Window elapsed: climb one step (to keypoints), not two.
        assert_eq!(s.decide(ms(700), 10e6, false, false), 1);
        // Next window elapses on a delta: top tier must wait for a key.
        assert_eq!(s.decide(ms(1300), 10e6, false, false), 1);
        // Keyframe arrives with the window satisfied: back to mesh.
        assert_eq!(s.decide(ms(1400), 10e6, false, true), 0);
        assert_eq!(s.upgrades, 2);
    }

    #[test]
    fn a_dip_resets_the_upgrade_window() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        s.decide(ms(0), 200e3, false, true); // -> keypoints
        assert_eq!(s.level(), 1);
        s.decide(ms(100), 10e6, false, false); // window starts
        s.decide(ms(300), 200e3, false, false); // dip: window resets
        // 500 ms after the *first* sighting, but the dip reset the clock.
        assert_eq!(s.decide(ms(650), 10e6, false, true), 1);
        assert_eq!(s.decide(ms(1200), 10e6, false, true), 0, "window re-earned");
    }

    #[test]
    fn poisoned_top_tier_delta_drops_one_tier() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 10e6, true, false), 1, "poisoned delta degrades");
        assert_eq!(s.downgrades, 1);
        // Poison below the top tier is impossible (snapshots) and must
        // not push deeper.
        assert_eq!(s.decide(ms(33), 10e6, true, false), 1);
        assert_eq!(s.downgrades, 1);
        // A poisoned *keyframe* offer at the top is fine: keys re-sync.
        let mut s2 = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s2.decide(ms(0), 10e6, true, true), 0);
    }

    #[test]
    fn bottom_tier_is_always_feasible() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 0.0, false, false), 2);
        // Zero share forever: stays at text, never panics or stalls.
        for i in 1..100 {
            assert_eq!(s.decide(ms(i * 33), 0.0, false, i % 10 == 0), 2);
        }
    }

    #[test]
    fn starvation_skips_gaussian_without_the_prebuild() {
        // Share affords gaussian (160k) but not mesh: without the blob
        // the subscriber lands on keypoints, with it on gaussian.
        let mut without = DegradeState::new(DegradationLadder::amortized());
        assert_eq!(without.decide(ms(0), 300e3, false, false), 2, "skips gated tier");
        let mut with = DegradeState::new(DegradationLadder::amortized());
        with.set_prebuild_ready(true);
        assert_eq!(with.decide(ms(0), 300e3, false, false), 1, "lands on gaussian");
    }

    #[test]
    fn upgrade_into_gaussian_needs_prebuild_window_and_keyframe() {
        let mut s = DegradeState::new(DegradationLadder::amortized());
        s.decide(ms(0), 130e3, false, true); // -> keypoints (level 2)
        assert_eq!(s.level(), 2);
        // Share recovers into gaussian range but the blob is missing:
        // the climb target is mesh... which the share cannot afford, so
        // gaussian-range share with no prebuild means no richer feasible
        // tier at all — the subscriber holds at keypoints.
        for t in 0..20 {
            assert_eq!(s.decide(ms(100 + t * 100), 300e3, false, true), 2);
        }
        assert_eq!(s.upgrades, 0);
        // Blob arrives: gaussian becomes the upgrade target, but the
        // climb still waits for the window and then a keyframe.
        s.set_prebuild_ready(true);
        assert_eq!(s.decide(ms(3000), 300e3, false, false), 2, "window restarts");
        assert_eq!(s.decide(ms(3600), 300e3, false, false), 2, "delta cannot enter");
        assert_eq!(s.decide(ms(3700), 300e3, false, true), 1, "keyframe enters gaussian");
        assert_eq!(s.upgrades, 1);
        assert!(!s.self_contained(), "gaussian updates are delta-coded");
    }

    #[test]
    fn poisoned_gaussian_delta_drops_to_keypoints() {
        let mut s = DegradeState::new(DegradationLadder::amortized());
        s.set_prebuild_ready(true);
        s.decide(ms(0), 300e3, false, true); // -> gaussian
        assert_eq!(s.level(), 1);
        // Poisoned chain at a delta-coded tier: drop to the nearest
        // self-contained tier (keypoints), not the bottom.
        assert_eq!(s.decide(ms(33), 300e3, true, false), 2);
        assert_eq!(s.downgrades, 2);
    }

    #[test]
    fn poisoned_mesh_delta_skips_gaussian_snapshot_hunt() {
        // From mesh, a poisoned delta needs a *snapshot* tier: gaussian
        // is delta-coded, so the drop lands on keypoints even when the
        // prebuild is present.
        let mut s = DegradeState::new(DegradationLadder::amortized());
        s.set_prebuild_ready(true);
        assert_eq!(s.decide(ms(0), 10e6, true, false), 2);
    }

    #[test]
    fn revoked_prebuild_evicts_from_gaussian() {
        let mut s = DegradeState::new(DegradationLadder::amortized());
        s.set_prebuild_ready(true);
        s.decide(ms(0), 300e3, false, true); // -> gaussian
        assert_eq!(s.level(), 1);
        s.set_prebuild_ready(false);
        assert_eq!(s.decide(ms(33), 300e3, false, false), 2, "gated tier no longer usable");
    }
}
