//! The semantic degradation ladder.
//!
//! The paper's taxonomy orders semantic representations by richness:
//! full mesh/NeRF geometry, then keypoints, then text. A subscriber
//! whose downlink collapses — or whose delta chain is poisoned — should
//! not stall: the SFU can *degrade* the stream to a cheaper tier whose
//! frames are self-contained snapshots (a keypoint pose, a caption) and
//! climb back up once the link has been stable for a window. This is
//! rate adaptation along the **semantic** axis, orthogonal to the
//! per-rung bitrate thinning in [`holo_net::abr`]:
//!
//! - **Downgrades are immediate.** Starvation (the predicted per-stream
//!   share falls below a tier's floor) drops straight to the deepest
//!   tier the share affords; a poisoned delta at the top tier drops one
//!   tier, because forwarding an undecodable delta wastes the wire.
//! - **Upgrades are cautious.** The share must clear the richer tier's
//!   floor for a full stability window, one tier per step — and the
//!   climb back *into* the top tier waits for a keyframe, the only
//!   point where the delta chain can re-sync.

use holo_net::time::SimTime;
use std::time::Duration;

/// A semantic representation tier, richest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticTier {
    /// Full geometry (mesh / NeRF) stream: keyframes + deltas.
    Mesh,
    /// Keypoint skeleton snapshots: self-contained, ~2% of mesh bytes.
    Keypoints,
    /// Text captions: self-contained, ~0.2% of mesh bytes.
    Text,
}

impl SemanticTier {
    /// Stable lowercase name (used in reports and trace counters).
    pub fn name(self) -> &'static str {
        match self {
            SemanticTier::Mesh => "mesh",
            SemanticTier::Keypoints => "keypoints",
            SemanticTier::Text => "text",
        }
    }
}

/// One tier of the ladder: what it costs and when it is affordable.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// The representation shipped at this tier.
    pub tier: SemanticTier,
    /// Wire bytes relative to the full-quality frame, in `(0, 1]`.
    pub payload_fraction: f64,
    /// Minimum predicted per-stream share (bps) to *stay* at this tier.
    /// The bottom tier must use `0.0` so some tier is always feasible.
    pub min_share_bps: f64,
}

/// The ladder: tiers ordered richest-first, plus the upgrade window.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    /// Tiers, richest (index 0) to cheapest.
    pub tiers: Vec<TierSpec>,
    /// How long the share must clear a richer tier's floor before
    /// climbing one step.
    pub stability_window: Duration,
}

impl DegradationLadder {
    /// The paper's mesh → keypoints → text ladder with floors sized for
    /// multi-Mbps geometry streams.
    pub fn standard() -> Self {
        Self {
            tiers: vec![
                TierSpec { tier: SemanticTier::Mesh, payload_fraction: 1.0, min_share_bps: 4.0e6 },
                TierSpec {
                    tier: SemanticTier::Keypoints,
                    payload_fraction: 0.02,
                    min_share_bps: 120e3,
                },
                TierSpec { tier: SemanticTier::Text, payload_fraction: 0.002, min_share_bps: 0.0 },
            ],
            stability_window: Duration::from_millis(500),
        }
    }

    /// Structural checks: non-empty, fractions in `(0, 1]` and strictly
    /// descending, floors descending with a zero floor at the bottom.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("degradation ladder needs at least one tier".into());
        }
        for w in self.tiers.windows(2) {
            if w[1].payload_fraction >= w[0].payload_fraction {
                return Err("tier payload fractions must strictly descend".into());
            }
            if w[1].min_share_bps > w[0].min_share_bps {
                return Err("tier share floors must descend".into());
            }
        }
        for t in &self.tiers {
            if !(t.payload_fraction > 0.0 && t.payload_fraction <= 1.0) {
                return Err(format!("tier {} fraction out of (0,1]", t.tier.name()));
            }
            if !t.min_share_bps.is_finite() || t.min_share_bps < 0.0 {
                return Err(format!("tier {} floor must be finite and >= 0", t.tier.name()));
            }
        }
        if self.tiers.last().unwrap().min_share_bps != 0.0 {
            return Err("bottom tier floor must be 0 so some tier is always feasible".into());
        }
        if self.stability_window == Duration::ZERO {
            return Err("stability window must be positive".into());
        }
        Ok(())
    }
}

/// Per-subscriber ladder state machine (see module docs for the rules).
#[derive(Debug, Clone)]
pub struct DegradeState {
    /// The ladder this state walks.
    pub ladder: DegradationLadder,
    level: usize,
    pending_up_since: Option<SimTime>,
    /// Downgrade transitions taken (starvation or poison).
    pub downgrades: u64,
    /// Upgrade transitions taken.
    pub upgrades: u64,
}

impl DegradeState {
    /// Start at the top tier.
    pub fn new(ladder: DegradationLadder) -> Self {
        Self { ladder, level: 0, pending_up_since: None, downgrades: 0, upgrades: 0 }
    }

    /// Current tier index (0 = richest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current tier spec.
    pub fn spec(&self) -> &TierSpec {
        &self.ladder.tiers[self.level]
    }

    /// Whether frames at the current tier are self-contained snapshots
    /// (every tier below the top ships snapshots, never deltas).
    pub fn self_contained(&self) -> bool {
        self.level > 0
    }

    /// Advance the state machine for one forwarded frame and return the
    /// tier index to ship it at. `share_bps` is the predicted
    /// per-stream downlink share, `poisoned` whether this sender's
    /// delta chain is currently broken at the subscriber, `is_key`
    /// whether the offered frame is a keyframe.
    pub fn decide(&mut self, now: SimTime, share_bps: f64, poisoned: bool, is_key: bool) -> usize {
        let tiers = &self.ladder.tiers;
        // Richest tier whose floor the share clears (bottom floor is 0).
        let feasible =
            tiers.iter().position(|t| share_bps >= t.min_share_bps).unwrap_or(tiers.len() - 1);
        if feasible > self.level {
            // Starvation: drop immediately, as deep as needed.
            self.level = feasible;
            self.downgrades += 1;
            self.pending_up_since = None;
        } else if poisoned && !is_key && self.level == 0 && tiers.len() > 1 {
            // A poisoned top-tier delta is undecodable; ship a
            // self-contained snapshot one tier down instead.
            self.level = 1;
            self.downgrades += 1;
            self.pending_up_since = None;
        } else if feasible < self.level {
            // Richer tier affordable: climb one step per stability
            // window, and into the top tier only at a keyframe.
            let since = *self.pending_up_since.get_or_insert(now);
            let target = self.level - 1;
            if now.saturating_since(since) >= self.ladder.stability_window
                && (target != 0 || is_key)
            {
                self.level = target;
                self.upgrades += 1;
                self.pending_up_since = Some(now);
            }
        } else {
            self.pending_up_since = None;
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn standard_ladder_validates() {
        assert!(DegradationLadder::standard().validate().is_ok());
    }

    #[test]
    fn validate_rejects_broken_ladders() {
        let mut l = DegradationLadder::standard();
        l.tiers[1].payload_fraction = 1.0;
        assert!(l.validate().is_err(), "non-descending fractions");

        let mut l = DegradationLadder::standard();
        l.tiers.last_mut().unwrap().min_share_bps = 50e3;
        assert!(l.validate().is_err(), "non-zero bottom floor");

        let l = DegradationLadder { tiers: vec![], stability_window: Duration::from_millis(1) };
        assert!(l.validate().is_err(), "empty ladder");
    }

    #[test]
    fn starvation_downgrades_immediately_and_as_deep_as_needed() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 10e6, false, true), 0, "healthy share stays at mesh");
        // Share collapses below even the keypoint floor: straight to text.
        assert_eq!(s.decide(ms(33), 50e3, false, false), 2);
        assert_eq!(s.downgrades, 1);
        assert!(s.self_contained());
    }

    #[test]
    fn upgrades_wait_for_the_stability_window_and_a_keyframe() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        s.decide(ms(0), 50e3, false, true); // -> text
        assert_eq!(s.level(), 2);
        // Share recovers; first sighting starts the window, no climb yet.
        assert_eq!(s.decide(ms(100), 10e6, false, false), 2);
        // Window (500 ms) not yet elapsed.
        assert_eq!(s.decide(ms(400), 10e6, false, false), 2);
        // Window elapsed: climb one step (to keypoints), not two.
        assert_eq!(s.decide(ms(700), 10e6, false, false), 1);
        // Next window elapses on a delta: top tier must wait for a key.
        assert_eq!(s.decide(ms(1300), 10e6, false, false), 1);
        // Keyframe arrives with the window satisfied: back to mesh.
        assert_eq!(s.decide(ms(1400), 10e6, false, true), 0);
        assert_eq!(s.upgrades, 2);
    }

    #[test]
    fn a_dip_resets_the_upgrade_window() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        s.decide(ms(0), 200e3, false, true); // -> keypoints
        assert_eq!(s.level(), 1);
        s.decide(ms(100), 10e6, false, false); // window starts
        s.decide(ms(300), 200e3, false, false); // dip: window resets
        // 500 ms after the *first* sighting, but the dip reset the clock.
        assert_eq!(s.decide(ms(650), 10e6, false, true), 1);
        assert_eq!(s.decide(ms(1200), 10e6, false, true), 0, "window re-earned");
    }

    #[test]
    fn poisoned_top_tier_delta_drops_one_tier() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 10e6, true, false), 1, "poisoned delta degrades");
        assert_eq!(s.downgrades, 1);
        // Poison below the top tier is impossible (snapshots) and must
        // not push deeper.
        assert_eq!(s.decide(ms(33), 10e6, true, false), 1);
        assert_eq!(s.downgrades, 1);
        // A poisoned *keyframe* offer at the top is fine: keys re-sync.
        let mut s2 = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s2.decide(ms(0), 10e6, true, true), 0);
    }

    #[test]
    fn bottom_tier_is_always_feasible() {
        let mut s = DegradeState::new(DegradationLadder::standard());
        assert_eq!(s.decide(ms(0), 0.0, false, false), 2);
        // Zero share forever: stays at text, never panics or stalls.
        for i in 1..100 {
            assert_eq!(s.decide(ms(i * 33), 0.0, false, i % 10 == 0), 2);
        }
    }
}
