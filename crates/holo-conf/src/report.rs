//! The room's outcome: per-subscriber distributions and fairness.
//!
//! A `RoomReport` is the multi-party analogue of `core::session`'s
//! `SessionReport`: per-subscriber latency/stall/usable-frame-rate
//! distributions plus room-level aggregates (Jain fairness across
//! subscribers, SFU egress-queue occupancy). It serializes to a
//! canonical JSON string, and because the whole simulation is seeded
//! virtual time, the same room seed reproduces the report byte for
//! byte.

use holo_math::Summary;
use holo_runtime::ser::{JsonValue, ToJson};

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n·Σx²)`, in `(0, 1]`, 1 when all shares are equal. An
/// all-zero allocation is equally (if miserably) fair: 1.0.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// One subscriber's view of the room.
#[derive(Debug, Clone)]
pub struct SubscriberReport {
    /// Participant id.
    pub id: usize,
    /// Frames this subscriber should have received ((N-1) x frames).
    pub expected: usize,
    /// Frames that arrived complete on the downlink.
    pub delivered: usize,
    /// Frames both delivered and decodable under the keyframe/delta
    /// dependency rules.
    pub usable: usize,
    /// `usable / expected`.
    pub usable_rate: f64,
    /// End-to-end latency over usable frames, ms (capture -> rendered).
    pub e2e_ms: Summary,
    /// Fraction of usable frames within the room's latency budget.
    pub within_budget: f64,
    /// Total playout stall time across this subscriber's streams, ms.
    pub stall_ms: f64,
    /// Fan-outs to this subscriber rejected by the SFU egress queue.
    pub sfu_dropped: u64,
    /// Fan-outs admitted but lost on this subscriber's downlink.
    pub downlink_lost: u64,
    /// Mean ladder-rung fraction the SFU forwarded to this subscriber
    /// (1.0 = always full quality).
    pub mean_rung_fraction: f64,
    /// Usable frames that arrived as degraded (below-top-tier)
    /// snapshots.
    pub degraded: usize,
    /// Semantic-ladder downgrade transitions taken at this port.
    pub ladder_downgrades: u64,
    /// Semantic-ladder upgrade transitions taken at this port.
    pub ladder_upgrades: u64,
    /// Delivered fan-outs per ladder rung, `(tier name, count)` in
    /// rung order. Populated only for ladders with a prebuild-gated
    /// rung (the amortized gaussian tier), where the classic
    /// `degraded` split cannot say *which* rung carried the traffic;
    /// empty otherwise, and omitted from the JSON when empty.
    pub tier_counts: Vec<(String, u64)>,
}

impl ToJson for SubscriberReport {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id", self.id.to_json()),
            ("expected", self.expected.to_json()),
            ("delivered", self.delivered.to_json()),
            ("usable", self.usable.to_json()),
            ("usable_rate", self.usable_rate.to_json()),
            ("e2e_ms_mean", self.e2e_ms.mean().to_json()),
            ("e2e_ms_p50", self.e2e_ms.percentile(50.0).unwrap_or(f64::NAN).to_json()),
            ("e2e_ms_p95", self.e2e_ms.percentile(95.0).unwrap_or(f64::NAN).to_json()),
            ("e2e_ms_max", self.e2e_ms.max().to_json()),
            ("within_budget", self.within_budget.to_json()),
            ("stall_ms", self.stall_ms.to_json()),
            ("sfu_dropped", self.sfu_dropped.to_json()),
            ("downlink_lost", self.downlink_lost.to_json()),
            ("mean_rung_fraction", self.mean_rung_fraction.to_json()),
            ("degraded", self.degraded.to_json()),
            ("ladder_downgrades", self.ladder_downgrades.to_json()),
            ("ladder_upgrades", self.ladder_upgrades.to_json()),
        ];
        if !self.tier_counts.is_empty() {
            fields.push((
                "tier_counts",
                JsonValue::Obj(
                    self.tier_counts
                        .iter()
                        .map(|(name, count)| (name.clone(), count.to_json()))
                        .collect(),
                ),
            ));
        }
        JsonValue::obj(fields)
    }
}

/// The full room outcome.
#[derive(Debug, Clone)]
pub struct RoomReport {
    /// Room size.
    pub participants: usize,
    /// Frames per sender stream.
    pub frames: usize,
    /// Scene frame rate.
    pub fps: f64,
    /// Room seed (reports are byte-identical per seed).
    pub seed: u64,
    /// Per-subscriber outcomes, in participant order.
    pub subscribers: Vec<SubscriberReport>,
    /// Jain fairness index over subscriber usable rates.
    pub jain_fairness: f64,
    /// Mean SFU egress-queue occupancy (frames, at admission).
    pub queue_occupancy_mean: f64,
    /// Peak SFU egress-queue occupancy at any port.
    pub queue_occupancy_max: f64,
    /// Frames lost on uplinks (never reached the SFU).
    pub uplink_lost: u64,
    /// Total fan-out copies the SFU attempted.
    pub forwarded: u64,
    /// Fan-outs rejected by egress queues.
    pub queue_dropped: u64,
    /// Fan-outs lost on downlinks.
    pub downlink_lost: u64,
    /// Frames whose envelope arrived corrupted (uplink or downlink)
    /// and was detected-and-dropped by the CRC check.
    pub corrupt_detected: u64,
}

impl RoomReport {
    /// The worst subscriber's usable-frame rate.
    pub fn min_usable_rate(&self) -> f64 {
        self.subscribers.iter().map(|s| s.usable_rate).fold(f64::INFINITY, f64::min)
    }

    /// Mean usable-frame rate across subscribers.
    pub fn mean_usable_rate(&self) -> f64 {
        if self.subscribers.is_empty() {
            return 0.0;
        }
        self.subscribers.iter().map(|s| s.usable_rate).sum::<f64>() / self.subscribers.len() as f64
    }

    /// Mean end-to-end latency across subscribers' usable frames, ms.
    pub fn mean_e2e_ms(&self) -> f64 {
        let mut s = Summary::new();
        for sub in &self.subscribers {
            if sub.e2e_ms.count() > 0 {
                s.record(sub.e2e_ms.mean());
            }
        }
        if s.count() == 0 { f64::NAN } else { s.mean() }
    }

    /// Canonical JSON. Deterministic field order and float formatting:
    /// two runs of the same seeded room render identical bytes.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("participants", self.participants.to_json()),
            ("frames", self.frames.to_json()),
            ("fps", self.fps.to_json()),
            ("seed", self.seed.to_json()),
            ("jain_fairness", self.jain_fairness.to_json()),
            ("queue_occupancy_mean", self.queue_occupancy_mean.to_json()),
            ("queue_occupancy_max", self.queue_occupancy_max.to_json()),
            ("uplink_lost", self.uplink_lost.to_json()),
            ("forwarded", self.forwarded.to_json()),
            ("queue_dropped", self.queue_dropped.to_json()),
            ("downlink_lost", self.downlink_lost.to_json()),
            ("corrupt_detected", self.corrupt_detected.to_json()),
            ("subscribers", self.subscribers.to_json()),
        ])
    }

    /// The canonical report bytes (see [`to_json`](Self::to_json)).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// One [`holo_obs::SloSummary`] per subscriber, from the aggregate
    /// fields this report already carries. Stall and burn-rate inputs
    /// are per-frame quantities the aggregate doesn't retain, so those
    /// objectives come back *skipped* (visible in the verdict), never
    /// silently passed. The `full`/`degraded` tier split feeds
    /// per-tier floors.
    pub fn slo_summaries(&self) -> Vec<holo_obs::SloSummary> {
        self.subscribers
            .iter()
            .map(|s| holo_obs::SloSummary {
                frames_expected: s.expected as u64,
                frames_usable: s.usable as u64,
                usable_rate: None,
                p99_e2e_ms: s.e2e_ms.percentile(99.0),
                max_stall_ms: None,
                worst_window_burn: None,
                tier_fractions: {
                    let mut tf = if s.usable > 0 {
                        vec![
                            (
                                "full".to_string(),
                                (s.usable - s.degraded) as f64 / s.usable as f64,
                            ),
                            ("degraded".to_string(), s.degraded as f64 / s.usable as f64),
                        ]
                    } else {
                        Vec::new()
                    };
                    // Amortized ladders add one fraction per rung
                    // (delivered share at the SFU port), so per-tier
                    // floors like `gaussian >= 0.5` are judgeable.
                    let total: u64 = s.tier_counts.iter().map(|(_, c)| c).sum();
                    if total > 0 {
                        for (name, count) in &s.tier_counts {
                            tf.push((name.clone(), *count as f64 / total as f64));
                        }
                    }
                    tf
                },
            })
            .collect()
    }

    /// Evaluate `spec` for every subscriber, in participant order.
    pub fn slo_verdicts(&self, spec: &holo_obs::SloSpec) -> Vec<holo_obs::SloVerdict> {
        self.slo_summaries().iter().map(|s| spec.evaluate_summary(s)).collect()
    }

    /// The room-level verdict: the room passes when every subscriber
    /// passes (an SLO is a floor, not an average — one starved
    /// subscriber fails the room).
    pub fn slo_room(&self, spec: &holo_obs::SloSpec) -> holo_obs::SloVerdict {
        let per_sub = self.slo_summaries();
        let combined = holo_obs::SloSummary {
            frames_expected: per_sub.iter().map(|s| s.frames_expected).sum(),
            frames_usable: per_sub.iter().map(|s| s.frames_usable).sum(),
            usable_rate: None,
            // Worst subscriber's p99: conservative, floor-shaped.
            p99_e2e_ms: per_sub
                .iter()
                .filter_map(|s| s.p99_e2e_ms)
                .fold(None, |acc: Option<f64>, p| Some(acc.map_or(p, |a| a.max(p)))),
            max_stall_ms: None,
            worst_window_burn: None,
            tier_fractions: Vec::new(),
        };
        spec.evaluate_summary(&combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_shares_is_one() {
        assert!((jain_index(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_detects_starvation() {
        // One subscriber gets everything, three get nothing: J = 1/4.
        let j = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "jain {j}");
        // Mild skew stays high.
        assert!(jain_index(&[0.9, 1.0, 0.95]) > 0.99);
    }

    #[test]
    fn jain_single_subscriber_is_trivially_fair() {
        assert_eq!(jain_index(&[0.7]), 1.0);
        assert_eq!(jain_index(&[123.0]), 1.0);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let xs = [0.2, 0.9, 0.4, 0.55];
        let base = jain_index(&xs);
        for k in [0.001, 0.5, 37.5, 1e6] {
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            assert!(
                (jain_index(&scaled) - base).abs() < 1e-12,
                "scale {k} changed jain: {} vs {base}",
                jain_index(&scaled)
            );
        }
    }

    #[test]
    fn jain_bounded_by_reciprocal_n_and_one() {
        for xs in [vec![1.0, 2.0, 3.0], vec![10.0, 0.1, 0.1, 0.1], vec![5.0, 5.0]] {
            let j = jain_index(&xs);
            let lo = 1.0 / xs.len() as f64;
            assert!(j >= lo - 1e-12 && j <= 1.0 + 1e-12, "jain {j} outside [{lo}, 1]");
        }
    }

    #[test]
    fn report_renders_all_room_fields() {
        let report = RoomReport {
            participants: 2,
            frames: 3,
            fps: 30.0,
            seed: 7,
            subscribers: vec![],
            jain_fairness: 1.0,
            queue_occupancy_mean: 0.0,
            queue_occupancy_max: 0.0,
            uplink_lost: 0,
            forwarded: 6,
            queue_dropped: 0,
            downlink_lost: 0,
            corrupt_detected: 0,
        };
        let s = report.render();
        for key in ["participants", "jain_fairness", "queue_occupancy_mean", "forwarded"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert_eq!(s, report.render(), "rendering is deterministic");
    }
}
