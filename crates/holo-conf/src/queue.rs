//! The SFU's bounded per-subscriber egress queue.
//!
//! The forwarder cannot buffer arbitrarily: when a subscriber's
//! downlink falls behind the room's aggregate frame rate, frames pile
//! up at the SFU's egress port. The queue is bounded **in frames** and
//! applies an explicit drop policy at admission time — this is where
//! backpressure becomes frame loss, and (via the keyframe/delta
//! dependency rules) where one congested moment poisons a whole
//! delta run for that subscriber only.

use holo_math::Summary;
use holo_net::time::SimTime;

/// What to drop when the egress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Tail drop: reject any incoming frame while the queue is full.
    TailDrop,
    /// Reject incoming deltas at the soft bound, but admit keyframes up
    /// to twice the bound — sacrificing deltas (which are individually
    /// cheap to lose) to protect the frames that reset dependency
    /// chains.
    PreferKeyframes,
}

/// A bounded egress queue in front of one subscriber's downlink.
///
/// The downlink link model already serializes admitted frames in
/// virtual time; the queue tracks how many admitted frames are still
/// in flight (not yet fully serialized) and gates admission on that
/// occupancy.
#[derive(Debug, Clone)]
pub struct EgressQueue {
    /// Soft occupancy bound, frames.
    pub capacity: usize,
    /// Drop policy at the bound.
    pub policy: DropPolicy,
    in_flight: Vec<SimTime>,
    /// Frames admitted to the downlink.
    pub admitted: u64,
    /// Delta frames rejected at admission.
    pub dropped_deltas: u64,
    /// Keyframes rejected at admission.
    pub dropped_keys: u64,
    /// Occupancy observed at each admission attempt.
    pub occupancy: Summary,
}

impl EgressQueue {
    /// An empty queue.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        Self {
            capacity: capacity.max(1),
            policy,
            in_flight: Vec::new(),
            admitted: 0,
            dropped_deltas: 0,
            dropped_keys: 0,
            occupancy: Summary::new(),
        }
    }

    /// Frames still in flight at `now`.
    pub fn occupancy_at(&mut self, now: SimTime) -> usize {
        self.in_flight.retain(|t| *t > now);
        self.in_flight.len()
    }

    /// Offer a frame at `now`; returns whether it may enter the
    /// downlink. Records the occupancy sample and any drop.
    pub fn admit(&mut self, now: SimTime, is_key: bool) -> bool {
        let occ = self.occupancy_at(now);
        self.occupancy.record(occ as f64);
        let admit = if occ < self.capacity {
            true
        } else {
            match self.policy {
                DropPolicy::TailDrop => false,
                DropPolicy::PreferKeyframes => is_key && occ < self.capacity * 2,
            }
        };
        if !admit {
            if is_key {
                self.dropped_keys += 1;
            } else {
                self.dropped_deltas += 1;
            }
        }
        admit
    }

    /// Record an admitted frame whose downlink serialization finishes at
    /// `done` (the link's busy horizon after the send).
    pub fn commit(&mut self, done: SimTime) {
        self.admitted += 1;
        self.in_flight.push(done);
    }

    /// Total frames rejected at admission.
    pub fn dropped(&self) -> u64 {
        self.dropped_deltas + self.dropped_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn admits_until_full_then_tail_drops() {
        let mut q = EgressQueue::new(2, DropPolicy::TailDrop);
        assert!(q.admit(t(0), false));
        q.commit(t(100));
        assert!(q.admit(t(0), false));
        q.commit(t(200));
        // Full at t=0.
        assert!(!q.admit(t(0), true), "tail drop rejects keys too");
        assert_eq!(q.dropped_keys, 1);
        // After the first frame drains, space again.
        assert!(q.admit(t(150), false));
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn prefer_keyframes_sacrifices_deltas() {
        let mut q = EgressQueue::new(1, DropPolicy::PreferKeyframes);
        assert!(q.admit(t(0), false));
        q.commit(t(100));
        // Full: delta rejected, key admitted (soft overshoot).
        assert!(!q.admit(t(0), false));
        assert!(q.admit(t(0), true));
        q.commit(t(100));
        // At the hard bound (2x) even keys drop.
        assert!(!q.admit(t(0), true));
        assert_eq!(q.dropped_deltas, 1);
        assert_eq!(q.dropped_keys, 1);
    }

    #[test]
    fn occupancy_drains_with_time() {
        let mut q = EgressQueue::new(8, DropPolicy::TailDrop);
        for i in 0..5u64 {
            assert!(q.admit(t(0), false));
            q.commit(t(10 * (i + 1)));
        }
        assert_eq!(q.occupancy_at(t(0)), 5);
        assert_eq!(q.occupancy_at(t(25)), 3);
        assert_eq!(q.occupancy_at(t(100)), 0);
        assert!(q.occupancy.max() >= 4.0);
    }
}
