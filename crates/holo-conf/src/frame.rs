//! Stream frames and the keyframe/delta dependency rules.
//!
//! Every frame a sender uploads carries a dependency tag mirroring the
//! temporal coders elsewhere in the workspace (`holo-compress::temporal`
//! ships a mesh keyframe then position deltas; `holo-textsem::delta`
//! ships a token snapshot then edit ops). A **key** frame is
//! self-contained; a **delta** frame is decodable only on top of its
//! predecessor. The consequence the closed-form conference math cannot
//! see: dropping one delta poisons every following delta until the next
//! keyframe, so loss cost is coupled across frames, per subscriber.

use holo_net::time::SimTime;
use semholo::semantics::StageCost;

/// Dependency tag of one frame in a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTag {
    /// Self-contained: decodable in isolation.
    Key,
    /// Depends on the previous frame of the same stream.
    Delta,
}

impl FrameTag {
    /// Tag of frame `index` under a keyframe cadence of `interval`
    /// (`interval <= 1` makes every frame a keyframe).
    pub fn for_index(index: usize, interval: usize) -> FrameTag {
        if interval <= 1 || index % interval == 0 {
            FrameTag::Key
        } else {
            FrameTag::Delta
        }
    }

    /// Whether this is a keyframe.
    pub fn is_key(self) -> bool {
        self == FrameTag::Key
    }
}

/// Number of frames that transitively depend on frame `index` under a
/// keyframe cadence of `interval` in a stream of `total` frames: the
/// frames after it in the same GOP. Losing a keyframe poisons its
/// whole GOP (`interval - 1` descendants); the last delta before the
/// next key has zero — nothing downstream is lost by abandoning its
/// retransmission once its own render deadline passes. This is the
/// dependency-depth signal `holo-uep` ranks importance classes by.
pub fn gop_descendants(index: usize, interval: usize, total: usize) -> usize {
    if index >= total {
        return 0;
    }
    if interval <= 1 {
        // Every frame is a keyframe: nothing depends on anything.
        return 0;
    }
    let gop_start = index - index % interval;
    let gop_end = (gop_start + interval).min(total);
    gop_end - index - 1
}

/// One frame of one sender's uplink stream, as the SFU sees it.
#[derive(Debug, Clone)]
pub struct StreamFrame {
    /// Originating participant.
    pub sender: usize,
    /// Frame index within the sender's stream.
    pub index: usize,
    /// Dependency tag.
    pub tag: FrameTag,
    /// Capture time at the sender.
    pub capture: SimTime,
    /// Encoded payload size on the wire, bytes (top quality).
    pub payload_bytes: usize,
    /// Sender-side extraction time, ms (already charged before upload).
    pub extract_ms: f64,
    /// Receiver-side reconstruction cost (charged per subscriber device).
    pub recon: StageCost,
}

/// Walks one (subscriber, sender) stream in frame order and applies the
/// dependency rules: a delta is usable only if the frame before it was
/// usable; a keyframe recovers the chain.
#[derive(Debug, Clone, Default)]
pub struct DependencyTracker {
    prev_usable: bool,
    prev_index: Option<usize>,
}

impl DependencyTracker {
    /// Fresh chain (nothing usable yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next frame **in index order**; `delivered` is whether it
    /// arrived complete. Returns whether the frame is usable.
    pub fn advance(&mut self, index: usize, tag: FrameTag, delivered: bool) -> bool {
        if let Some(prev) = self.prev_index {
            debug_assert!(index > prev, "frames must be fed in order");
        }
        let usable = delivered
            && match tag {
                FrameTag::Key => true,
                // A delta also needs its base to be the *immediately*
                // preceding frame: a gap (frame never offered) breaks
                // the chain exactly like a dropped base does.
                FrameTag::Delta => self.prev_usable && self.prev_index == index.checked_sub(1),
            };
        self.prev_usable = usable;
        self.prev_index = Some(index);
        usable
    }

    /// Whether the chain is currently broken: at least one frame has
    /// been walked and the most recent one was unusable, so the next
    /// delta is doomed before it is even offered. A fresh tracker is
    /// not poisoned (the stream just hasn't started).
    pub fn poisoned(&self) -> bool {
        self.prev_index.is_some() && !self.prev_usable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_tags() {
        assert_eq!(FrameTag::for_index(0, 5), FrameTag::Key);
        assert_eq!(FrameTag::for_index(4, 5), FrameTag::Delta);
        assert_eq!(FrameTag::for_index(5, 5), FrameTag::Key);
        // interval <= 1: all keyframes.
        assert_eq!(FrameTag::for_index(3, 1), FrameTag::Key);
        assert_eq!(FrameTag::for_index(3, 0), FrameTag::Key);
    }

    #[test]
    fn descendant_counts_follow_the_gop() {
        // interval 10: key at 0 carries the other 9; the last delta
        // before the next key carries nothing.
        assert_eq!(gop_descendants(0, 10, 150), 9);
        assert_eq!(gop_descendants(1, 10, 150), 8);
        assert_eq!(gop_descendants(9, 10, 150), 0);
        assert_eq!(gop_descendants(10, 10, 150), 9, "next GOP restarts the count");
        // A truncated final GOP only carries what actually exists.
        assert_eq!(gop_descendants(140, 10, 145), 4);
        assert_eq!(gop_descendants(144, 10, 145), 0);
        // All-keyframe streams have no dependencies at all.
        assert_eq!(gop_descendants(3, 1, 150), 0);
        assert_eq!(gop_descendants(3, 0, 150), 0);
        // Out of range is harmless.
        assert_eq!(gop_descendants(150, 10, 150), 0);
        // The count is exactly the poison window DependencyTracker
        // enforces: lose frame i, everything until the next key dies.
        let interval = 5;
        let total = 17;
        for lost in 0..total {
            let mut dep = DependencyTracker::new();
            let mut poisoned_after = 0usize;
            for i in 0..total {
                let tag = FrameTag::for_index(i, interval);
                if !dep.advance(i, tag, i != lost) && i > lost {
                    poisoned_after += 1;
                }
            }
            assert_eq!(
                poisoned_after,
                gop_descendants(lost, interval, total),
                "lost frame {lost}"
            );
        }
    }

    #[test]
    fn delta_loss_poisons_until_next_key() {
        let mut dep = DependencyTracker::new();
        // key, delta, delta(LOST), delta, delta, key, delta
        assert!(dep.advance(0, FrameTag::Key, true));
        assert!(dep.advance(1, FrameTag::Delta, true));
        assert!(!dep.advance(2, FrameTag::Delta, false));
        assert!(!dep.advance(3, FrameTag::Delta, true), "base was dropped");
        assert!(!dep.advance(4, FrameTag::Delta, true), "still poisoned");
        assert!(dep.advance(5, FrameTag::Key, true), "keyframe recovers");
        assert!(dep.advance(6, FrameTag::Delta, true));
    }

    #[test]
    fn lost_keyframe_poisons_following_deltas() {
        let mut dep = DependencyTracker::new();
        assert!(!dep.advance(0, FrameTag::Key, false));
        assert!(!dep.advance(1, FrameTag::Delta, true));
        assert!(dep.advance(2, FrameTag::Key, true));
    }

    #[test]
    fn index_gap_breaks_the_chain() {
        let mut dep = DependencyTracker::new();
        assert!(dep.advance(0, FrameTag::Key, true));
        // Frame 1 never offered (e.g. uplink drop): frame 2's base is gone.
        assert!(!dep.advance(2, FrameTag::Delta, true));
    }

    #[test]
    fn key_lost_then_immediately_rekeyed_poisons_exactly_one_frame() {
        let mut dep = DependencyTracker::new();
        assert!(!dep.advance(0, FrameTag::Key, false));
        assert!(dep.poisoned());
        // The very next frame is a key again (e.g. sender re-keys on
        // NACK): the poison window is exactly the one lost frame.
        assert!(dep.advance(1, FrameTag::Key, true));
        assert!(!dep.poisoned());
        assert!(dep.advance(2, FrameTag::Delta, true));
    }

    #[test]
    fn two_consecutive_lost_keys_poison_exactly_two_gops() {
        let interval = 4;
        let mut dep = DependencyTracker::new();
        let mut unusable = Vec::new();
        // Keys at 0, 4, 8; lose both 0 and 4, deliver everything else.
        for index in 0..12 {
            let tag = FrameTag::for_index(index, interval);
            let delivered = index != 0 && index != 4;
            if !dep.advance(index, tag, delivered) {
                unusable.push(index);
            }
        }
        // Exactly two full GOPs are gone; the key at 8 recovers.
        assert_eq!(unusable, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn delta_before_its_base_stays_unusable_until_the_next_key() {
        let mut dep = DependencyTracker::new();
        assert!(dep.advance(0, FrameTag::Key, true));
        // Frame 2 arrives while its base (frame 1) never did: the delta
        // is undecodable, and so is everything until the next key.
        assert!(!dep.advance(2, FrameTag::Delta, true));
        assert!(dep.poisoned());
        assert!(!dep.advance(3, FrameTag::Delta, true));
        assert!(dep.advance(4, FrameTag::Key, true), "poison window is exactly [2, 4)");
    }
}
