//! Stream frames and the keyframe/delta dependency rules.
//!
//! Every frame a sender uploads carries a dependency tag mirroring the
//! temporal coders elsewhere in the workspace (`holo-compress::temporal`
//! ships a mesh keyframe then position deltas; `holo-textsem::delta`
//! ships a token snapshot then edit ops). A **key** frame is
//! self-contained; a **delta** frame is decodable only on top of its
//! predecessor. The consequence the closed-form conference math cannot
//! see: dropping one delta poisons every following delta until the next
//! keyframe, so loss cost is coupled across frames, per subscriber.

use holo_net::time::SimTime;
use semholo::semantics::StageCost;

/// Dependency tag of one frame in a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTag {
    /// Self-contained: decodable in isolation.
    Key,
    /// Depends on the previous frame of the same stream.
    Delta,
}

impl FrameTag {
    /// Tag of frame `index` under a keyframe cadence of `interval`
    /// (`interval <= 1` makes every frame a keyframe).
    pub fn for_index(index: usize, interval: usize) -> FrameTag {
        if interval <= 1 || index % interval == 0 {
            FrameTag::Key
        } else {
            FrameTag::Delta
        }
    }

    /// Whether this is a keyframe.
    pub fn is_key(self) -> bool {
        self == FrameTag::Key
    }
}

/// One frame of one sender's uplink stream, as the SFU sees it.
#[derive(Debug, Clone)]
pub struct StreamFrame {
    /// Originating participant.
    pub sender: usize,
    /// Frame index within the sender's stream.
    pub index: usize,
    /// Dependency tag.
    pub tag: FrameTag,
    /// Capture time at the sender.
    pub capture: SimTime,
    /// Encoded payload size on the wire, bytes (top quality).
    pub payload_bytes: usize,
    /// Sender-side extraction time, ms (already charged before upload).
    pub extract_ms: f64,
    /// Receiver-side reconstruction cost (charged per subscriber device).
    pub recon: StageCost,
}

/// Walks one (subscriber, sender) stream in frame order and applies the
/// dependency rules: a delta is usable only if the frame before it was
/// usable; a keyframe recovers the chain.
#[derive(Debug, Clone, Default)]
pub struct DependencyTracker {
    prev_usable: bool,
    prev_index: Option<usize>,
}

impl DependencyTracker {
    /// Fresh chain (nothing usable yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next frame **in index order**; `delivered` is whether it
    /// arrived complete. Returns whether the frame is usable.
    pub fn advance(&mut self, index: usize, tag: FrameTag, delivered: bool) -> bool {
        if let Some(prev) = self.prev_index {
            debug_assert!(index > prev, "frames must be fed in order");
        }
        let usable = delivered
            && match tag {
                FrameTag::Key => true,
                // A delta also needs its base to be the *immediately*
                // preceding frame: a gap (frame never offered) breaks
                // the chain exactly like a dropped base does.
                FrameTag::Delta => self.prev_usable && self.prev_index == index.checked_sub(1),
            };
        self.prev_usable = usable;
        self.prev_index = Some(index);
        usable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_tags() {
        assert_eq!(FrameTag::for_index(0, 5), FrameTag::Key);
        assert_eq!(FrameTag::for_index(4, 5), FrameTag::Delta);
        assert_eq!(FrameTag::for_index(5, 5), FrameTag::Key);
        // interval <= 1: all keyframes.
        assert_eq!(FrameTag::for_index(3, 1), FrameTag::Key);
        assert_eq!(FrameTag::for_index(3, 0), FrameTag::Key);
    }

    #[test]
    fn delta_loss_poisons_until_next_key() {
        let mut dep = DependencyTracker::new();
        // key, delta, delta(LOST), delta, delta, key, delta
        assert!(dep.advance(0, FrameTag::Key, true));
        assert!(dep.advance(1, FrameTag::Delta, true));
        assert!(!dep.advance(2, FrameTag::Delta, false));
        assert!(!dep.advance(3, FrameTag::Delta, true), "base was dropped");
        assert!(!dep.advance(4, FrameTag::Delta, true), "still poisoned");
        assert!(dep.advance(5, FrameTag::Key, true), "keyframe recovers");
        assert!(dep.advance(6, FrameTag::Delta, true));
    }

    #[test]
    fn lost_keyframe_poisons_following_deltas() {
        let mut dep = DependencyTracker::new();
        assert!(!dep.advance(0, FrameTag::Key, false));
        assert!(!dep.advance(1, FrameTag::Delta, true));
        assert!(dep.advance(2, FrameTag::Key, true));
    }

    #[test]
    fn index_gap_breaks_the_chain() {
        let mut dep = DependencyTracker::new();
        assert!(dep.advance(0, FrameTag::Key, true));
        // Frame 1 never offered (e.g. uplink drop): frame 2's base is gone.
        assert!(!dep.advance(2, FrameTag::Delta, true));
    }
}
