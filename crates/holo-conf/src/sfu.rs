//! The selective forwarding unit.
//!
//! The SFU receives each sender's uplink stream and forwards every
//! frame to the other N-1 subscribers. Each subscriber owns an egress
//! **port**: a bounded queue ([`EgressQueue`]), the subscriber's
//! downlink, and a per-subscriber [`AbrController`] that thins the
//! forwarded stream to a ladder rung the downlink's predicted
//! *per-stream share* can carry — the semantic analogue of an SVC-aware
//! SFU dropping enhancement layers, enabled by the workspace's layered
//! codecs (slimmable NeRF widths, token channels). Slow downlinks get
//! lower rungs; fast ones get the full stream.

use crate::degrade::{DegradationLadder, DegradeState, SemanticTier};
use crate::frame::{DependencyTracker, FrameTag, StreamFrame};
use crate::queue::{DropPolicy, EgressQueue};
use holo_net::abr::{AbrController, Ladder};
use holo_net::link::Link;
use holo_net::predict::{BandwidthPredictor, EwmaPredictor};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy};
use holo_net::wire::WIRE_HEADER_BYTES;
use holo_math::Summary;

/// Outcome of forwarding one frame to one subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// Rejected by the egress queue (backpressure drop at the SFU).
    QueueDropped,
    /// Admitted but lost on the subscriber's downlink.
    DownlinkLost,
    /// Arrived, but the wire envelope's CRC exposed payload corruption;
    /// the subscriber dropped it before decode.
    CorruptDropped,
    /// Delivered completely at the given time.
    DeliveredAt(SimTime),
}

/// Full record of one fan-out copy: where it went, how it fared, and
/// what the degradation ladder did to it on the way out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardRecord {
    /// Receiving participant.
    pub subscriber: usize,
    /// What happened on the egress path.
    pub outcome: ForwardOutcome,
    /// Semantic tier the frame was shipped at.
    pub tier: SemanticTier,
    /// Whether the shipped frame was a self-contained snapshot (a
    /// tier whose codec is not delta-coded): it decodes regardless of
    /// the delta chain.
    pub self_contained: bool,
    /// Whether the frame shipped below the top semantic tier. Distinct
    /// from `self_contained` once the ladder holds delta-coded rungs
    /// below the top (the amortized gaussian tier).
    pub degraded: bool,
    /// Wire bytes relative to the full-quality frame (ABR rung or tier
    /// fraction, whichever applied).
    pub fraction: f64,
}

/// One subscriber's egress state at the SFU.
pub struct SubscriberPort {
    /// Downlink transport (SFU -> subscriber).
    pub transport: FrameTransport,
    /// Bounded egress queue.
    pub queue: EgressQueue,
    /// Per-subscriber rate adaptation; `None` forwards at full quality.
    pub abr: Option<AbrController>,
    /// Downlink bandwidth predictor feeding the controller.
    pub predictor: EwmaPredictor,
    /// Rung fraction (forwarded bytes / full bytes) per forward.
    pub rung_fraction: Summary,
    /// Semantic degradation ladder state; `None` always ships the top
    /// tier.
    pub degrade: Option<DegradeState>,
    /// Delivered-frame count per ladder rung (empty without a ladder);
    /// feeds the per-tier breakdown in the room report.
    pub tier_delivered: Vec<u64>,
    /// Per-sender delta-chain trackers mirroring what this subscriber
    /// can decode, updated online as forwards resolve (the ladder's
    /// poison signal).
    pub chains: Vec<DependencyTracker>,
}

impl SubscriberPort {
    /// Build a port over a downlink.
    pub fn new(
        link: Link,
        policy: LossPolicy,
        queue: EgressQueue,
        abr: Option<AbrController>,
        degrade: Option<DegradeState>,
    ) -> Self {
        let tier_delivered = degrade
            .as_ref()
            .map(|d| vec![0; d.ladder.tiers.len()])
            .unwrap_or_default();
        Self {
            transport: FrameTransport::new(link, policy),
            queue,
            abr,
            predictor: EwmaPredictor::new(0.3),
            rung_fraction: Summary::new(),
            degrade,
            tier_delivered,
            chains: Vec::new(),
        }
    }

    /// Forward one frame to this subscriber (`subscriber` is its id) at
    /// `now`. `share` divides the predicted downlink bandwidth among
    /// the room's streams (N-1).
    pub fn forward(
        &mut self,
        subscriber: usize,
        frame: &StreamFrame,
        now: SimTime,
        share: usize,
    ) -> ForwardRecord {
        // Predict this stream's share of the downlink. The effective
        // rate folds in any installed fault clock, so the ladder and
        // ABR react to injected bandwidth collapses too.
        self.predictor.observe(self.transport.link.effective_bps_at(now.as_secs_f64()));
        let per_stream_bps = self.predictor.predict() / share.max(1) as f64;

        if frame.sender >= self.chains.len() {
            self.chains.resize_with(frame.sender + 1, DependencyTracker::new);
        }
        let poisoned = self.chains[frame.sender].poisoned();

        // The semantic ladder picks a tier; degraded tiers ship at a
        // fixed fraction of the payload, and a tier is self-contained
        // exactly when its codec is not delta-coded.
        let (tier, self_contained, tier_fraction, level) = match &mut self.degrade {
            Some(d) => {
                let level = d.decide(now, per_stream_bps, poisoned, frame.tag.is_key());
                let spec = &d.ladder.tiers[level];
                (spec.tier, !spec.delta_coded, spec.payload_fraction, Some(level))
            }
            None => (SemanticTier::Mesh, false, 1.0, None),
        };
        let degraded = level.is_some_and(|l| l > 0);

        // ABR bitrate thinning applies at the top (full-fidelity) tier;
        // degraded tiers are already far below any rung.
        let fraction = if degraded {
            tier_fraction
        } else {
            match &mut self.abr {
                Some(abr) => {
                    let top = abr.ladder.top().bitrate_bps;
                    let rung = abr.decide(per_stream_bps);
                    (rung.bitrate_bps / top).clamp(0.0, 1.0)
                }
                None => 1.0,
            }
        };
        self.rung_fraction.record(fraction);
        // Every forwarded copy re-wraps the payload in the versioned,
        // checksummed wire envelope for its hop to the subscriber.
        let wire_bytes = ((frame.payload_bytes as f64 * fraction).round() as usize).max(32)
            + WIRE_HEADER_BYTES;

        // Backpressure at the egress queue (snapshots count as keys:
        // they reset the subscriber's view exactly like one).
        let outcome = if !self.queue.admit(now, frame.tag.is_key() || self_contained) {
            ForwardOutcome::QueueDropped
        } else {
            let result = self.transport.send_frame_sized(wire_bytes, now);
            // The frame occupies the egress port until its serialization
            // backlog clears the link.
            let backlog_done = now + self.transport.link.queue_delay(now);
            self.queue.commit(backlog_done);
            match result.completed_at {
                Some(t) if result.complete => {
                    // A delivered copy can still arrive corrupted; the
                    // subscriber's CRC check catches it and drops the
                    // frame instead of decoding garbage.
                    if self.transport.link.corrupt_roll(t).is_some() {
                        ForwardOutcome::CorruptDropped
                    } else {
                        ForwardOutcome::DeliveredAt(t)
                    }
                }
                _ => ForwardOutcome::DownlinkLost,
            }
        };

        // Keep the online chain mirror in step with what just happened.
        let delivered = matches!(outcome, ForwardOutcome::DeliveredAt(_));
        let effective_tag = if self_contained { FrameTag::Key } else { frame.tag };
        self.chains[frame.sender].advance(frame.index, effective_tag, delivered);
        if delivered {
            if let Some(l) = level {
                self.tier_delivered[l] += 1;
            }
        }

        ForwardRecord { subscriber, outcome, tier, self_contained, degraded, fraction }
    }
}

/// The forwarder: one port per participant, plus room-wide counters.
pub struct Sfu {
    /// Egress ports, indexed by participant id.
    pub ports: Vec<SubscriberPort>,
    /// Participant presence mask: inactive subscribers receive nothing
    /// (churn — a left participant's port idles until rejoin).
    pub active: Vec<bool>,
    /// Frames offered for forwarding (per-subscriber fan-out counted).
    pub forwarded: u64,
    /// Fan-outs rejected by egress queues.
    pub queue_dropped: u64,
    /// Fan-outs lost on downlinks.
    pub downlink_lost: u64,
    /// Fan-outs whose envelope CRC exposed corruption at the
    /// subscriber (detected and dropped, never decoded).
    pub corrupt_detected: u64,
    /// Fan-outs shipped below the top semantic tier.
    pub degraded: u64,
}

impl Sfu {
    /// Build a forwarder from per-participant downlinks.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        downlinks: Vec<Link>,
        policy: LossPolicy,
        queue_capacity: usize,
        drop_policy: DropPolicy,
        ladder: Option<Ladder>,
        abr_safety: f64,
        degrade: Option<DegradationLadder>,
    ) -> Result<Self, String> {
        if let Some(d) = &degrade {
            d.validate()?;
        }
        let n = downlinks.len();
        let mut ports = Vec::with_capacity(n);
        for link in downlinks {
            let abr = match &ladder {
                Some(l) => {
                    Some(AbrController::new(l.clone(), abr_safety).map_err(|e| e.to_string())?)
                }
                None => None,
            };
            ports.push(SubscriberPort::new(
                link,
                policy,
                EgressQueue::new(queue_capacity, drop_policy),
                abr,
                degrade.clone().map(DegradeState::new),
            ));
        }
        Ok(Self {
            ports,
            active: vec![true; n],
            forwarded: 0,
            queue_dropped: 0,
            downlink_lost: 0,
            corrupt_detected: 0,
            degraded: 0,
        })
    }

    /// Mark a participant present or absent (join/leave churn).
    pub fn set_active(&mut self, participant: usize, active: bool) {
        if participant < self.active.len() {
            self.active[participant] = active;
        }
    }

    /// Mark whether a subscriber holds the sender's gaussian prebuild
    /// blob. Ladders with prebuild-gated rungs (the amortized tier)
    /// only route that subscriber through them while this is true.
    pub fn set_prebuild_ready(&mut self, participant: usize, ready: bool) {
        if let Some(port) = self.ports.get_mut(participant) {
            if let Some(d) = port.degrade.as_mut() {
                d.set_prebuild_ready(ready);
            }
        }
    }

    /// Fan one ingress frame out to every *active* subscriber except
    /// the sender. Returns one [`ForwardRecord`] per copy, in
    /// subscriber order (deterministic).
    pub fn fan_out(&mut self, frame: &StreamFrame, now: SimTime) -> Vec<ForwardRecord> {
        let n = self.ports.len();
        let share = n.saturating_sub(1);
        let tracing = holo_trace::enabled();
        let mut records = Vec::with_capacity(share);
        for s in 0..n {
            if s == frame.sender || !self.active[s] {
                continue;
            }
            self.forwarded += 1;
            let port = &mut self.ports[s];
            let ladder_before = port.degrade.as_ref().map(|d| (d.downgrades, d.upgrades));
            let record = port.forward(s, frame, now, share);
            match record.outcome {
                ForwardOutcome::QueueDropped => self.queue_dropped += 1,
                ForwardOutcome::DownlinkLost => self.downlink_lost += 1,
                ForwardOutcome::CorruptDropped => self.corrupt_detected += 1,
                ForwardOutcome::DeliveredAt(_) => {}
            }
            if record.degraded {
                self.degraded += 1;
            }
            if tracing {
                holo_trace::counter("sfu.forwarded", 1);
                match record.outcome {
                    ForwardOutcome::QueueDropped => holo_trace::counter("sfu.queue_dropped", 1),
                    ForwardOutcome::DownlinkLost => holo_trace::counter("sfu.downlink_lost", 1),
                    ForwardOutcome::CorruptDropped => {
                        holo_trace::counter("sfu.corrupt_detected", 1)
                    }
                    ForwardOutcome::DeliveredAt(_) => holo_trace::counter("sfu.delivered", 1),
                }
                if record.degraded {
                    holo_trace::counter("sfu.degraded", 1);
                }
                if let (Some((d0, u0)), Some(d)) = (ladder_before, port.degrade.as_ref()) {
                    if d.downgrades > d0 {
                        holo_trace::counter("sfu.ladder_downgrade", 1);
                    }
                    if d.upgrades > u0 {
                        holo_trace::counter("sfu.ladder_upgrade", 1);
                    }
                }
                holo_trace::gauge(
                    &format!("sfu.port{s}.queue_occupancy"),
                    port.queue.occupancy_at(now) as f64,
                );
            }
            records.push(record);
        }
        records
    }

    /// Mean egress-queue occupancy across ports (admission samples).
    pub fn mean_queue_occupancy(&self) -> f64 {
        let mut s = Summary::new();
        for p in &self.ports {
            if p.queue.occupancy.count() > 0 {
                s.record(p.queue.occupancy.mean());
            }
        }
        if s.count() == 0 { 0.0 } else { s.mean() }
    }

    /// Highest egress-queue occupancy ever observed at any port.
    pub fn max_queue_occupancy(&self) -> f64 {
        self.ports
            .iter()
            .filter(|p| p.queue.occupancy.count() > 0)
            .map(|p| p.queue.occupancy.max())
            .fold(0.0, f64::max)
    }
}

/// Convenience: a constant-rate downlink.
pub fn constant_link(config: holo_net::link::LinkConfig, bps: f64, seed: u64) -> Link {
    Link::new(config, BandwidthTrace::Constant { bps }, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTag;
    use holo_net::link::LinkConfig;
    use semholo::semantics::StageCost;
    use std::time::Duration;

    fn frame(sender: usize, index: usize, bytes: usize) -> StreamFrame {
        StreamFrame {
            sender,
            index,
            tag: FrameTag::for_index(index, 10),
            capture: SimTime::from_millis(index as u64 * 33),
            payload_bytes: bytes,
            extract_ms: 1.0,
            recon: StageCost::default(),
        }
    }

    fn quiet_cfg() -> LinkConfig {
        LinkConfig { jitter_max: Duration::ZERO, ..Default::default() }
    }

    #[test]
    fn fan_out_skips_the_sender() {
        let links = (0..3).map(|i| constant_link(quiet_cfg(), 100e6, i)).collect();
        let mut sfu =
            Sfu::new(links, LossPolicy::DropFrame, 8, DropPolicy::TailDrop, None, 0.8, None)
                .unwrap();
        let records = sfu.fan_out(&frame(1, 0, 2000), SimTime::ZERO);
        let subs: Vec<usize> = records.iter().map(|r| r.subscriber).collect();
        assert_eq!(subs, vec![0, 2]);
        assert!(records.iter().all(|r| matches!(r.outcome, ForwardOutcome::DeliveredAt(_))));
        assert!(records.iter().all(|r| !r.self_contained), "no ladder, top tier");
        assert_eq!(sfu.forwarded, 2);
    }

    #[test]
    fn inactive_subscribers_are_skipped() {
        let links = (0..3).map(|i| constant_link(quiet_cfg(), 100e6, i)).collect();
        let mut sfu =
            Sfu::new(links, LossPolicy::DropFrame, 8, DropPolicy::TailDrop, None, 0.8, None)
                .unwrap();
        sfu.set_active(2, false);
        let records = sfu.fan_out(&frame(1, 0, 2000), SimTime::ZERO);
        let subs: Vec<usize> = records.iter().map(|r| r.subscriber).collect();
        assert_eq!(subs, vec![0], "participant 2 left the room");
        assert_eq!(sfu.forwarded, 1);
        sfu.set_active(2, true);
        assert_eq!(sfu.fan_out(&frame(1, 1, 2000), SimTime::from_millis(33)).len(), 2);
    }

    #[test]
    fn slow_downlink_backpressure_drops_frames() {
        // Port 1 has a 200 kbps downlink; 50 KB frames at 30 FPS bury it.
        let links = vec![
            constant_link(quiet_cfg(), 100e6, 1),
            constant_link(quiet_cfg(), 200e3, 2),
        ];
        let mut sfu =
            Sfu::new(links, LossPolicy::DropFrame, 2, DropPolicy::TailDrop, None, 0.8, None)
                .unwrap();
        let mut dropped = 0;
        for i in 0..30 {
            let f = frame(0, i, 50_000);
            let now = SimTime::from_millis(i as u64 * 33);
            for r in sfu.fan_out(&f, now) {
                if r.outcome == ForwardOutcome::QueueDropped {
                    dropped += 1;
                }
            }
        }
        assert!(dropped > 10, "queue drops {dropped}");
        assert_eq!(sfu.queue_dropped, dropped);
        assert!(sfu.max_queue_occupancy() >= 2.0);
    }

    #[test]
    fn abr_thins_slow_subscriber_more() {
        // Two subscribers: 60 Mbps vs 3 Mbps downlinks, one 6 Mbps-class
        // stream each way. The slow one must settle on a lower rung.
        let links = vec![
            constant_link(quiet_cfg(), 1e9, 0), // sender's own port, unused
            constant_link(quiet_cfg(), 60e6, 1),
            constant_link(quiet_cfg(), 3e6, 2),
        ];
        let mut sfu = Sfu::new(
            links,
            LossPolicy::DropFrame,
            64,
            DropPolicy::TailDrop,
            Some(Ladder::standard()),
            0.9,
            None,
        )
        .unwrap();
        for i in 0..40 {
            let f = frame(0, i, 25_000); // 6 Mbps at 30 FPS
            sfu.fan_out(&f, SimTime::from_millis(i as u64 * 33));
        }
        let fast = sfu.ports[1].rung_fraction.mean();
        let slow = sfu.ports[2].rung_fraction.mean();
        assert!(fast > slow * 2.0, "fast {fast:.3} vs slow {slow:.3}");
    }

    #[test]
    fn zero_bandwidth_first_window_is_guarded() {
        // Regression: a dead link predicts ~0 bps on the very first
        // forward. The ABR fraction must stay finite and positive (the
        // bottom rung), never NaN from a zero-sample first window.
        let links = vec![
            constant_link(quiet_cfg(), 0.0, 0),
            constant_link(quiet_cfg(), 0.0, 1),
        ];
        let mut sfu = Sfu::new(
            links,
            LossPolicy::DropFrame,
            8,
            DropPolicy::TailDrop,
            Some(Ladder::standard()),
            0.9,
            None,
        )
        .unwrap();
        let records = sfu.fan_out(&frame(0, 0, 2000), SimTime::ZERO);
        assert_eq!(records.len(), 1);
        let f = sfu.ports[1].rung_fraction.mean();
        assert!(f.is_finite() && f > 0.0, "rung fraction {f}");
        assert!(records[0].fraction.is_finite());
    }

    #[test]
    fn starved_port_degrades_to_a_snapshot_tier() {
        // 100 kbps downlink, a multi-Mbps mesh stream: the ladder must
        // drop the subscriber to a self-contained tier and keep frames
        // flowing instead of stalling on queue drops.
        let links = vec![
            constant_link(quiet_cfg(), 100e6, 0),
            constant_link(quiet_cfg(), 100e3, 1),
        ];
        let mut sfu = Sfu::new(
            links,
            LossPolicy::DropFrame,
            4,
            DropPolicy::TailDrop,
            None,
            0.8,
            Some(DegradationLadder::standard()),
        )
        .unwrap();
        let mut delivered_snapshots = 0;
        for i in 0..30 {
            let f = frame(0, i, 20_000); // ~4.8 Mbps at 30 FPS
            let now = SimTime::from_millis(i as u64 * 33);
            for r in sfu.fan_out(&f, now) {
                if r.self_contained && matches!(r.outcome, ForwardOutcome::DeliveredAt(_)) {
                    delivered_snapshots += 1;
                }
            }
        }
        assert!(sfu.degraded > 0, "ladder never engaged");
        assert!(delivered_snapshots > 20, "snapshots delivered {delivered_snapshots}");
        let state = sfu.ports[1].degrade.as_ref().unwrap();
        assert!(state.downgrades >= 1);
        assert!(state.level() > 0, "still degraded at the end");
    }

    #[test]
    fn amortized_ladder_routes_through_gaussian_when_prebuilt() {
        // A 300 kbps downlink clears the gaussian floor (160 kbps) but
        // not mesh. With the prebuild announced, the subscriber rides
        // the delta-coded gaussian rung; without it, the same link
        // falls through to keypoints.
        let mk = || {
            let links = vec![
                constant_link(quiet_cfg(), 100e6, 0),
                constant_link(quiet_cfg(), 300e3, 1),
            ];
            Sfu::new(
                links,
                LossPolicy::DropFrame,
                8,
                DropPolicy::TailDrop,
                None,
                0.8,
                Some(DegradationLadder::amortized()),
            )
            .unwrap()
        };
        let run = |sfu: &mut Sfu| {
            for i in 0..60 {
                let f = frame(0, i, 20_000); // ~4.8 Mbps at 30 FPS
                sfu.fan_out(&f, SimTime::from_millis(i as u64 * 33));
            }
        };

        let mut with_blob = mk();
        with_blob.set_prebuild_ready(1, true);
        run(&mut with_blob);
        let gaussian_idx = 1;
        assert!(
            with_blob.ports[1].tier_delivered[gaussian_idx] > 20,
            "gaussian deliveries {:?}",
            with_blob.ports[1].tier_delivered
        );
        assert_eq!(with_blob.ports[1].degrade.as_ref().unwrap().level(), gaussian_idx);

        let mut without = mk();
        run(&mut without);
        assert_eq!(without.ports[1].tier_delivered[gaussian_idx], 0);
        assert!(
            without.ports[1].tier_delivered[2] > 20,
            "keypoint deliveries {:?}",
            without.ports[1].tier_delivered
        );
    }
}
