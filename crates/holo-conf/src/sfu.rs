//! The selective forwarding unit.
//!
//! The SFU receives each sender's uplink stream and forwards every
//! frame to the other N-1 subscribers. Each subscriber owns an egress
//! **port**: a bounded queue ([`EgressQueue`]), the subscriber's
//! downlink, and a per-subscriber [`AbrController`] that thins the
//! forwarded stream to a ladder rung the downlink's predicted
//! *per-stream share* can carry — the semantic analogue of an SVC-aware
//! SFU dropping enhancement layers, enabled by the workspace's layered
//! codecs (slimmable NeRF widths, token channels). Slow downlinks get
//! lower rungs; fast ones get the full stream.

use crate::frame::StreamFrame;
use crate::queue::{DropPolicy, EgressQueue};
use holo_net::abr::{AbrController, Ladder};
use holo_net::link::Link;
use holo_net::predict::{BandwidthPredictor, EwmaPredictor};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy};
use holo_math::Summary;

/// Outcome of forwarding one frame to one subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// Rejected by the egress queue (backpressure drop at the SFU).
    QueueDropped,
    /// Admitted but lost on the subscriber's downlink.
    DownlinkLost,
    /// Delivered completely at the given time.
    DeliveredAt(SimTime),
}

/// One subscriber's egress state at the SFU.
pub struct SubscriberPort {
    /// Downlink transport (SFU -> subscriber).
    pub transport: FrameTransport,
    /// Bounded egress queue.
    pub queue: EgressQueue,
    /// Per-subscriber rate adaptation; `None` forwards at full quality.
    pub abr: Option<AbrController>,
    /// Downlink bandwidth predictor feeding the controller.
    pub predictor: EwmaPredictor,
    /// Rung fraction (forwarded bytes / full bytes) per forward.
    pub rung_fraction: Summary,
}

impl SubscriberPort {
    /// Build a port over a downlink.
    pub fn new(link: Link, policy: LossPolicy, queue: EgressQueue, abr: Option<AbrController>) -> Self {
        Self {
            transport: FrameTransport::new(link, policy),
            queue,
            abr,
            predictor: EwmaPredictor::new(0.3),
            rung_fraction: Summary::new(),
        }
    }

    /// Forward one frame to this subscriber at `now`. `share` divides
    /// the predicted downlink bandwidth among the room's streams (N-1).
    pub fn forward(&mut self, frame: &StreamFrame, now: SimTime, share: usize) -> ForwardOutcome {
        // Predict this stream's share of the downlink.
        self.predictor.observe(self.transport.link.trace.bps_at(now.as_secs_f64()));
        let per_stream_bps = self.predictor.predict() / share.max(1) as f64;

        // Thin to the rung the share can carry.
        let fraction = match &mut self.abr {
            Some(abr) => {
                let top = abr.ladder.top().bitrate_bps;
                let rung = abr.decide(per_stream_bps);
                (rung.bitrate_bps / top).clamp(0.0, 1.0)
            }
            None => 1.0,
        };
        self.rung_fraction.record(fraction);
        let wire_bytes = ((frame.payload_bytes as f64 * fraction).round() as usize).max(32);

        // Backpressure at the egress queue.
        if !self.queue.admit(now, frame.tag.is_key()) {
            return ForwardOutcome::QueueDropped;
        }
        let result = self.transport.send_frame_sized(wire_bytes, now);
        // The frame occupies the egress port until its serialization
        // backlog clears the link.
        let backlog_done = now + self.transport.link.queue_delay(now);
        self.queue.commit(backlog_done);
        match result.completed_at {
            Some(t) if result.complete => ForwardOutcome::DeliveredAt(t),
            _ => ForwardOutcome::DownlinkLost,
        }
    }
}

/// The forwarder: one port per participant, plus room-wide counters.
pub struct Sfu {
    /// Egress ports, indexed by participant id.
    pub ports: Vec<SubscriberPort>,
    /// Frames offered for forwarding (per-subscriber fan-out counted).
    pub forwarded: u64,
    /// Fan-outs rejected by egress queues.
    pub queue_dropped: u64,
    /// Fan-outs lost on downlinks.
    pub downlink_lost: u64,
}

impl Sfu {
    /// Build a forwarder from per-participant downlinks.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        downlinks: Vec<Link>,
        policy: LossPolicy,
        queue_capacity: usize,
        drop_policy: DropPolicy,
        ladder: Option<Ladder>,
        abr_safety: f64,
    ) -> Result<Self, String> {
        let mut ports = Vec::with_capacity(downlinks.len());
        for link in downlinks {
            let abr = match &ladder {
                Some(l) => Some(AbrController::new(l.clone(), abr_safety)?),
                None => None,
            };
            ports.push(SubscriberPort::new(
                link,
                policy,
                EgressQueue::new(queue_capacity, drop_policy),
                abr,
            ));
        }
        Ok(Self { ports, forwarded: 0, queue_dropped: 0, downlink_lost: 0 })
    }

    /// Fan one ingress frame out to every subscriber except the sender.
    /// Returns `(subscriber, outcome)` for each forwarded copy, in
    /// subscriber order (deterministic).
    pub fn fan_out(&mut self, frame: &StreamFrame, now: SimTime) -> Vec<(usize, ForwardOutcome)> {
        let n = self.ports.len();
        let share = n.saturating_sub(1);
        let tracing = holo_trace::enabled();
        let mut outcomes = Vec::with_capacity(share);
        for (s, port) in self.ports.iter_mut().enumerate() {
            if s == frame.sender {
                continue;
            }
            self.forwarded += 1;
            let outcome = port.forward(frame, now, share);
            match outcome {
                ForwardOutcome::QueueDropped => self.queue_dropped += 1,
                ForwardOutcome::DownlinkLost => self.downlink_lost += 1,
                ForwardOutcome::DeliveredAt(_) => {}
            }
            if tracing {
                holo_trace::counter("sfu.forwarded", 1);
                match outcome {
                    ForwardOutcome::QueueDropped => holo_trace::counter("sfu.queue_dropped", 1),
                    ForwardOutcome::DownlinkLost => holo_trace::counter("sfu.downlink_lost", 1),
                    ForwardOutcome::DeliveredAt(_) => holo_trace::counter("sfu.delivered", 1),
                }
                holo_trace::gauge(
                    &format!("sfu.port{s}.queue_occupancy"),
                    port.queue.occupancy_at(now) as f64,
                );
            }
            outcomes.push((s, outcome));
        }
        outcomes
    }

    /// Mean egress-queue occupancy across ports (admission samples).
    pub fn mean_queue_occupancy(&self) -> f64 {
        let mut s = Summary::new();
        for p in &self.ports {
            if p.queue.occupancy.count() > 0 {
                s.record(p.queue.occupancy.mean());
            }
        }
        if s.count() == 0 { 0.0 } else { s.mean() }
    }

    /// Highest egress-queue occupancy ever observed at any port.
    pub fn max_queue_occupancy(&self) -> f64 {
        self.ports
            .iter()
            .filter(|p| p.queue.occupancy.count() > 0)
            .map(|p| p.queue.occupancy.max())
            .fold(0.0, f64::max)
    }
}

/// Convenience: a constant-rate downlink.
pub fn constant_link(config: holo_net::link::LinkConfig, bps: f64, seed: u64) -> Link {
    Link::new(config, BandwidthTrace::Constant { bps }, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTag;
    use holo_net::link::LinkConfig;
    use semholo::semantics::StageCost;
    use std::time::Duration;

    fn frame(sender: usize, index: usize, bytes: usize) -> StreamFrame {
        StreamFrame {
            sender,
            index,
            tag: FrameTag::for_index(index, 10),
            capture: SimTime::from_millis(index as u64 * 33),
            payload_bytes: bytes,
            extract_ms: 1.0,
            recon: StageCost::default(),
        }
    }

    fn quiet_cfg() -> LinkConfig {
        LinkConfig { jitter_max: Duration::ZERO, ..Default::default() }
    }

    #[test]
    fn fan_out_skips_the_sender() {
        let links = (0..3).map(|i| constant_link(quiet_cfg(), 100e6, i)).collect();
        let mut sfu =
            Sfu::new(links, LossPolicy::DropFrame, 8, DropPolicy::TailDrop, None, 0.8).unwrap();
        let outcomes = sfu.fan_out(&frame(1, 0, 2000), SimTime::ZERO);
        let subs: Vec<usize> = outcomes.iter().map(|(s, _)| *s).collect();
        assert_eq!(subs, vec![0, 2]);
        assert!(outcomes.iter().all(|(_, o)| matches!(o, ForwardOutcome::DeliveredAt(_))));
        assert_eq!(sfu.forwarded, 2);
    }

    #[test]
    fn slow_downlink_backpressure_drops_frames() {
        // Port 1 has a 200 kbps downlink; 50 KB frames at 30 FPS bury it.
        let links = vec![
            constant_link(quiet_cfg(), 100e6, 1),
            constant_link(quiet_cfg(), 200e3, 2),
        ];
        let mut sfu =
            Sfu::new(links, LossPolicy::DropFrame, 2, DropPolicy::TailDrop, None, 0.8).unwrap();
        let mut dropped = 0;
        for i in 0..30 {
            let f = frame(0, i, 50_000);
            let now = SimTime::from_millis(i as u64 * 33);
            for (_, o) in sfu.fan_out(&f, now) {
                if o == ForwardOutcome::QueueDropped {
                    dropped += 1;
                }
            }
        }
        assert!(dropped > 10, "queue drops {dropped}");
        assert_eq!(sfu.queue_dropped, dropped);
        assert!(sfu.max_queue_occupancy() >= 2.0);
    }

    #[test]
    fn abr_thins_slow_subscriber_more() {
        // Two subscribers: 60 Mbps vs 3 Mbps downlinks, one 6 Mbps-class
        // stream each way. The slow one must settle on a lower rung.
        let links = vec![
            constant_link(quiet_cfg(), 1e9, 0), // sender's own port, unused
            constant_link(quiet_cfg(), 60e6, 1),
            constant_link(quiet_cfg(), 3e6, 2),
        ];
        let mut sfu = Sfu::new(
            links,
            LossPolicy::DropFrame,
            64,
            DropPolicy::TailDrop,
            Some(Ladder::standard()),
            0.9,
        )
        .unwrap();
        for i in 0..40 {
            let f = frame(0, i, 25_000); // 6 Mbps at 30 FPS
            sfu.fan_out(&f, SimTime::from_millis(i as u64 * 33));
        }
        let fast = sfu.ports[1].rung_fraction.mean();
        let slow = sfu.ports[2].rung_fraction.mean();
        assert!(fast > slow * 2.0, "fast {fast:.3} vs slow {slow:.3}");
    }
}
