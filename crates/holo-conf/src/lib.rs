//! **holo-conf** — an event-driven semantic SFU for multi-party rooms.
//!
//! The paper's telepresence vision is multi-party, but a closed-form
//! mean-bandwidth bound (`core::conference`) cannot see what actually
//! limits a room: queueing at the forwarder, per-subscriber adaptation,
//! and the coupling between keyframe loss and every delta that depended
//! on it. This crate simulates the whole thing in deterministic virtual
//! time:
//!
//! ```text
//!            uplink                         downlink (x N-1 each)
//!  sender ──► Link ──► SFU ──► [egress queue | ABR thinning] ──► Link ──► subscriber
//!  (SemanticPipeline)   │
//!                       └── fan-out to every other participant
//! ```
//!
//! - [`participant`] — per-participant uplink/downlink configs and
//!   devices (heterogeneous rooms are the point).
//! - [`frame`] — keyframe/delta dependency tags and the chain rules
//!   (a delta whose base was dropped is unusable).
//! - [`queue`] — the SFU's bounded per-subscriber egress queue with an
//!   explicit drop policy (tail-drop or keyframe-preserving).
//! - [`sfu`] — the forwarder: per-subscriber ports, each with its own
//!   `AbrController` thinning the stream to the downlink's share.
//! - [`degrade`] — the semantic degradation ladder (mesh → keypoints →
//!   text): starved or poisoned subscribers drop to self-contained
//!   snapshot tiers instead of stalling, and climb back after a
//!   stability window.
//! - [`room`] — the seeded event loop over `SimTime` driving captures,
//!   uplinks, and fan-outs; emits a [`RoomReport`]. Participants can
//!   join/leave mid-run (churn) and carry per-link fault clocks.
//! - [`report`] — per-subscriber latency/stall/usable-rate
//!   distributions, Jain fairness, queue occupancy; byte-identical
//!   rendering per seed.
//! - [`capacity`] — the empirical "how many people fit" measurement,
//!   validated against `core::conference`'s closed-form bound, with the
//!   oracle hooks (monotone search, closed forms) re-exported for
//!   embedders.
//!
//! A [`Room`] is deliberately an **embeddable component**, not just a
//! top-level experiment: `holo-fleet` instantiates one per room across
//! a sharded SFU fabric (cascade links between nodes, this crate's
//! SFU/queue/degradation machinery inside each room) and a 1-node
//! fleet reproduces a standalone room byte for byte.

pub mod capacity;
pub mod degrade;
pub mod frame;
pub mod participant;
pub mod queue;
pub mod report;
pub mod room;
pub mod sfu;

pub use capacity::{
    closed_form_fleet_capacity, closed_form_max_participants, compare_capacity,
    measure_max_room_size, simulated_max_participants, CapacityComparison, CapacityConfig,
    CapacityCriteria, CapacityMeasurement, CapacityProbe,
};
pub use degrade::{DegradationLadder, DegradeState, SemanticTier, TierSpec};
pub use frame::{DependencyTracker, FrameTag, StreamFrame};
pub use participant::ParticipantConfig;
pub use queue::{DropPolicy, EgressQueue};
pub use report::{jain_index, RoomReport, SubscriberReport};
pub use room::{Room, RoomConfig};
pub use sfu::{ForwardOutcome, ForwardRecord, Sfu, SubscriberPort};
