//! The room: a seeded, virtual-time event loop over N participants.
//!
//! Every sender captures at the scene rate, runs its `SemanticPipeline`
//! once per frame, and uploads the encoded frame to the SFU over its
//! own uplink; the SFU fans each arrival out to the other N-1
//! subscribers through bounded egress queues and per-subscriber
//! downlinks (see [`crate::sfu`]). The loop is a single binary heap of
//! `(SimTime, seq)`-ordered events — capture ticks and SFU ingresses —
//! so runs are deterministic: ties break on insertion order, all
//! randomness flows from the room seed, and the emitted
//! [`RoomReport`] reproduces byte-identically.

use crate::degrade::DegradationLadder;
use crate::frame::{DependencyTracker, FrameTag, StreamFrame};
use crate::participant::ParticipantConfig;
use crate::queue::DropPolicy;
use crate::report::{jain_index, RoomReport, SubscriberReport};
use crate::sfu::{ForwardOutcome, Sfu};
use holo_math::Summary;
use holo_net::abr::Ladder;
use holo_trace::TraceReport;
use holo_net::link::Link;
use holo_net::time::SimTime;
use holo_net::transport::{FrameTransport, LossPolicy};
use holo_net::wire::WIRE_HEADER_BYTES;
use semholo::error::{Result, SemHoloError};
use semholo::scene::SceneSource;
use semholo::semantics::{SemanticPipeline, StageCost};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::time::Duration;

/// Room parameters.
#[derive(Debug, Clone)]
pub struct RoomConfig {
    /// The participants (room size N = `participants.len()`).
    pub participants: Vec<ParticipantConfig>,
    /// Frames each sender captures.
    pub frames: usize,
    /// Keyframe cadence: frame `i` is a keyframe iff `i % interval == 0`
    /// (`<= 1` makes every frame self-contained).
    pub keyframe_interval: usize,
    /// SFU egress queue bound, frames.
    pub queue_capacity: usize,
    /// SFU egress drop policy.
    pub drop_policy: DropPolicy,
    /// Per-subscriber thinning ladder; `None` forwards full quality.
    pub ladder: Option<Ladder>,
    /// Semantic degradation ladder (mesh → keypoints → text, or the
    /// amortized 4-tier variant); `None` always ships the top tier.
    pub degrade: Option<DegradationLadder>,
    /// Per-participant gaussian prebuild availability: `prebuild[i]`
    /// says subscriber `i` holds the one-time avatar blob, unlocking
    /// prebuild-gated ladder rungs at its port. `None` means nobody
    /// prebuilt (gated rungs stay closed).
    pub prebuild_ready: Option<Vec<bool>>,
    /// ABR safety margin (fraction of predicted bandwidth used).
    pub abr_safety: f64,
    /// Uplink loss policy (sender -> SFU).
    pub uplink_policy: LossPolicy,
    /// Downlink loss policy (SFU -> subscriber). Live rooms drop.
    pub downlink_policy: LossPolicy,
    /// Fixed render/display overhead per frame.
    pub render_overhead: Duration,
    /// Latency budget for the `within_budget` statistic, ms.
    pub latency_budget_ms: f64,
    /// Room seed: drives every link RNG (unless overridden per
    /// participant).
    pub seed: u64,
    /// Capacity-search mode: all senders share one pipeline's encoded
    /// frames (they capture the same scene), so cost scales with frames
    /// rather than frames x N. Per-sender uplinks still run separately.
    pub share_encoder: bool,
    /// Trace-lane offset: participant `i` records spans on lane
    /// `lane_base + i`. Fleets give each embedded room a distinct base
    /// so lanes never collide in a merged recorder.
    pub lane_base: u32,
    /// Trace path-id tag OR'd into every span's frame id (the id is
    /// `trace_tag | sender << 32 | frame index`). Fleets tag each room
    /// (`room_idx << 48`) so attribution can walk one merged span
    /// stream.
    pub trace_tag: u64,
}

impl Default for RoomConfig {
    fn default() -> Self {
        Self {
            participants: Vec::new(),
            frames: 30,
            keyframe_interval: 10,
            queue_capacity: 8,
            drop_policy: DropPolicy::TailDrop,
            ladder: None,
            degrade: None,
            prebuild_ready: None,
            abr_safety: 0.8,
            uplink_policy: LossPolicy::RetransmitOnce,
            downlink_policy: LossPolicy::DropFrame,
            render_overhead: Duration::from_millis(11),
            latency_budget_ms: 100.0,
            seed: 1,
            share_encoder: false,
            lane_base: 0,
            trace_tag: 0,
        }
    }
}

/// Cached per-frame encode/decode outcome (costs and wire size; the
/// link model needs no actual bytes).
#[derive(Clone)]
struct FrameMeta {
    capture: SimTime,
    payload_bytes: usize,
    extract: StageCost,
    recon: StageCost,
}

/// A heap event. Ordering: time, then insertion sequence (FIFO ties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Sender `0` captures (and uploads) frame `1`.
    Capture(usize, usize),
    /// Sender `0`'s frame `1` finished arriving at the SFU.
    Ingress(usize, usize),
}

/// Derive a per-link seed from the room seed (splitmix-style odd
/// multiplier keeps distinct streams decorrelated).
fn derive_seed(room_seed: u64, lane: u64) -> u64 {
    room_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane.wrapping_mul(2).wrapping_add(1))
}

/// An N-party semantic room bound to a scene.
pub struct Room {
    /// Configuration (validated at construction).
    pub config: RoomConfig,
}

impl Room {
    /// Validate and build a room.
    pub fn new(config: RoomConfig) -> Result<Self> {
        if config.participants.len() < 2 {
            return Err(SemHoloError::Config(format!(
                "a room needs at least 2 participants, got {}",
                config.participants.len()
            )));
        }
        if config.frames == 0 {
            return Err(SemHoloError::Config("room must run at least one frame".into()));
        }
        if let Some(ladder) = &config.ladder {
            ladder.validate().map_err(|e| SemHoloError::Config(e.to_string()))?;
        }
        Ok(Self { config })
    }

    /// Run the room over `scene`. `pipelines` is either one pipeline per
    /// participant, or a single pipeline when `share_encoder` is set.
    pub fn run(
        &mut self,
        scene: &SceneSource,
        pipelines: &mut [Box<dyn SemanticPipeline>],
    ) -> Result<RoomReport> {
        let cfg = &self.config;
        let n = cfg.participants.len();
        let expected_pipelines = if cfg.share_encoder { 1 } else { n };
        if pipelines.len() != expected_pipelines {
            return Err(SemHoloError::Config(format!(
                "expected {expected_pipelines} pipelines for this room, got {}",
                pipelines.len()
            )));
        }
        let fps = scene.context().config.fps as f64;
        let frame_interval = 1.0 / fps;

        // --- Wiring: per-participant uplinks and the SFU's ports. ---
        let mut uplinks: Vec<FrameTransport> = cfg
            .participants
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let seed = p.uplink_seed.unwrap_or_else(|| derive_seed(cfg.seed, i as u64 * 2));
                let mut link = Link::new(p.uplink.clone(), p.uplink_trace.clone(), seed);
                if let Some(f) = &p.uplink_fault {
                    link.set_fault(f.clone());
                }
                FrameTransport::new(link, cfg.uplink_policy)
            })
            .collect();
        let downlinks: Vec<Link> = cfg
            .participants
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let seed =
                    p.downlink_seed.unwrap_or_else(|| derive_seed(cfg.seed, i as u64 * 2 + 1));
                let mut link = Link::new(p.downlink.clone(), p.downlink_trace.clone(), seed);
                if let Some(f) = &p.downlink_fault {
                    link.set_fault(f.clone());
                }
                link
            })
            .collect();
        let mut sfu = Sfu::new(
            downlinks,
            cfg.downlink_policy,
            cfg.queue_capacity,
            cfg.drop_policy,
            cfg.ladder.clone(),
            cfg.abr_safety,
            cfg.degrade.clone(),
        )
        .map_err(SemHoloError::Config)?;
        if let Some(ready) = &cfg.prebuild_ready {
            for (i, &r) in ready.iter().enumerate() {
                sfu.set_prebuild_ready(i, r);
            }
        }

        // --- The event loop. ---
        // meta[sender][index]; arrivals[subscriber][sender][index].
        let mut meta: Vec<Vec<Option<FrameMeta>>> = vec![vec![None; cfg.frames]; n];
        // arrivals[subscriber][sender][index] =
        //   (arrival, self_contained, degraded).
        let mut arrivals: Vec<Vec<Vec<Option<(SimTime, bool, bool)>>>> =
            vec![vec![vec![None; cfg.frames]; n]; n];
        let mut shared_cache: Vec<Option<FrameMeta>> = vec![None; cfg.frames];
        let mut uplink_lost = 0u64;
        let mut uplink_corrupt = 0u64;

        let tracing = holo_trace::enabled();
        // Span path ids join a frame's sender-side and subscriber-side
        // spans across lanes (and across rooms, via the fleet's tag):
        // `trace_tag | sender << 32 | frame index`.
        let path_id = |sender: usize, index: usize| {
            cfg.trace_tag | ((sender as u64) << 32) | index as u64
        };
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, at, kind| {
            *seq += 1;
            heap.push(Reverse(Event { at, seq: *seq, kind }));
        };
        for index in 0..cfg.frames {
            let at = SimTime::from_secs_f64(index as f64 * frame_interval);
            for sender in 0..n {
                // A participant outside its presence window captures
                // nothing — the frame simply never exists (churn).
                if cfg.participants[sender].active_at(at.as_secs_f64()) {
                    push(&mut heap, &mut seq, at, EventKind::Capture(sender, index));
                }
            }
        }

        while let Some(Reverse(event)) = heap.pop() {
            match event.kind {
                EventKind::Capture(sender, index) => {
                    let device = &cfg.participants[sender].device;
                    let m = if cfg.share_encoder {
                        if shared_cache[index].is_none() {
                            shared_cache[index] =
                                Some(encode_frame(&mut *pipelines[0], scene, index, event.at)?);
                        }
                        shared_cache[index].clone().unwrap()
                    } else {
                        encode_frame(&mut *pipelines[sender], scene, index, event.at)?
                    };
                    let extract_t = m.extract.time_on(device)?;
                    let send_at = event.at + extract_t;
                    // Uplink frames travel inside the checksummed wire
                    // envelope; the SFU validates before forwarding.
                    let result = uplinks[sender]
                        .send_frame_sized(m.payload_bytes + WIRE_HEADER_BYTES, send_at);
                    meta[sender][index] = Some(m);
                    if tracing {
                        holo_trace::set_lane(cfg.lane_base + sender as u32);
                        holo_trace::span_enter_frame("room.extract", event.at.0, path_id(sender, index));
                        holo_trace::span_exit(send_at.0);
                        holo_trace::span_enter_frame("room.uplink", send_at.0, path_id(sender, index));
                        match result.completed_at {
                            Some(t) if result.complete => holo_trace::span_exit(t.0),
                            // Lost uplinks close at the send instant: the
                            // frame never occupied the wire end-to-end.
                            _ => holo_trace::span_exit(send_at.0),
                        }
                    }
                    match result.completed_at {
                        Some(t) if result.complete => {
                            // The SFU validates the envelope CRC before
                            // forwarding; a corrupted uplink frame is
                            // detected and dropped at ingress.
                            if uplinks[sender].link.corrupt_roll(t).is_some() {
                                uplink_corrupt += 1;
                                if tracing {
                                    holo_trace::counter("room.uplink_corrupt", 1);
                                }
                            } else {
                                push(&mut heap, &mut seq, t, EventKind::Ingress(sender, index));
                            }
                        }
                        _ => {
                            uplink_lost += 1;
                            if tracing {
                                holo_trace::counter("room.uplink_lost", 1);
                            }
                        }
                    }
                }
                EventKind::Ingress(sender, index) => {
                    let m = meta[sender][index].as_ref().expect("ingress follows capture");
                    let device = &cfg.participants[sender].device;
                    let frame = StreamFrame {
                        sender,
                        index,
                        tag: FrameTag::for_index(index, cfg.keyframe_interval),
                        capture: m.capture,
                        payload_bytes: m.payload_bytes,
                        extract_ms: m.extract.time_on(device)?.as_secs_f64() * 1000.0,
                        recon: m.recon,
                    };
                    // Presence can have changed since the last ingress:
                    // refresh the SFU's masks before fanning out.
                    for (i, p) in cfg.participants.iter().enumerate() {
                        sfu.set_active(i, p.active_at(event.at.as_secs_f64()));
                    }
                    for rec in sfu.fan_out(&frame, event.at) {
                        if let ForwardOutcome::DeliveredAt(t) = rec.outcome {
                            arrivals[rec.subscriber][sender][index] =
                                Some((t, rec.self_contained, rec.degraded));
                            if tracing {
                                holo_trace::set_lane(cfg.lane_base + rec.subscriber as u32);
                                holo_trace::span_enter_frame(
                                    "room.forward",
                                    event.at.0,
                                    path_id(sender, index),
                                );
                                holo_trace::span_exit(t.0);
                            }
                        }
                    }
                }
            }
        }

        // --- Per-subscriber accounting. ---
        // Each subscriber's pass reads only shared state (frame meta,
        // the arrival matrix, its SFU port), so it fans out over the
        // deterministic fork-join pool: one item per subscriber id,
        // reports collected back in id order. Byte-identical across
        // `SEMHOLO_THREADS=1..N`.
        let render_ms = cfg.render_overhead.as_secs_f64() * 1000.0;
        let meta = &meta;
        let arrivals = &arrivals;
        let sfu_ref = &sfu;
        let account = |s: usize| -> Result<SubscriberReport> {
            let device = &cfg.participants[s].device;
            let mut e2e = Summary::with_samples();
            let mut expected = 0usize;
            let mut delivered = 0usize;
            let mut usable = 0usize;
            let mut degraded = 0usize;
            let mut within = 0usize;
            let mut stall_ms = 0.0f64;
            for u in 0..n {
                if u == s {
                    continue;
                }
                let mut dep = DependencyTracker::new();
                let mut last_usable_arrival: Option<SimTime> = None;
                for index in 0..cfg.frames {
                    // A frame counts against this pair only if the
                    // sender captured it and the subscriber was present
                    // to receive it (churn windows).
                    let cap_t = index as f64 * frame_interval;
                    if !cfg.participants[u].active_at(cap_t)
                        || !cfg.participants[s].active_at(cap_t)
                    {
                        continue;
                    }
                    expected += 1;
                    let arrived = arrivals[s][u][index];
                    if arrived.is_some() {
                        delivered += 1;
                    }
                    // Self-contained tiers ship snapshots: they decode
                    // like keyframes. (Delta-coded degraded tiers —
                    // gaussian — keep the sender's key/delta tags.)
                    let tag = match arrived {
                        Some((_, true, _)) => FrameTag::Key,
                        _ => FrameTag::for_index(index, cfg.keyframe_interval),
                    };
                    if !dep.advance(index, tag, arrived.is_some()) {
                        continue;
                    }
                    usable += 1;
                    let (arrival, _, was_degraded) =
                        arrived.expect("usable implies delivered");
                    if was_degraded {
                        degraded += 1;
                    }
                    let m = meta[u][index].as_ref().expect("delivered implies encoded");
                    let recon_t = m.recon.time_on(device)?;
                    let recon_ms = recon_t.as_secs_f64() * 1000.0;
                    let latency_ms =
                        arrival.saturating_since(m.capture).as_secs_f64() * 1000.0
                            + recon_ms
                            + render_ms;
                    if tracing {
                        // Close the frame's span chain on the
                        // subscriber lane so attribution can tile
                        // capture -> photon exactly (integer µs).
                        let recon_end = arrival.0 + recon_t.as_micros() as u64;
                        let render_end =
                            recon_end + cfg.render_overhead.as_micros() as u64;
                        holo_trace::set_lane(cfg.lane_base + s as u32);
                        holo_trace::span_enter_frame("room.decode", arrival.0, path_id(u, index));
                        holo_trace::span_exit(recon_end);
                        holo_trace::span_enter_frame("room.render", recon_end, path_id(u, index));
                        holo_trace::span_exit(render_end);
                    }
                    e2e.record(latency_ms);
                    if latency_ms <= cfg.latency_budget_ms {
                        within += 1;
                    }
                    if let Some(prev) = last_usable_arrival {
                        let gap = arrival.saturating_since(prev).as_secs_f64();
                        stall_ms += (gap - frame_interval).max(0.0) * 1000.0;
                    }
                    last_usable_arrival = Some(arrival);
                }
            }
            let port = &sfu_ref.ports[s];
            // Per-rung delivery breakdown, reported only for amortized
            // (prebuild-gated) ladders — see `SubscriberReport`.
            let tier_counts = match port.degrade.as_ref() {
                Some(d) if d.ladder.tiers.iter().any(|t| t.requires_prebuild) => d
                    .ladder
                    .tiers
                    .iter()
                    .zip(&port.tier_delivered)
                    .map(|(t, &c)| (t.tier.name().to_string(), c))
                    .collect(),
                _ => Vec::new(),
            };
            Ok(SubscriberReport {
                id: s,
                expected,
                delivered,
                usable,
                usable_rate: usable as f64 / expected.max(1) as f64,
                within_budget: if usable > 0 { within as f64 / usable as f64 } else { 0.0 },
                e2e_ms: e2e,
                stall_ms,
                sfu_dropped: port.queue.dropped(),
                downlink_lost: port.transport.receiver.frames_dropped,
                mean_rung_fraction: if port.rung_fraction.count() > 0 {
                    port.rung_fraction.mean()
                } else {
                    1.0
                },
                degraded,
                ladder_downgrades: port.degrade.as_ref().map_or(0, |d| d.downgrades),
                ladder_upgrades: port.degrade.as_ref().map_or(0, |d| d.upgrades),
                tier_counts,
            })
        };
        let subscribers: Vec<SubscriberReport> =
            holo_trace::parallel::par_map((0..n).collect(), account)
                .into_iter()
                .collect::<Result<_>>()?;

        let rates: Vec<f64> = subscribers.iter().map(|s| s.usable_rate).collect();
        Ok(RoomReport {
            participants: n,
            frames: cfg.frames,
            fps,
            seed: cfg.seed,
            jain_fairness: jain_index(&rates),
            queue_occupancy_mean: sfu.mean_queue_occupancy(),
            queue_occupancy_max: sfu.max_queue_occupancy(),
            uplink_lost,
            forwarded: sfu.forwarded,
            queue_dropped: sfu.queue_dropped,
            downlink_lost: sfu.downlink_lost,
            corrupt_detected: uplink_corrupt + sfu.corrupt_detected,
            subscribers,
        })
    }

    /// Run the room with tracing force-enabled and export the evidence:
    /// writes a `chrome://tracing`-compatible trace-event JSON to
    /// `trace_path` (stamped in virtual `SimTime`, so the bytes are
    /// identical for identical seeds) and returns the per-stage
    /// [`TraceReport`] alongside the usual [`RoomReport`]. The recorder
    /// is reset at entry and the previous enable state restored at exit.
    pub fn run_traced(
        &mut self,
        scene: &SceneSource,
        pipelines: &mut [Box<dyn SemanticPipeline>],
        trace_path: &Path,
    ) -> Result<(RoomReport, TraceReport)> {
        let was_enabled = holo_trace::enabled();
        holo_trace::enable();
        holo_trace::reset();
        let outcome = self.run(scene, pipelines);
        let trace_report = holo_trace::trace_report();
        let chrome = holo_trace::chrome_trace();
        if !was_enabled {
            holo_trace::disable();
        }
        let report = outcome?;
        std::fs::write(trace_path, chrome.as_bytes()).map_err(|e| {
            SemHoloError::Config(format!("cannot write trace {}: {e}", trace_path.display()))
        })?;
        Ok((report, trace_report))
    }
}

/// Run one frame through a pipeline: encode for the wire size and
/// extraction cost, decode for the reconstruction cost. The decode runs
/// once here and its cost is re-priced per subscriber device at report
/// time — the payload is identical for every subscriber, so decoding it
/// N-1 times would measure the same thing N-1 times.
fn encode_frame(
    pipeline: &mut dyn SemanticPipeline,
    scene: &SceneSource,
    index: usize,
    capture: SimTime,
) -> Result<FrameMeta> {
    let frame = scene.frame(index);
    let encoded = pipeline.encode(&frame)?;
    let reconstructed = pipeline.decode(&encoded.payload)?;
    Ok(FrameMeta {
        capture,
        payload_bytes: encoded.payload.len(),
        extract: encoded.extract,
        recon: reconstructed.recon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::keypoint::{KeypointConfig, KeypointPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn kp() -> Box<dyn SemanticPipeline> {
        Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            7,
        ))
    }

    #[test]
    fn rejects_degenerate_rooms() {
        let cfg = RoomConfig { participants: ParticipantConfig::uniform_room(1, 25e6), ..Default::default() };
        assert!(Room::new(cfg).is_err());
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(2, 25e6),
            frames: 0,
            ..Default::default()
        };
        assert!(Room::new(cfg).is_err());
    }

    #[test]
    fn pipeline_count_must_match_mode() {
        let scene = scene();
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 2,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        // 3 participants, 1 pipeline, share_encoder off: error.
        let mut one = vec![kp()];
        assert!(room.run(&scene, &mut one).is_err());
    }

    #[test]
    fn healthy_small_room_delivers_everything() {
        let scene = scene();
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 6,
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        let mut pipes = vec![kp()];
        let report = room.run(&scene, &mut pipes).unwrap();
        assert_eq!(report.participants, 3);
        // Keypoint streams are ~0.5 Mbps: 2 streams fit 25 Mbps easily.
        for sub in &report.subscribers {
            assert_eq!(sub.expected, 12);
            assert_eq!(sub.usable, 12, "subscriber {} lost frames", sub.id);
            // No real stalls — only sub-frame-interval jitter wiggle.
            assert!(sub.stall_ms < 15.0, "stall {} ms", sub.stall_ms);
        }
        assert!((report.jain_fairness - 1.0).abs() < 1e-9);
        assert_eq!(report.uplink_lost, 0);
        assert_eq!(report.queue_dropped, 0);
    }

    #[test]
    fn choked_downlink_starves_only_its_subscriber() {
        let scene = scene();
        let mut participants = ParticipantConfig::uniform_room(3, 25e6);
        // Participant 2's downlink is 100 kbps: far below 2 keypoint
        // streams (~1 Mbps).
        participants[2].downlink_trace = holo_net::trace::BandwidthTrace::Constant { bps: 100e3 };
        let cfg = RoomConfig {
            participants,
            frames: 10,
            queue_capacity: 2,
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        let report = room.run(&scene, &mut vec![kp()]).unwrap();
        let healthy = &report.subscribers[0];
        let starved = &report.subscribers[2];
        assert_eq!(healthy.usable, healthy.expected, "healthy subscriber unaffected");
        assert!(
            starved.usable_rate < 0.7,
            "starved subscriber rate {}",
            starved.usable_rate
        );
        assert!(starved.sfu_dropped > 0, "backpressure must show up at the SFU queue");
        assert!(report.jain_fairness < 0.99, "fairness must reflect the starvation");
    }

    #[test]
    fn traced_room_covers_extract_uplink_forward() {
        let scene = scene();
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 4,
            share_encoder: true,
            ..Default::default()
        };
        let path = std::env::temp_dir().join("holo_conf_room_trace.json");
        let mut room = Room::new(cfg).unwrap();
        let (report, trace) = room.run_traced(&scene, &mut vec![kp()], &path).unwrap();
        assert_eq!(report.participants, 3);
        // 3 senders x 4 frames of extract/uplink; each ingress fans out
        // to 2 subscribers.
        for (stage, count) in [("room.extract", 12), ("room.uplink", 12), ("room.forward", 24)] {
            let stat = trace.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
            assert_eq!(stat.count, count, "stage {stage}");
        }
        let chrome = std::fs::read_to_string(&path).unwrap();
        holo_runtime::ser::parse(&chrome).expect("trace must be valid JSON");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn churned_participant_shrinks_expectations_not_others_streams() {
        let scene = scene();
        let fps = scene.context().config.fps as f64;
        let mut participants = ParticipantConfig::uniform_room(3, 25e6);
        // Participant 2 leaves after ~5 of 10 frames.
        let leave = 5.0 / fps;
        participants[2].active = Some((0.0, leave - 1e-9));
        let cfg = RoomConfig {
            participants,
            frames: 10,
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        let report = room.run(&scene, &mut vec![kp()]).unwrap();
        // Subscribers 0 and 1 expect 10 from each other + 5 from the
        // early leaver; subscriber 2 expects 5 from each of the others.
        assert_eq!(report.subscribers[0].expected, 15);
        assert_eq!(report.subscribers[1].expected, 15);
        assert_eq!(report.subscribers[2].expected, 10);
        // Clean links: everything expected is delivered and usable.
        for sub in &report.subscribers {
            assert_eq!(sub.usable, sub.expected, "subscriber {}", sub.id);
        }
    }

    #[test]
    fn bandwidth_collapse_degrades_instead_of_stalling() {
        use crate::degrade::DegradationLadder;
        use holo_net::fault::{FaultClock, FaultEffect, FaultSegment};

        let scene = scene();
        let mut participants = ParticipantConfig::uniform_room(3, 25e6);
        // Participant 2's downlink collapses to 0.2% capacity (~50 kbps)
        // for the whole run.
        participants[2].downlink_fault = Some(FaultClock::new(
            None,
            vec![FaultSegment {
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(1e6),
                effect: FaultEffect::BandwidthScale(0.002),
            }],
            7,
        ));
        let cfg = RoomConfig {
            participants,
            frames: 12,
            degrade: Some(DegradationLadder::standard()),
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        let report = room.run(&scene, &mut vec![kp()]).unwrap();
        let starved = &report.subscribers[2];
        assert!(starved.ladder_downgrades >= 1, "ladder never engaged");
        assert!(starved.degraded > 0, "no degraded frames reached the subscriber");
        // The point of the ladder: frames keep flowing.
        assert!(
            starved.usable_rate > 0.5,
            "degraded stream still mostly usable, got {}",
            starved.usable_rate
        );
        // Healthy subscribers are untouched.
        assert_eq!(report.subscribers[0].degraded, 0);
        assert_eq!(report.subscribers[0].usable, report.subscribers[0].expected);
    }

    #[test]
    fn amortized_room_rides_gaussian_only_with_the_prebuild() {
        use crate::degrade::DegradationLadder;

        let scene = scene();
        let run = |prebuilt: bool| {
            let mut participants = ParticipantConfig::uniform_room(3, 25e6);
            // Participant 2's downlink sits between the gaussian floor
            // (160 kbps per stream) and the mesh floor: 600 kbps over
            // 2 streams = 300 kbps each.
            participants[2].downlink_trace =
                holo_net::trace::BandwidthTrace::Constant { bps: 600e3 };
            let cfg = RoomConfig {
                participants,
                frames: 12,
                degrade: Some(DegradationLadder::amortized()),
                prebuild_ready: prebuilt.then(|| vec![false, false, true]),
                share_encoder: true,
                ..Default::default()
            };
            Room::new(cfg).unwrap().run(&scene, &mut vec![kp()]).unwrap()
        };

        let with_blob = run(true);
        let starved = &with_blob.subscribers[2];
        let gaussian = starved
            .tier_counts
            .iter()
            .find(|(n, _)| n == "gaussian")
            .map(|(_, c)| *c)
            .unwrap();
        assert!(gaussian > 0, "gaussian rung never delivered: {:?}", starved.tier_counts);
        assert!(starved.degraded > 0, "gaussian frames count as degraded");
        assert!(
            with_blob.render().contains("tier_counts"),
            "amortized rooms report the per-rung breakdown"
        );

        let without = run(false);
        let gaussian = without.subscribers[2]
            .tier_counts
            .iter()
            .find(|(n, _)| n == "gaussian")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(gaussian, 0, "gated rung stays closed without the blob");
    }

    #[test]
    fn same_seed_reproduces_byte_identical_reports() {
        let scene = scene();
        let make_cfg = || RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 5,
            seed: 42,
            share_encoder: true,
            ..Default::default()
        };
        let r1 = Room::new(make_cfg()).unwrap().run(&scene, &mut vec![kp()]).unwrap();
        let r2 = Room::new(make_cfg()).unwrap().run(&scene, &mut vec![kp()]).unwrap();
        assert_eq!(r1.render(), r2.render());
        // A different seed on a lossy room must be observable somewhere;
        // on this clean room at least the seed field differs.
        let mut cfg3 = make_cfg();
        cfg3.seed = 43;
        let r3 = Room::new(cfg3).unwrap().run(&scene, &mut vec![kp()]).unwrap();
        assert_ne!(r1.render(), r3.render());
    }
}
