//! Per-participant access-network and device configuration.
//!
//! An SFU room is a star: every participant reaches the forwarder over
//! its **own** access network — an uplink carrying one stream and a
//! downlink carrying N-1. Heterogeneity is the point: one slow
//! subscriber must not drag the whole room down, which is exactly what
//! per-subscriber adaptation (and this crate) exists to show.

use holo_gpu::Device;
use holo_net::fault::FaultClock;
use holo_net::link::LinkConfig;
use holo_net::trace::BandwidthTrace;
use std::time::Duration;

/// One participant's access links and edge device.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    /// Uplink (participant -> SFU) parameters.
    pub uplink: LinkConfig,
    /// Uplink capacity trace.
    pub uplink_trace: BandwidthTrace,
    /// Downlink (SFU -> participant) parameters.
    pub downlink: LinkConfig,
    /// Downlink capacity trace.
    pub downlink_trace: BandwidthTrace,
    /// Edge device running this participant's reconstruction.
    pub device: Device,
    /// Explicit uplink RNG seed (default: derived from the room seed).
    pub uplink_seed: Option<u64>,
    /// Explicit downlink RNG seed (default: derived from the room seed).
    pub downlink_seed: Option<u64>,
    /// Presence window `(join_s, leave_s)` in room time; `None` means
    /// present for the whole run. Outside the window the participant
    /// neither captures nor receives (join/leave churn).
    pub active: Option<(f64, f64)>,
    /// Fault schedule installed on the uplink (see `holo_net::fault`).
    pub uplink_fault: Option<FaultClock>,
    /// Fault schedule installed on the downlink.
    pub downlink_fault: Option<FaultClock>,
}

impl ParticipantConfig {
    /// A symmetric access link of `access_bps` in both directions, with
    /// default (broadband-like) link parameters.
    pub fn symmetric(access_bps: f64) -> Self {
        Self {
            uplink: LinkConfig::default(),
            uplink_trace: BandwidthTrace::Constant { bps: access_bps },
            downlink: LinkConfig::default(),
            downlink_trace: BandwidthTrace::Constant { bps: access_bps },
            device: Device::a100(),
            uplink_seed: None,
            downlink_seed: None,
            active: None,
            uplink_fault: None,
            downlink_fault: None,
        }
    }

    /// An effectively ideal participant: terabit links, no propagation,
    /// jitter, or loss. Useful for pinning one side of a room against a
    /// reference path (the point-to-point equivalence tests).
    pub fn ideal() -> Self {
        let ideal_link = LinkConfig {
            propagation: Duration::ZERO,
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
            max_queue_delay: Duration::from_secs(60),
        };
        Self {
            uplink: ideal_link.clone(),
            uplink_trace: BandwidthTrace::Constant { bps: 1e12 },
            downlink: ideal_link,
            downlink_trace: BandwidthTrace::Constant { bps: 1e12 },
            device: Device::a100(),
            uplink_seed: None,
            downlink_seed: None,
            active: None,
            uplink_fault: None,
            downlink_fault: None,
        }
    }

    /// `n` identical symmetric participants.
    pub fn uniform_room(n: usize, access_bps: f64) -> Vec<Self> {
        vec![Self::symmetric(access_bps); n]
    }

    /// Whether the participant is present at room time `t_secs` (the
    /// presence window is half-open: `join <= t < leave`).
    pub fn active_at(&self, t_secs: f64) -> bool {
        match self.active {
            None => true,
            Some((join, leave)) => t_secs >= join && t_secs < leave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_room_is_uniform() {
        let room = ParticipantConfig::uniform_room(4, 25e6);
        assert_eq!(room.len(), 4);
        for p in &room {
            match p.downlink_trace {
                BandwidthTrace::Constant { bps } => assert_eq!(bps, 25e6),
                _ => panic!("expected constant trace"),
            }
        }
    }

    #[test]
    fn ideal_has_no_impairments() {
        let p = ParticipantConfig::ideal();
        assert_eq!(p.uplink.propagation, Duration::ZERO);
        assert_eq!(p.uplink.loss_rate, 0.0);
    }

    #[test]
    fn presence_window_is_half_open() {
        let mut p = ParticipantConfig::symmetric(25e6);
        assert!(p.active_at(0.0), "no window means always present");
        p.active = Some((0.5, 1.5));
        assert!(!p.active_at(0.49));
        assert!(p.active_at(0.5));
        assert!(p.active_at(1.49));
        assert!(!p.active_at(1.5));
    }
}
