//! Empirical room capacity: how many participants actually fit.
//!
//! `core::conference` bounds room size with closed-form mean-bandwidth
//! arithmetic. This module measures it: grow the room until the
//! simulated SFU — with queueing, keyframe/delta loss coupling, and
//! per-subscriber adaptation — no longer meets the quality bar, using
//! `core`'s monotone capacity search over a real room oracle.

use crate::participant::ParticipantConfig;
use crate::room::{Room, RoomConfig};
use semholo::error::Result;
use semholo::scene::SceneSource;
use semholo::semantics::SemanticPipeline;

// The oracle hooks, re-exported so layers embedding a `Room` as a
// component (holo-fleet's sharded SFU fabric) reach the whole
// capacity toolkit — monotone search, closed-form bounds, comparison —
// through this crate without depending on `core` paths directly.
pub use semholo::conference::{
    closed_form_fleet_capacity, closed_form_max_participants, compare_capacity,
    simulated_max_participants, CapacityComparison,
};

/// When does a room still "fit"?
#[derive(Debug, Clone, Copy)]
pub struct CapacityCriteria {
    /// Every subscriber must keep at least this usable-frame rate.
    pub min_usable_rate: f64,
    /// Mean end-to-end latency must stay under this, ms.
    pub max_mean_e2e_ms: f64,
}

impl Default for CapacityCriteria {
    fn default() -> Self {
        Self { min_usable_rate: 0.9, max_mean_e2e_ms: 400.0 }
    }
}

/// Capacity-measurement parameters.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// Frames simulated per probed room size.
    pub frames: usize,
    /// Symmetric access-link rate per participant, bps.
    pub access_bps: f64,
    /// Largest room size probed (search cost cap).
    pub cap: usize,
    /// Room seed.
    pub seed: u64,
    /// Fit criteria.
    pub criteria: CapacityCriteria,
    /// Keyframe cadence inside probed rooms.
    pub keyframe_interval: usize,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        Self {
            frames: 10,
            access_bps: 100e6,
            cap: 256,
            seed: 1,
            criteria: CapacityCriteria::default(),
            keyframe_interval: 10,
        }
    }
}

/// One probed room size.
#[derive(Debug, Clone, Copy)]
pub struct CapacityProbe {
    /// Room size probed.
    pub size: usize,
    /// Worst subscriber usable rate observed.
    pub min_usable_rate: f64,
    /// Mean end-to-end latency observed, ms.
    pub mean_e2e_ms: f64,
    /// Whether the room met the criteria.
    pub fits: bool,
}

/// The measurement next to its closed-form bound.
#[derive(Debug, Clone)]
pub struct CapacityMeasurement {
    /// Empirical max room size under the criteria.
    pub max_size: usize,
    /// True when the search hit `cap` while still fitting (the real
    /// capacity is at least `max_size`).
    pub capped: bool,
    /// Mean stream bandwidth measured from the pipeline, bps.
    pub stream_bps: f64,
    /// The closed-form bound for that stream on the access link.
    pub closed_form: usize,
    /// Every probed size, in probe order.
    pub probes: Vec<CapacityProbe>,
}

/// Measure the empirical max room size for a pipeline on a symmetric
/// access link. `make_pipeline` builds a fresh sender pipeline per
/// probe (probes share one encoder per room; see
/// [`RoomConfig::share_encoder`]).
pub fn measure_max_room_size(
    scene: &SceneSource,
    cfg: &CapacityConfig,
    make_pipeline: &mut dyn FnMut() -> Box<dyn SemanticPipeline>,
) -> Result<CapacityMeasurement> {
    // Closed-form side: mean stream bandwidth over the probe window.
    let fps = scene.context().config.fps as f64;
    let mut probe_pipeline = make_pipeline();
    let mut total = 0usize;
    for frame in scene.frames(cfg.frames) {
        total += probe_pipeline.encode(&frame)?.payload.len();
    }
    let stream_bps = total as f64 / cfg.frames.max(1) as f64 * 8.0 * fps;
    let closed_form = closed_form_max_participants(stream_bps, cfg.access_bps);

    // Simulated side: a real room per probe.
    let mut probes = Vec::new();
    let mut first_error = None;
    let max_size = simulated_max_participants(cfg.cap, |n| {
        if first_error.is_some() {
            return false;
        }
        match probe_room(scene, cfg, n, make_pipeline) {
            Ok(probe) => {
                let fits = probe.fits;
                probes.push(probe);
                fits
            }
            Err(e) => {
                first_error = Some(e);
                false
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    let capped = max_size >= cfg.cap;
    Ok(CapacityMeasurement { max_size, capped, stream_bps, closed_form, probes })
}

fn probe_room(
    scene: &SceneSource,
    cfg: &CapacityConfig,
    n: usize,
    make_pipeline: &mut dyn FnMut() -> Box<dyn SemanticPipeline>,
) -> Result<CapacityProbe> {
    let room_cfg = RoomConfig {
        participants: ParticipantConfig::uniform_room(n, cfg.access_bps),
        frames: cfg.frames,
        keyframe_interval: cfg.keyframe_interval,
        seed: cfg.seed,
        share_encoder: true,
        ..Default::default()
    };
    let mut room = Room::new(room_cfg)?;
    let mut pipelines = vec![make_pipeline()];
    let report = room.run(scene, &mut pipelines)?;
    let min_usable_rate = report.min_usable_rate();
    let mean_e2e_ms = report.mean_e2e_ms();
    let fits = min_usable_rate >= cfg.criteria.min_usable_rate
        && (mean_e2e_ms.is_nan() || mean_e2e_ms <= cfg.criteria.max_mean_e2e_ms)
        && !(min_usable_rate <= 0.0);
    Ok(CapacityProbe { size: n, min_usable_rate, mean_e2e_ms, fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semholo::config::SemHoloConfig;
    use semholo::text::{TextConfig, TextPipeline};

    #[test]
    fn capacity_search_is_monotone_and_capped() {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        let scene = SceneSource::new(&config, 0.3);
        let cap_cfg = CapacityConfig {
            frames: 4,
            access_bps: 2e6, // tight: text streams are ~100s of kbps
            cap: 16,
            ..Default::default()
        };
        let mut make = || -> Box<dyn SemanticPipeline> {
            Box::new(TextPipeline::new(TextConfig::default(), 5))
        };
        let m = measure_max_room_size(&scene, &cap_cfg, &mut make).unwrap();
        assert!(m.max_size >= 1);
        assert!(m.max_size <= 16);
        assert!(m.stream_bps > 0.0);
        // Probes must respect the claimed result: every probe at or
        // below max_size that the search relied on fit.
        for p in &m.probes {
            if p.size <= m.max_size {
                assert!(p.fits, "probe at {} should fit (max {})", p.size, m.max_size);
            }
        }
    }
}
